"""Tracing units: span dicts, the recorder/bind thread-local, TraceRing."""

import threading

import pytest

from repro.obs import (SpanRecorder, TraceRing, active_recorder, bind,
                       new_trace_id, record_event, span_dict)


class TestSpanDict:
    def test_minimal_span_has_only_name_and_duration(self):
        assert span_dict("tile", 0.25) == {"name": "tile",
                                           "duration_s": 0.25}

    def test_optional_fields_appear_only_when_given(self):
        span = span_dict("batch", 0.5, start_s=0.1,
                         children=[span_dict("tile", 0.2)], batch_id=3)
        assert span["start_s"] == 0.1
        assert span["attrs"] == {"batch_id": 3}
        assert [child["name"] for child in span["children"]] == ["tile"]


class TestNewTraceId:
    def test_wire_safe_and_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 32
            int(trace_id, 16)       # hex, no raise


class TestSpanRecorder:
    def test_close_span_adopts_events_since_last_close(self):
        recorder = SpanRecorder()
        recorder.record("engine", 0.01, tier="analog")
        recorder.record("engine", 0.02, tier="exact")
        recorder.close_span("tile", 0.05, backend="thread")
        recorder.record("engine", 0.03)
        recorder.close_span("tile", 0.06)
        first, second = recorder.spans
        assert [e["attrs"]["tier"] for e in first["children"]] \
            == ["analog", "exact"]
        assert first["attrs"] == {"backend": "thread"}
        assert len(second["children"]) == 1

    def test_add_span_stitches_prebuilt_spans(self):
        recorder = SpanRecorder()
        shipped = span_dict("tile", 0.1, backend="process", pid=1234)
        recorder.add_span(shipped)
        assert recorder.spans == [shipped]


class TestBind:
    def test_record_event_reaches_the_bound_recorder(self):
        recorder = SpanRecorder()
        with bind(recorder):
            assert active_recorder() is recorder
            record_event("engine", 0.01, tier="exact")
        recorder.close_span("tile", 0.02)
        assert recorder.spans[0]["children"][0]["name"] == "engine"

    def test_unbound_record_event_is_a_noop(self):
        assert active_recorder() is None
        record_event("engine", 0.01)    # no raise, nowhere to go

    def test_nested_bind_restores_the_previous_recorder(self):
        outer, inner = SpanRecorder(), SpanRecorder()
        with bind(outer):
            with bind(inner):
                record_event("e", 0.01)
            assert active_recorder() is outer
            record_event("e", 0.02)
        assert active_recorder() is None
        assert len(inner._events) == 1
        assert len(outer._events) == 1

    def test_binding_is_thread_local(self):
        recorder = SpanRecorder()
        seen = {}

        def other_thread():
            seen["recorder"] = active_recorder()
            record_event("ghost", 0.01)

        with bind(recorder):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        assert seen["recorder"] is None
        assert recorder._events == []


class TestTraceRing:
    def trace(self, i):
        return {"trace_id": f"id-{i}", "spans": [span_dict("request", 0.1)]}

    def test_put_get_roundtrip(self):
        ring = TraceRing(4)
        ring.put(self.trace(0))
        assert ring.get("id-0")["trace_id"] == "id-0"
        assert ring.get("missing") is None
        assert len(ring) == 1

    def test_eviction_is_oldest_first(self):
        ring = TraceRing(2)
        for i in range(3):
            ring.put(self.trace(i))
        assert ring.get("id-0") is None
        assert ring.ids() == ["id-1", "id-2"]

    def test_re_put_refreshes_recency(self):
        ring = TraceRing(2)
        ring.put(self.trace(0))
        ring.put(self.trace(1))
        ring.put(self.trace(0))     # id-0 is now newest
        ring.put(self.trace(2))     # evicts id-1, not id-0
        assert ring.get("id-0") is not None
        assert ring.get("id-1") is None

    def test_capacity_zero_disables(self):
        ring = TraceRing(0)
        ring.put(self.trace(0))
        assert ring.get("id-0") is None
        assert len(ring) == 0

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            TraceRing(-1)

    def test_annotate_appends_to_stored_trace(self):
        ring = TraceRing(2)
        ring.put(self.trace(0))
        assert ring.annotate("id-0", span_dict("http", 0.02)) is True
        assert [s["name"] for s in ring.get("id-0")["spans"]] \
            == ["request", "http"]
        assert ring.annotate("evicted", span_dict("http", 0.02)) is False

#!/usr/bin/env python
"""Run the engine perf-tracking suite and record ``BENCH_engine.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_perf_suite.py --smoke   # < 60 s
    PYTHONPATH=src python benchmarks/run_perf_suite.py           # full suite
    PYTHONPATH=src python benchmarks/run_perf_suite.py -o /tmp/bench.json

The JSON schema and the benchmark inventory are documented in
``benchmarks/README.md``.  The suite fails (exit code 1) if the headline
micro-benchmark — the 16-bit-activation, 128-position layer MVM — regresses
below the recorded speedup floor, so CI can track the perf trajectory.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf import run_suite, write_payload                  # noqa: E402
from repro.perf.suite import HEADLINE_MIN_SPEEDUP                # noqa: E402


def format_summary(payload: dict) -> str:
    lines = [f"engine perf suite ({payload['mode']} mode) — "
             f"numpy {payload['host']['numpy']}, python {payload['host']['python']}",
             f"{'benchmark':40s} {'fused':>12s} {'reference':>12s} {'speedup':>9s}"]
    for record in payload["records"]:
        fused_ms = record["fused"]["per_call_s"] * 1e3
        if record["kind"] == "paired":
            ref_ms = record["reference"]["per_call_s"] * 1e3
            lines.append(f"{record['name']:40s} {fused_ms:10.3f}ms "
                         f"{ref_ms:10.3f}ms {record['speedup']:8.1f}x")
        else:
            lines.append(f"{record['name']:40s} {fused_ms:10.3f}ms "
                         f"{'—':>12s} {'—':>9s}")
    crit = payload["criteria"]
    lines.append(f"headline: {crit['headline_bench']} at "
                 f"{crit['measured_speedup']:.1f}x "
                 f"(floor {crit['min_speedup']:.0f}x) -> "
                 f"{'PASS' if crit['pass'] else 'FAIL'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: fewer repeats, core benchmarks only "
                             "(completes well under 60 s)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override timing repeats (default 3 smoke / 7 full)")
    parser.add_argument("--backend", choices=("thread", "process"),
                        default=None,
                        help="repro.runtime backend of the multi-worker "
                             "benches (default: FORMS_BACKEND or thread); "
                             "recorded in the payload's host metadata")
    parser.add_argument("-o", "--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_engine.json",
                        help="output JSON path (default: BENCH_engine.json "
                             "at the repo root)")
    args = parser.parse_args(argv)

    payload = run_suite(smoke=args.smoke, repeats=args.repeats,
                        backend=args.backend)
    write_payload(args.output, payload)
    print(format_summary(payload))
    print(f"[recorded to {args.output}]")
    if not payload["criteria"]["pass"]:
        print(f"ERROR: headline speedup below the {HEADLINE_MIN_SPEEDUP:.0f}x "
              "floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

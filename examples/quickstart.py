"""Quickstart: train a model, run the FORMS pipeline, map it to ReRAM.

This walks the full FORMS story end to end in under a minute:

1. train LeNet-5 on the synthetic MNIST stand-in;
2. run the three-phase ADMM optimization (crossbar-aware pruning, fragment
   polarization, ReRAM-customized quantization);
3. inspect the compression report (the Table I quantities);
4. map one layer onto simulated ReRAM crossbars and verify the bit-serial
   in-situ computation matches the digital integer result exactly.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import render_kv
from repro.core import (ADMMConfig, CrossbarShape, FORMSConfig, FORMSPipeline,
                        activation_to_int)
from repro.nn import (Adam, LeNet5, evaluate, fit, set_init_seed,
                      synthetic_mnist)
from repro.nn import functional as F
from repro.reram import DeviceSpec, ReRAMDevice, build_engine


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Train a baseline model.
    # ------------------------------------------------------------------
    set_init_seed(0)
    train_set, test_set = synthetic_mnist(train_size=512, test_size=256)
    model = LeNet5(num_classes=10, in_channels=1, image_size=16)
    print("training LeNet-5 on synthetic MNIST ...")
    fit(model, train_set, Adam(model.parameters(), lr=1e-3), epochs=6,
        batch_size=32)
    baseline_acc = evaluate(model, test_set).accuracy
    print(f"baseline accuracy: {baseline_acc:.3f}\n")

    # ------------------------------------------------------------------
    # 2. FORMS optimization: prune -> polarize -> quantize (paper Fig. 1).
    # ------------------------------------------------------------------
    admm = ADMMConfig(iterations=2, epochs_per_iteration=1, retrain_epochs=3)
    config = FORMSConfig(
        fragment_size=8,                 # the paper's headline design point
        policy="w",                      # W-major polarization
        weight_bits=8, cell_bits=2,      # four 2-bit cells per weight
        crossbar=CrossbarShape(32, 32),  # scaled with the model (see DESIGN.md)
        filter_keep=0.5, shape_keep=0.5,
        prune_admm=admm, polarize_admm=admm, quantize_admm=admm,
    )
    print("running FORMS ADMM pipeline ...")
    result = FORMSPipeline(config).optimize(model, train_set, test_set)
    print(render_kv("phase accuracies", result.phase_accuracies.items()))
    print()
    print(render_kv("compression report", result.compression.summary().items()))
    print(f"\naccuracy drop: {result.accuracy_drop * 100:+.2f}% "
          f"(negative = improved, as in the paper's MNIST rows)\n")

    # ------------------------------------------------------------------
    # 3. Map the first conv layer onto simulated crossbars and compute on it.
    # ------------------------------------------------------------------
    name, artifacts = next(iter(result.layers.items()))
    geometry = artifacts.geometry
    print(f"mapping layer {name!r}: {geometry.describe()}")
    levels = geometry.matrix(artifacts.int_weights)

    layer = model.features[0]
    images = test_set.images[:4]
    cols = F.im2col(images, layer.kernel_size, layer.kernel_size,
                    layer.stride, layer.padding)
    x_int, x_scale = activation_to_int(np.abs(cols), bits=8)

    device = ReRAMDevice(DeviceSpec(cell_bits=2), variation_sigma=0.0)
    engine = build_engine(levels, geometry, config.quant_spec(), device,
                          scheme="forms", signs=artifacts.signs,
                          activation_bits=8)
    in_situ = engine.matvec_int(x_int)
    digital = levels.T @ x_int
    exact = np.array_equal(in_situ, digital)
    print(f"in-situ result equals digital integer matmul: {exact}")
    print(f"input cycles fed (of 8): {engine.stats.cycles_fed} "
          f"(zero-skipping saved {8 - engine.stats.cycles_fed})")
    assert exact, "ideal crossbar computation must be exact"

    # With device variation the same computation degrades gracefully.
    noisy_device = ReRAMDevice(DeviceSpec(cell_bits=2), variation_sigma=0.1, seed=1)
    noisy_engine = build_engine(levels, geometry, config.quant_spec(),
                                noisy_device, scheme="forms",
                                signs=artifacts.signs, activation_bits=8)
    noisy = noisy_engine.matvec_int(x_int)
    rel_err = np.abs(noisy - digital).mean() / (np.abs(digital).mean() + 1e-12)
    print(f"relative error at sigma=0.1 device variation: {rel_err:.3%}")


if __name__ == "__main__":
    main()

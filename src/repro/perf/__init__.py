"""Performance instrumentation and the engine perf-tracking suite.

Two layers:

* :mod:`repro.perf.instrument` — reusable wall-clock timing
  (:func:`time_callable`) and engine conversion-count metering
  (:class:`EngineMeter`) with no dependency on what is being measured;
* :mod:`repro.perf.suite` — the micro-benchmark definitions behind
  ``benchmarks/run_perf_suite.py``, which records the fused-engine speedup
  trajectory to ``BENCH_engine.json`` at the repo root so every subsequent
  performance PR has a baseline to beat.
"""

from .instrument import EngineMeter, TimingResult, time_callable
from .suite import (BENCH_SCHEMA, default_suite, run_suite, write_payload)

__all__ = [
    "TimingResult", "time_callable", "EngineMeter",
    "BENCH_SCHEMA", "default_suite", "run_suite", "write_payload",
]

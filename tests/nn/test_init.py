"""Weight-initialization scheme tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (Conv2d, Linear, ReLU, Sequential, fan_in_out,
                      he_normal, he_uniform, orthogonal, reinitialize,
                      xavier_normal, xavier_uniform)


class TestFanInOut:
    def test_conv_shape(self):
        assert fan_in_out((16, 3, 5, 5)) == (75, 400)

    def test_linear_shape(self):
        assert fan_in_out((10, 128)) == (128, 10)

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            fan_in_out((4,))


class TestDistributions:
    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform((64, 64), rng)
        bound = np.sqrt(6.0 / 128)
        assert np.abs(w).max() <= bound
        assert np.abs(w).max() > 0.8 * bound   # actually fills the range

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = xavier_normal((256, 256), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 512), rel=0.05)

    def test_he_normal_std(self):
        rng = np.random.default_rng(0)
        w = he_normal((256, 256), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 256), rel=0.05)

    def test_he_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = he_uniform((64, 32, 3, 3), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / (32 * 9))

    def test_orthogonal_rows(self):
        rng = np.random.default_rng(0)
        w = orthogonal((8, 32), rng)
        np.testing.assert_allclose(w @ w.T, np.eye(8), atol=1e-5)

    def test_orthogonal_tall(self):
        rng = np.random.default_rng(0)
        w = orthogonal((32, 8), rng)
        np.testing.assert_allclose(w.T @ w, np.eye(8), atol=1e-5)

    def test_orthogonal_conv_shape(self):
        rng = np.random.default_rng(0)
        w = orthogonal((4, 2, 3, 3), rng, gain=2.0)
        assert w.shape == (4, 2, 3, 3)
        flat = w.reshape(4, -1) / 2.0
        np.testing.assert_allclose(flat @ flat.T, np.eye(4), atol=1e-5)

    @given(st.sampled_from([xavier_uniform, xavier_normal, he_uniform,
                            he_normal]),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_under_seed(self, scheme, seed):
        a = scheme((8, 16), np.random.default_rng(seed))
        b = scheme((8, 16), np.random.default_rng(seed))
        np.testing.assert_array_equal(a, b)


class TestReinitialize:
    def make_model(self):
        return Sequential(Conv2d(1, 4, 3, padding=1), ReLU(), Linear(4, 2))

    def test_changes_weights_and_zeroes_biases(self):
        model = self.make_model()
        conv = model[0]
        conv.bias.data[...] = 1.0
        before = conv.weight.data.copy()
        reinitialize(model, "xavier_uniform", seed=1)
        assert not np.array_equal(conv.weight.data, before)
        np.testing.assert_array_equal(conv.bias.data, 0.0)

    def test_seeded_reproducibility(self):
        a, b = self.make_model(), self.make_model()
        reinitialize(a, "he_normal", seed=9)
        reinitialize(b, "he_normal", seed=9)
        np.testing.assert_array_equal(a[0].weight.data,
                                      b[0].weight.data)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            reinitialize(self.make_model(), "glorot???")

    def test_returns_model(self):
        model = self.make_model()
        assert reinitialize(model) is model

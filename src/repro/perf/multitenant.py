"""Multi-tenant mixed-traffic serving benchmark: SLA contention points.

The single-tenant curve (:mod:`repro.perf.serving`) measures one model
under one FIFO queue; this module measures the scenario the SLA scheduler
exists for — **two tenants with opposed service objectives contending for
one worker pool**:

* an *interactive* tenant: a small, fast model served under the
  highest-precedence class with tiny batches and a per-request deadline
  (the latency-sensitive traffic whose p95 the scheduler must protect);
* a *bulk* tenant: a heavier model served best-effort under a
  low-precedence class with large coalesced batches and a class latency
  bound — under saturation its requests batch up and, past the bound,
  are shed with explicit receipts.

Records share the ``"serving"`` BENCH record kind (they merge into
``BENCH_engine.json`` through the same
:func:`repro.perf.serving.merge_serving_records` path, preserving the
engine suite's and ``bench_serving.py``'s entries) and extend its results
with per-class and per-model latency percentiles plus shed accounting.

Every point asserts — before anything is recorded — that each served
output is **bit-identical** to a direct serial single-image forward
through its tenant's network, under mixed-class contention with shedding
in play: scheduling pressure must never leak into the numerics.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Tuple

import numpy as np

from .serving import SERVING_RECORD_KIND, poisson_arrival_offsets

#: tenant and class names of the canonical mixed-traffic scenario
INTERACTIVE = "interactive"
BULK = "bulk"
FAST_MODEL = "fast"
BATCH_MODEL = "batch"


def multitenant_record_name(rate_rps: float) -> str:
    rate = f"{rate_rps:g}".replace(".", "p")
    return f"serving_multitenant_r{rate}"


def tenant_models(seed: int = 0):
    """Two FORMS-shaped tenants with opposed serving profiles.

    ``fast`` is a one-conv CNN (the interactive tenant: cheap forward,
    latency is all that matters); ``batch`` is the perf suite's pruned
    two-conv network (the bulk tenant: heavier forward, throughput via
    coalescing).  Both are fragment-polarized on the same
    :class:`~repro.core.pipeline.FORMSConfig` and share one 16x16 input
    shape so one Poisson image pool drives both.
    """
    from ..core.pipeline import FORMSConfig
    from ..core.polarization import compute_signs, project_polarization
    from ..nn import (Conv2d, Flatten, Linear, ReLU, Sequential,
                      compressible_layers, set_init_seed)
    set_init_seed(seed)
    fast = Sequential(Conv2d(1, 4, 3, padding=1), ReLU(),
                      Flatten(), Linear(4 * 16 * 16, 10))
    set_init_seed(seed + 100)
    batch = Sequential(Conv2d(1, 8, 3, padding=1), ReLU(),
                       Conv2d(8, 8, 3, padding=1), ReLU(),
                       Flatten(), Linear(8 * 16 * 16, 10))
    rng = np.random.default_rng(seed + 7)
    for layer in (batch._modules["0"], batch._modules["2"]):
        dead = rng.permutation(layer.weight.data.shape[0])[5:]
        layer.weight.data[dead] = 0.0
        if layer.bias is not None:
            layer.bias.data[dead] = 0.0
    config = FORMSConfig(fragment_size=8)
    for model in (fast, batch):
        for _, layer in compressible_layers(model):
            geometry = config.geometry_for(layer)
            weight = layer.weight.data.astype(np.float64)
            layer.weight.data[...] = project_polarization(
                weight, geometry, compute_signs(weight, geometry))
    images = np.maximum(0.0, rng.normal(size=(8, 1, 16, 16)) - 0.8)
    return {FAST_MODEL: fast, BATCH_MODEL: batch}, config, images


def mixed_policy(*, interactive_max_batch: int = 2,
                 interactive_max_wait_ms: float = 0.5,
                 bulk_max_batch: int = 8, bulk_max_wait_ms: float = 4.0,
                 bulk_shed_after_ms: Optional[float] = 150.0,
                 mode: str = "strict",
                 interactive_weight: float = 4.0, bulk_weight: float = 1.0):
    """The canonical two-class policy of the mixed-traffic scenario.

    ``mode="weighted_fair"`` switches the cross-class arbitration to
    deficit-round-robin over the class weights (interactive still gets
    the lion's share via ``interactive_weight``, but bulk can no longer
    be starved outright); the default keeps the historical strict
    precedence.
    """
    from ..serving import PriorityClass, SlaPolicy
    return SlaPolicy((
        PriorityClass(INTERACTIVE, max_batch=interactive_max_batch,
                      max_wait_s=interactive_max_wait_ms / 1e3,
                      weight=interactive_weight),
        PriorityClass(BULK, max_batch=bulk_max_batch,
                      max_wait_s=bulk_max_wait_ms / 1e3,
                      shed_after_s=(bulk_shed_after_ms / 1e3
                                    if bulk_shed_after_ms is not None
                                    else None),
                      weight=bulk_weight),
    ), mode=mode)


def drive_mixed_traffic(rate_rps: float, requests: int, *,
                        interactive_fraction: float = 0.4,
                        deadline_ms: Optional[float] = 50.0,
                        bulk_shed_after_ms: Optional[float] = 150.0,
                        max_queue_depth: Optional[int] = None,
                        workers: Optional[int] = None,
                        backend: Optional[str] = None, seed: int = 0,
                        activation_bits: int = 12, die_cache=None,
                        read_noise=None) -> Dict:
    """Serve one mixed-class Poisson arrival process and verify numerics.

    Builds the two-tenant registry (shared pool + die cache), replays
    ``requests`` open-loop Poisson arrivals at ``rate_rps`` — each
    request is interactive (``fast`` model, highest class, optional
    ``deadline_ms`` budget) with probability ``interactive_fraction``,
    bulk otherwise — and collects served results and shed receipts.

    Before returning, asserts every *served* output bit-identical to a
    direct serial single-image forward through its tenant's network —
    contention and shedding around a request must never change its bits.
    Pass ``read_noise`` (a :class:`~repro.reram.nonideal.ReadNoise`) to
    run both tenants on noisy engines; the assertion still holds (keyed
    substreams).  ``max_queue_depth`` arms an
    :class:`~repro.serving.AdmissionController`.
    """
    from ..reram import ADCSpec, DeviceSpec, ReRAMDevice, paper_adc_bits
    from ..runtime import run_network_serial
    from ..serving import (AdmissionController, InferenceServer,
                           ModelRegistry, RequestShed)

    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if not 0.0 <= interactive_fraction <= 1.0:
        raise ValueError("interactive_fraction must be within [0, 1]")

    models, config, images = tenant_models(seed=seed)
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    build_kwargs: Dict = dict(adc=adc, activation_bits=activation_bits)
    if read_noise is not None:
        from ..reram.nonideal_engine import NonidealEngine
        build_kwargs.update(engine_cls=NonidealEngine,
                            read_noise=read_noise)

    registry = ModelRegistry(workers=workers, backend=backend,
                             die_cache=die_cache)
    for name, model in models.items():
        registry.register(name, model, config, device, **build_kwargs)
    policy = mixed_policy(bulk_shed_after_ms=bulk_shed_after_ms)
    admission = (AdmissionController(max_queue_depth=max_queue_depth)
                 if max_queue_depth is not None else None)

    rng = np.random.default_rng(seed)
    image_idx = rng.integers(0, images.shape[0], size=requests)
    interactive = rng.random(requests) < interactive_fraction
    arrival_offsets = poisson_arrival_offsets(rng, rate_rps, requests)

    assignments: List[Tuple[str, str, int]] = []   # (model, class, image idx)
    futures: List[Future] = []
    with registry, InferenceServer(registry=registry, policy=policy,
                                   admission=admission) as server:
        start = time.monotonic()
        for i in range(requests):
            delay = start + arrival_offsets[i] - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            if interactive[i]:
                kwargs = dict(model=FAST_MODEL, priority=INTERACTIVE,
                              deadline_s=(deadline_ms / 1e3
                                          if deadline_ms is not None
                                          else None))
            else:
                kwargs = dict(model=BATCH_MODEL, priority=BULK)
            assignments.append((kwargs["model"],
                                kwargs["priority"], int(image_idx[i])))
            futures.append(server.submit_async(images[image_idx[i]],
                                               **kwargs))
        served: List[Optional[object]] = []
        sheds: List[Optional[object]] = []
        for future in futures:
            try:
                served.append(future.result())
                sheds.append(None)
            except RequestShed as exc:
                served.append(None)
                sheds.append(exc.receipt)
        open_loop_s = time.monotonic() - start
        snapshot = server.server_stats()
        registry_stats = server.registry_stats()
        resolved_workers = server.pool.workers

        # the acceptance assertion: contention, class mix and shedding
        # never leak into the numerics of the survivors
        serial = {name: run_network_serial(registry.get(name).network,
                                           images, tile_size=1)
                  for name in models}
        for i, result in enumerate(served):
            if result is None:
                continue
            model_name, _, img = assignments[i]
            if not np.array_equal(result.output, serial[model_name][img]):
                raise AssertionError(
                    f"request {i} ({model_name}): served output != serial "
                    "single-image forward under mixed-class contention")

    return {"served": served, "sheds": sheds, "assignments": assignments,
            "snapshot": snapshot, "registry": registry_stats,
            "open_loop_s": open_loop_s, "workers": resolved_workers}


def run_multitenant_point(rate_rps: float, requests: int = 48, *,
                          interactive_fraction: float = 0.4,
                          deadline_ms: Optional[float] = 50.0,
                          bulk_shed_after_ms: Optional[float] = 150.0,
                          max_queue_depth: Optional[int] = None,
                          workers: Optional[int] = None, seed: int = 0,
                          activation_bits: int = 12,
                          die_cache=None) -> Dict:
    """Measure one mixed-traffic arrival-rate point and return its record.

    Drives :func:`drive_mixed_traffic` (per-model bit-identity asserted
    there) and packages the per-class/per-model view as one ``"serving"``
    record: the multi-tenant extension of the
    :mod:`repro.perf.serving` schema (see ``benchmarks/README.md``).
    """
    driven = drive_mixed_traffic(
        rate_rps, requests, interactive_fraction=interactive_fraction,
        deadline_ms=deadline_ms, bulk_shed_after_ms=bulk_shed_after_ms,
        max_queue_depth=max_queue_depth, workers=workers, seed=seed,
        activation_bits=activation_bits, die_cache=die_cache)
    snapshot = driven["snapshot"]
    completed = sum(result is not None for result in driven["served"])
    return {
        "name": multitenant_record_name(rate_rps),
        "kind": SERVING_RECORD_KIND,
        "results": {
            "offered_rate_rps": rate_rps,
            "throughput_rps": completed / driven["open_loop_s"],
            "requests_completed": completed,
            "requests_shed": snapshot["requests_shed"],
            "shed_by_reason": snapshot["shed_by_reason"],
            "latency_p50_s": snapshot["latency_p50_s"],
            "latency_p95_s": snapshot["latency_p95_s"],
            "queue_wait_p95_s": snapshot["queue_wait_p95_s"],
            "mean_batch_size": snapshot["mean_batch_size"],
            "max_batch_size": snapshot["max_batch_size"],
            "occupancy": snapshot["occupancy"],
            "per_class": snapshot["per_class"],
            "per_model": snapshot["per_model"],
        },
        "meta": {
            "requests": requests,
            "interactive_fraction": interactive_fraction,
            "deadline_ms": deadline_ms,
            "bulk_shed_after_ms": bulk_shed_after_ms,
            "max_queue_depth": max_queue_depth,
            "workers": driven["workers"],
            "seed": seed,
            "activation_bits": activation_bits,
            "models": sorted(driven["registry"]["models"]),
            "die_cache": driven["registry"]["die_cache"],
            "bit_identical_to_serial": True,
        },
    }

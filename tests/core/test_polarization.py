"""Polarization projection and sign-rule tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (FragmentGeometry, compute_signs, fragment_signs,
                        is_polarized, polarization_violation,
                        project_polarization, project_stack,
                        sign_flip_fraction)


def make_stack(rng, n_frag=3, m=4, cols=5):
    return rng.normal(size=(n_frag, m, cols))


class TestFragmentSigns:
    def test_sum_rule_matches_eq2(self, rng):
        stack = np.zeros((1, 4, 2))
        stack[0, :, 0] = [1.0, -0.5, -0.2, 0.1]   # sum 0.4 -> +
        stack[0, :, 1] = [-1.0, 0.5, 0.2, -0.1]   # sum -0.4 -> -
        signs = fragment_signs(stack, "sum")
        np.testing.assert_array_equal(signs, [[1.0, -1.0]])

    def test_sum_rule_zero_is_positive(self):
        stack = np.zeros((1, 4, 1))
        assert fragment_signs(stack, "sum")[0, 0] == 1.0

    def test_l2_rule_picks_heavier_side(self):
        stack = np.zeros((1, 3, 1))
        stack[0, :, 0] = [2.0, -1.0, -1.5]  # sum -0.5 (sum rule: -),
        # but positive energy 4.0 > negative 3.25 (l2 rule: +)
        assert fragment_signs(stack, "sum")[0, 0] == -1.0
        assert fragment_signs(stack, "l2")[0, 0] == 1.0

    def test_unknown_rule(self):
        with pytest.raises(ValueError):
            fragment_signs(np.zeros((1, 2, 1)), "mean")

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            fragment_signs(np.zeros((2, 2)))


class TestProjection:
    def test_projection_feasible(self, rng):
        stack = make_stack(rng)
        signs = fragment_signs(stack)
        projected = project_stack(stack, signs)
        assert (projected * signs[:, None, :] >= 0).all()

    def test_projection_idempotent(self, rng):
        stack = make_stack(rng)
        signs = fragment_signs(stack)
        once = project_stack(stack, signs)
        np.testing.assert_array_equal(project_stack(once, signs), once)

    def test_projection_keeps_agreeing_weights(self, rng):
        stack = np.abs(make_stack(rng))  # all positive
        signs = np.ones((stack.shape[0], stack.shape[2]))
        np.testing.assert_array_equal(project_stack(stack, signs), stack)

    def test_shape_validation(self, rng):
        stack = make_stack(rng)
        with pytest.raises(ValueError):
            project_stack(stack, np.ones((1, 1)))

    def test_l2_rule_is_distance_optimal(self, rng):
        # Over both sign choices, the l2 rule minimizes ||W - proj(W)||^2.
        for _ in range(20):
            frag = rng.normal(size=(1, 5, 1))
            best_sign = fragment_signs(frag, "l2")[0, 0]
            for sign in (-1.0, 1.0):
                dist = ((frag - project_stack(frag, np.array([[sign]]))) ** 2).sum()
                best = ((frag - project_stack(frag, np.array([[best_sign]]))) ** 2).sum()
                assert best <= dist + 1e-12

    def test_full_weight_projection(self, rng):
        weight = rng.normal(size=(4, 3, 3, 3))
        geom = FragmentGeometry(weight.shape, 4, "c")
        signs = compute_signs(weight, geom)
        projected = project_polarization(weight, geom, signs)
        assert is_polarized(projected, geom)
        # projection only zeroes, never changes surviving values
        surviving = projected != 0
        np.testing.assert_array_equal(projected[surviving], weight[surviving])


class TestViolation:
    def test_zero_for_feasible(self, rng):
        weight = np.abs(rng.normal(size=(4, 2, 3, 3)))
        geom = FragmentGeometry(weight.shape, 8)
        assert polarization_violation(weight, geom) == 0.0
        assert is_polarized(weight, geom)

    def test_positive_for_mixed(self, rng):
        weight = rng.normal(size=(4, 2, 3, 3))
        geom = FragmentGeometry(weight.shape, 8)
        assert polarization_violation(weight, geom) > 0.0

    def test_all_zero_weight(self):
        geom = FragmentGeometry((2, 1, 3, 3), 4)
        assert polarization_violation(np.zeros((2, 1, 3, 3)), geom) == 0.0

    def test_sign_flip_fraction(self):
        old = np.array([[1.0, -1.0], [1.0, 1.0]])
        new = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert sign_flip_fraction(old, new) == 0.25
        with pytest.raises(ValueError):
            sign_flip_fraction(old, np.ones((1, 2)))


@given(st.integers(1, 4), st.integers(1, 8), st.integers(1, 5),
       st.sampled_from(["sum", "l2"]))
@settings(max_examples=40, deadline=None)
def test_projection_properties(n_frag, m, cols, rule):
    """Projection is feasible, idempotent, and never increases magnitude."""
    rng = np.random.default_rng(n_frag * 1000 + m * 10 + cols)
    stack = rng.normal(size=(n_frag, m, cols))
    signs = fragment_signs(stack, rule)
    projected = project_stack(stack, signs)
    assert (projected * signs[:, None, :] >= 0).all()
    np.testing.assert_array_equal(project_stack(projected, signs), projected)
    assert (np.abs(projected) <= np.abs(stack) + 1e-12).all()

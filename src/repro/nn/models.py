"""Benchmark network families from the paper.

The paper evaluates LeNet-5 (MNIST), VGG-16 (CIFAR-10/100) and ResNet-18/50
(CIFAR-10/100/ImageNet).  We implement the same topologies with a width
multiplier so the experiments stay laptop-trainable on the numpy substrate;
``width_mult=1.0`` recovers the standard channel counts.

The important structural properties for FORMS are preserved at every width:
convolution stacks whose im2col matrices are cut into fragments, residual
blocks (BasicBlock for ResNet-18, Bottleneck for ResNet-50), batch norm, and
a final linear classifier.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .layers import (AvgPool2d, BatchNorm2d, Conv2d, Flatten, GlobalAvgPool2d,
                     Linear, MaxPool2d, Module, ReLU, Sequential)
from .tensor import Tensor


def _scaled(channels: int, width_mult: float) -> int:
    return max(4, int(round(channels * width_mult)))


class LeNet5(Module):
    """LeNet-5 as used for the paper's MNIST rows (Table I)."""

    def __init__(self, num_classes: int = 10, in_channels: int = 1,
                 image_size: int = 16, width_mult: float = 1.0):
        super().__init__()
        c1 = _scaled(6, width_mult)
        c2 = _scaled(16, width_mult)
        self.features = Sequential(
            Conv2d(in_channels, c1, kernel_size=5, padding=2), ReLU(), MaxPool2d(2),
            Conv2d(c1, c2, kernel_size=5, padding=2), ReLU(), MaxPool2d(2),
        )
        spatial = image_size // 4
        flat = c2 * spatial * spatial
        f1 = _scaled(120, width_mult)
        f2 = _scaled(84, width_mult)
        self.classifier = Sequential(
            Flatten(),
            Linear(flat, f1), ReLU(),
            Linear(f1, f2), ReLU(),
            Linear(f2, num_classes),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))


# VGG configurations: channel counts with 'M' marking 2x2 max-pool.
VGG_CONFIGS = {
    "VGG11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "VGG16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
              512, 512, 512, "M", 512, 512, 512, "M"],
}


class VGG(Module):
    """VGG-style plain conv stack (paper: VGG-16 on CIFAR-10/100)."""

    def __init__(self, config: str = "VGG16", num_classes: int = 10,
                 in_channels: int = 3, image_size: int = 16,
                 width_mult: float = 1.0, batch_norm: bool = True):
        super().__init__()
        if config not in VGG_CONFIGS:
            raise KeyError(f"unknown VGG config {config!r}")
        layers: List[Module] = []
        channels = in_channels
        spatial = image_size
        for item in VGG_CONFIGS[config]:
            if item == "M":
                if spatial >= 2:
                    layers.append(MaxPool2d(2))
                    spatial //= 2
                continue
            out_ch = _scaled(int(item), width_mult)
            layers.append(Conv2d(channels, out_ch, kernel_size=3, padding=1, bias=not batch_norm))
            if batch_norm:
                layers.append(BatchNorm2d(out_ch))
            layers.append(ReLU())
            channels = out_ch
        self.features = Sequential(*layers)
        self.classifier = Sequential(Flatten(), Linear(channels * spatial * spatial, num_classes))

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))


class BasicBlock(Module):
    """ResNet-18/34 residual block (two 3x3 convolutions)."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels * self.expansion:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels * self.expansion, 1, stride=stride, bias=False),
                BatchNorm2d(out_channels * self.expansion))
        else:
            self.shortcut = Sequential()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class Bottleneck(Module):
    """ResNet-50 residual block (1x1 reduce, 3x3, 1x1 expand)."""

    expansion = 4

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 1, bias=False)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=stride, padding=1, bias=False)
        self.bn2 = BatchNorm2d(out_channels)
        self.conv3 = Conv2d(out_channels, out_channels * self.expansion, 1, bias=False)
        self.bn3 = BatchNorm2d(out_channels * self.expansion)
        if stride != 1 or in_channels != out_channels * self.expansion:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels * self.expansion, 1, stride=stride, bias=False),
                BatchNorm2d(out_channels * self.expansion))
        else:
            self.shortcut = Sequential()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out))
        return (out + self.shortcut(x)).relu()


class ResNet(Module):
    """CIFAR-style ResNet (3x3 stem, four stages, global average pool)."""

    def __init__(self, block, num_blocks: Sequence[int], num_classes: int = 10,
                 in_channels: int = 3, width_mult: float = 1.0):
        super().__init__()
        widths = [_scaled(w, width_mult) for w in (64, 128, 256, 512)]
        self.in_planes = widths[0]
        self.conv1 = Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False)
        self.bn1 = BatchNorm2d(widths[0])
        self.layer1 = self._make_stage(block, widths[0], num_blocks[0], stride=1)
        self.layer2 = self._make_stage(block, widths[1], num_blocks[1], stride=2)
        self.layer3 = self._make_stage(block, widths[2], num_blocks[2], stride=2)
        self.layer4 = self._make_stage(block, widths[3], num_blocks[3], stride=2)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(widths[3] * block.expansion, num_classes)

    def _make_stage(self, block, planes: int, count: int, stride: int) -> Sequential:
        strides = [stride] + [1] * (count - 1)
        stage = Sequential()
        for s in strides:
            stage.append(block(self.in_planes, planes, stride=s))
            self.in_planes = planes * block.expansion
        return stage

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.layer1(out)
        out = self.layer2(out)
        out = self.layer3(out)
        out = self.layer4(out)
        return self.fc(self.pool(out))


def resnet18(num_classes: int = 10, in_channels: int = 3, width_mult: float = 1.0,
             blocks_per_stage: int = 2) -> ResNet:
    """ResNet-18 topology (two BasicBlocks per stage at full depth)."""
    return ResNet(BasicBlock, [blocks_per_stage] * 4, num_classes, in_channels, width_mult)


def resnet50(num_classes: int = 10, in_channels: int = 3, width_mult: float = 1.0,
             num_blocks: Sequence[int] = (3, 4, 6, 3)) -> ResNet:
    """ResNet-50 topology (Bottleneck blocks, [3,4,6,3] at full depth)."""
    return ResNet(Bottleneck, list(num_blocks), num_classes, in_channels, width_mult)


def resnet20(num_classes: int = 10, in_channels: int = 3, width_mult: float = 1.0) -> ResNet:
    """Shallow BasicBlock ResNet used by the FPGM baseline rows."""
    return ResNet(BasicBlock, [1, 1, 1, 1], num_classes, in_channels, width_mult)


def build_model(name: str, num_classes: int, in_channels: int, image_size: int,
                width_mult: float = 1.0, depth_scale: float = 1.0) -> Module:
    """Build a named benchmark model scaled for the numpy substrate.

    ``depth_scale`` < 1 reduces blocks-per-stage for the ResNets (topology
    family preserved); ``width_mult`` scales channel counts everywhere.
    """
    name = name.lower()
    if name == "lenet5":
        return LeNet5(num_classes, in_channels, image_size, width_mult)
    if name in ("vgg11", "vgg16"):
        return VGG(name.upper(), num_classes, in_channels, image_size, width_mult)
    if name == "resnet18":
        blocks = max(1, int(round(2 * depth_scale)))
        return resnet18(num_classes, in_channels, width_mult, blocks_per_stage=blocks)
    if name == "resnet20":
        return resnet20(num_classes, in_channels, width_mult)
    if name == "resnet50":
        full = (3, 4, 6, 3)
        blocks = tuple(max(1, int(round(b * depth_scale))) for b in full)
        return resnet50(num_classes, in_channels, width_mult, num_blocks=blocks)
    raise KeyError(f"unknown model {name!r}")

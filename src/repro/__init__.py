"""FORMS (ISCA 2021) reproduction.

Fine-grained polarized ReRAM-based in-situ computation for mixed-signal DNN
acceleration: the ADMM co-design framework (:mod:`repro.core`), the numpy DNN
training substrate (:mod:`repro.nn`), the ReRAM device/crossbar simulator
(:mod:`repro.reram`), the accelerator architecture model (:mod:`repro.arch`),
the parallel execution runtime (:mod:`repro.runtime`), the batching
request-queue serving layer (:mod:`repro.serving`), the perf-tracking
suites (:mod:`repro.perf`), and the evaluation harness
(:mod:`repro.analysis`).

Runtime architecture
--------------------
The simulation stack splits scheduling from execution:

* **Scheduler** — :meth:`repro.reram.engine.InSituLayerEngine.matvec_int`
  builds a CSR-style job list from the *nonzero structure* of each
  activation block (per-fragment ``live bits x live positions`` grids; the
  per-fragment OR of the activation bits is the complete structure).
  All-zero bit-planes, silent fragments and silent positions are never
  materialized; tasks whose conversions provably cannot clip telescope
  into one value-level GEMM.  The dense bit-plane kernel
  (:meth:`matvec_int_dense`) and the cycle-by-cycle loop
  (:meth:`matvec_int_reference`) are retained as the scheduling baseline
  and the bit-exactness oracle.
* **Executor** — :class:`repro.runtime.WorkerPool` fans out independent
  work at three grains: job chunks within one MVM (``engine.pool`` /
  ``matvec_int(..., pool=...)``), batch tiles across a whole-network
  forward (:func:`repro.runtime.infer_tiled` — tiles pipeline through
  different layers concurrently), and sweep points across DSE/ablation
  grids (:func:`repro.runtime.parallel_map`, with a shared
  :class:`repro.reram.DieCache` deduplicating die programming).
* **Determinism** — results and engine stats are bit-identical at any
  worker count: kernels accumulate into per-worker stats locals merged
  under a lock, and read noise draws from substreams keyed by
  (input digest, plane, bit-plane, fragment) rather than draw order.

* **Serving** — :class:`repro.serving.InferenceServer` coalesces
  single-image requests into batches under a latency budget and dispatches
  one tile per request on the shared pool, so a served result is
  bit-identical to a standalone single-image call at any batch
  composition, with per-request latency and engine-stats receipts.

``benchmarks/run_perf_suite.py`` records the measured speedups of every
layer of this stack to ``BENCH_engine.json`` (and
``benchmarks/bench_serving.py`` the serving throughput/latency curve);
``scripts/checks.sh`` gates changes on the fast tier-1 tests, the
headline perf floor, a serving smoke, and a docs-coverage check.
"""

__version__ = "1.3.0"

__all__ = ["nn", "core", "reram", "arch", "analysis", "runtime",
           "serving", "perf", "__version__"]

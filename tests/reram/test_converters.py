"""DAC/ADC/sample-hold tests."""

import numpy as np
import pytest

from repro.reram import (ADCSpec, DACSpec, SampleHold, paper_adc_bits,
                         required_adc_bits)


class TestDAC:
    def test_passes_bits(self):
        dac = DACSpec()
        np.testing.assert_array_equal(dac.convert(np.array([0, 1, 1])), [0.0, 1.0, 1.0])

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            DACSpec().convert(np.array([2]))

    def test_only_one_bit(self):
        with pytest.raises(ValueError):
            DACSpec(bits=2)


class TestADC:
    def test_rounds_to_nearest(self):
        adc = ADCSpec(bits=4)
        np.testing.assert_array_equal(adc.convert(np.array([0.4, 0.6, 7.5])),
                                      [0, 1, 8])

    def test_saturates(self):
        adc = ADCSpec(bits=3)  # max code 7
        np.testing.assert_array_equal(adc.convert(np.array([100.0, -5.0])), [7, 0])

    def test_max_code(self):
        assert ADCSpec(bits=4).max_code == 15
        assert ADCSpec(bits=8).max_code == 255

    def test_saturation_fraction(self):
        adc = ADCSpec(bits=3)
        frac = adc.saturation_fraction(np.array([1.0, 8.0, 20.0, 3.0]))
        assert frac == 0.5
        assert adc.saturation_fraction(np.array([])) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ADCSpec(bits=0)
        with pytest.raises(ValueError):
            ADCSpec(bits=4, frequency_hz=0)


class TestSizing:
    def test_required_bits_covers_worst_case(self):
        # fragment 8 with 2-bit cells: worst sum 8*3 = 24 -> 5 bits
        assert required_adc_bits(8, 2) == 5
        assert required_adc_bits(4, 2) == 4
        assert required_adc_bits(16, 2) == 6
        assert required_adc_bits(1, 1) == 1

    def test_required_bits_validation(self):
        with pytest.raises(ValueError):
            required_adc_bits(0, 2)

    def test_paper_pairing(self):
        # The paper's published sizing (Sec. IV-C): one bit below worst case.
        assert paper_adc_bits(4) == 3
        assert paper_adc_bits(8) == 4
        assert paper_adc_bits(16) == 5

    def test_paper_pairing_extrapolates(self):
        assert paper_adc_bits(32) == 6
        assert paper_adc_bits(2) == 2


class TestSampleHold:
    def test_holds_copy(self):
        sh = SampleHold()
        x = np.array([1.0, 2.0])
        held = sh.hold(x)
        x[0] = 99.0
        np.testing.assert_array_equal(held, [1.0, 2.0])

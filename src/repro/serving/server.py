"""The SLA-scheduled inference server over the ``repro.runtime`` executor.

:class:`InferenceServer` is the "traffic" front end of the stack: callers
submit *single images* — optionally naming a registered model, a priority
class and a per-request deadline — and the server coalesces concurrent
submissions into batches under the :class:`~repro.serving.scheduler.
SlaPolicy` in force, dispatching each batch through
:func:`repro.runtime.infer_tiles` on the shared
:class:`~repro.runtime.WorkerPool` — one tile per request, so every
worker chews on a different request of the batch and deep batches
pipeline through different layers concurrently.

Multi-tenancy and scheduling
----------------------------
The server fronts a :class:`~repro.serving.registry.ModelRegistry`
(several in-situ networks over one pool and one
:class:`~repro.reram.DieCache`) and an
:class:`~repro.serving.scheduler.SlaQueue`: strict class precedence,
earliest-deadline-first within a class, per-class coalescing knobs,
deadline/latency-bound shedding (an explicit
:class:`~repro.serving.scheduler.ShedReceipt` via
:class:`~repro.serving.scheduler.RequestShed`, never a hang) and an
optional :class:`~repro.serving.scheduler.AdmissionController` that
refuses intake from the occupancy/queue-depth gauges before the queue
melts down.

The classic single-model FIFO server is the degenerate configuration —
``InferenceServer(network)`` wraps the network in a private registry and
runs :meth:`SlaPolicy.fifo`: one class, no deadlines, no shedding, the
same ``max_batch`` / ``max_wait_s`` semantics as always.

Bit-identity guarantee
----------------------
A served result is **bit-identical** to a direct single-image
``run_network_serial`` call on the same image through the same model —
at any batch composition, arrival order, worker count, tenant mix and
scheduling outcome (shedding other requests never perturbs survivors).
Three properties of the lower layers make this structural (see
``repro/runtime/network.py``):

* one tile per request: batching never changes the quantization grid an
  image sees, because the engines are called per image exactly as in the
  serial path;
* worker-count invariance of the tiled executor (ordered merge, no
  cross-tile floating-point accumulation);
* per-job keyed read-noise substreams: a noisy engine draws each job's
  noise from (input digest, plane, bit, fragment), so *which batch* a
  request rode in — or which requests were shed around it — cannot
  change its noise.

``tests/serving/`` asserts the guarantee end to end, read noise included.

Per-request stats
-----------------
Each result carries a :class:`~repro.serving.stats.RequestStats`: queue
wait, the batch it rode in, its model and priority class, and the exact
slice of the shared engines' :class:`~repro.reram.engine.EngineStats` its
tile accounted for (summing the slices over requests reproduces the
engines' merged totals — tested).
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..obs import (EngineProfiler, Observability, SpanRecorder, instrument,
                   new_trace_id, span_dict)
from ..reram import DieCache
from ..reram.faults import DieFaultDetected, DieGuard, FaultInjector
from ..runtime import WorkerPool, infer_tiles
from .health import (DIE_HEALTHY, DIE_QUARANTINED, DIE_REPROGRAMMING,
                     DieHealthRegistry)
from .queue import Batcher
from .registry import ModelRegistry, RegisteredModel
from .scheduler import (SHED_ADMISSION, SHED_FAULT_RECOVERY,
                        AdmissionController, RequestShed, ShedReceipt,
                        SlaPolicy, SlaQueue, SlaRequest)
from .stats import RequestStats, ServedResult, ServerStats

#: the model name a single-model server registers its network under
DEFAULT_MODEL = "default"


class InferenceServer:
    """SLA-scheduled single-image inference over shared in-situ networks.

    Parameters
    ----------
    model:
        A callable network (typically the in-situ model returned by
        :func:`repro.reram.build_insitu_network`) — the single-model
        convenience path; it is registered as ``"default"`` in a private
        :class:`~repro.serving.registry.ModelRegistry`.  Mutually
        exclusive with ``registry``.
    registry:
        A caller-owned :class:`~repro.serving.registry.ModelRegistry` —
        the multi-tenant path.  The registry (and its pool) is borrowed:
        left open at shutdown.
    policy / admission:
        The :class:`~repro.serving.scheduler.SlaPolicy` scheduling the
        queue (default: :meth:`SlaPolicy.fifo` built from ``max_batch`` /
        ``max_wait_s``) and an optional
        :class:`~repro.serving.scheduler.AdmissionController`.
    max_batch / max_wait_s:
        The FIFO coalescing knobs — used only to build the default
        policy; ignored when ``policy`` is given (each class carries its
        own knobs).
    workers / pool:
        Pool configuration for the private registry of the single-model
        path.  With ``registry`` the pool travels with the registry and
        these must be left unset.
    detect_faults / guard_coverage:
        With ``detect_faults=True`` every registered model's engines are
        armed with :class:`~repro.reram.faults.DieGuard` checksum guards
        (sensitivity-weighted audit placement at ``guard_coverage``): each
        MVM audits the programmed die's sentinel sums and fails fast on a
        mismatch, which the dispatch path turns into quarantine + online
        re-program + bounded retry (see :meth:`_dispatch`).  The per-die
        states are tracked in :attr:`die_health` either way.
    fault_injector / max_fault_retries:
        An optional :class:`~repro.reram.faults.FaultInjector` consulted
        at every dispatch boundary (scripted chaos scenarios), and the
        number of quarantine/re-program/retry rounds one batch may consume
        before its requests are shed with :data:`~repro.serving.scheduler.
        SHED_FAULT_RECOVERY` receipts — shed explicitly, never served
        wrong, never left hanging.

    Use as a context manager, or call :meth:`shutdown` — in-flight and
    queued requests are drained before the server stops (queued requests
    remain subject to deadline/latency-bound shedding while draining).
    """

    def __init__(self, model=None, *, registry: Optional[ModelRegistry] = None,
                 policy: Optional[SlaPolicy] = None,
                 admission: Optional[AdmissionController] = None,
                 max_batch: int = 8, max_wait_s: float = 0.002,
                 workers: Optional[int] = None,
                 pool: Optional[WorkerPool] = None,
                 backend: Optional[str] = None,
                 detect_faults: bool = False,
                 guard_coverage: float = 1.0,
                 fault_injector: Optional[FaultInjector] = None,
                 max_fault_retries: int = 2,
                 obs: Optional[Observability] = None):
        if max_fault_retries < 0:
            raise ValueError("max_fault_retries must be >= 0")
        if (model is None) == (registry is None):
            raise ValueError("pass exactly one of model= or registry=")
        if registry is not None and (workers is not None or pool is not None
                                     or backend is not None):
            raise ValueError("workers/pool/backend travel with the registry; "
                             "configure them on the ModelRegistry")
        if registry is None:
            # private registry: closed at shutdown (ModelRegistry.close
            # leaves a borrowed ``pool`` open, so ownership is safe)
            self.registry = ModelRegistry(pool=pool, workers=workers,
                                          backend=backend)
            self.registry.register_network(DEFAULT_MODEL, model)
            self._owns_registry = True
        else:
            self.registry = registry
            self._owns_registry = False
        if detect_faults and getattr(self.registry.pool, "backend",
                                     "thread") == "process":
            if self._owns_registry:
                self.registry.close()
            raise ValueError(
                "detect_faults=True requires a thread-backend pool: die "
                "guards instrument live engine objects and are not shipped "
                "to process-backend workers (use backend='thread')")
        self.policy = (policy if policy is not None
                       else SlaPolicy.fifo(max_batch=max_batch,
                                           max_wait_s=max_wait_s))
        self.admission = admission
        self.stats = ServerStats()
        #: the server's observability bundle (metrics registry behind
        #: ``GET /metrics``, trace ring behind ``GET /v1/trace/<id>``,
        #: usage meter behind ``GET /v1/usage``); default-on — pass
        #: ``Observability.disabled()`` for the bare-metal shape
        self.obs = obs if obs is not None else Observability()
        self.profiler: Optional[EngineProfiler] = None
        self._wire_obs()
        self.queue = SlaQueue(self.policy, on_shed=self._record_shed)
        self._ids = itertools.count()
        self._batch_ids = itertools.count()
        self._shutdown_lock = threading.Lock()
        self._shut_down = False
        # --- online fault tolerance -----------------------------------
        self.die_health = DieHealthRegistry()
        self.fault_injector = fault_injector
        self.max_fault_retries = max_fault_retries
        self._guards: Dict[Tuple[str, str], DieGuard] = {}
        self._engine_ids: Dict[int, Tuple[str, str]] = {}
        for name in self.registry.names():
            entry = self.registry.get(name)
            for layer in entry.engines:
                self.die_health.attach(entry.name, layer)
            if detect_faults:
                self.arm_model(name, coverage=guard_coverage)
        if self.obs.profile_engines:
            self.arm_profiling()
        # the SLA queue carries its per-class coalescing knobs in the
        # policy, so the batcher needs none of its own
        self.batcher = Batcher(self.queue, self._dispatch)
        self.batcher.start()

    def _wire_obs(self) -> None:
        """Register the catalogued instruments and pull-gauge hooks.

        Counters and histograms are live-updated at their record sites
        (:meth:`_record_shed`, :meth:`_dispatch`); the gauges are
        refreshed by a scrape hook from the snapshots the stack already
        computes (queue depth, occupancy window, die health states,
        per-model :class:`~repro.reram.engine.EngineStats` totals), so a
        scrape is a consistent read of live state.
        """
        metrics = self.obs.metrics
        self._m_completed = instrument(metrics,
                                       "forms_requests_completed_total")
        self._m_shed = instrument(metrics, "forms_requests_shed_total")
        self._m_failed = instrument(metrics, "forms_requests_failed_total")
        self._m_recovered = instrument(metrics,
                                       "forms_requests_recovered_total")
        self._m_faults = instrument(metrics, "forms_faults_detected_total")
        self._m_fault_recoveries = instrument(
            metrics, "forms_fault_recoveries_total")
        self._m_batches = instrument(metrics, "forms_batches_total")
        self._m_batch_size = instrument(metrics, "forms_batch_size")
        self._m_latency = instrument(metrics,
                                     "forms_request_latency_seconds")
        self._m_queue_wait = instrument(metrics, "forms_queue_wait_seconds")
        if not metrics.enabled:
            return
        # pre-touch the label-less families so a scrape reports them at
        # zero instead of omitting them until the first event
        for family in (self._m_failed, self._m_recovered, self._m_faults,
                       self._m_fault_recoveries, self._m_batches,
                       self._m_batch_size):
            family.labels()
        instrument(metrics, "forms_queue_depth").labels().set_function(
            lambda: self.queue.depth)
        instrument(metrics, "forms_occupancy").labels().set_function(
            self.stats.occupancy)
        die_health = instrument(metrics, "forms_die_health")
        engine_counter = instrument(metrics, "forms_engine_counter")

        def refresh() -> None:
            for state, count in self.die_health.counts().items():
                die_health.labels(state).set(count)
            for name in self.registry.names():
                entry = self.registry.get(name)
                totals: Dict[str, int] = {}
                for engine in entry.engines.values():
                    for key, value in engine.stats.as_dict().items():
                        totals[key] = totals.get(key, 0) + value
                for key, value in totals.items():
                    engine_counter.labels(entry.name, key).set(value)

        self.obs.add_scrape_hook(refresh)

    def _record_shed(self, receipt: ShedReceipt) -> None:
        """The single shed record site: stats window, metrics, usage,
        and (when tracing) a one-span shed trace under the request's id."""
        self.stats.record_shed(receipt)
        self._m_shed.labels(receipt.model, receipt.priority_class,
                            receipt.reason).inc()
        self.obs.usage.record_shed(receipt.model, receipt.priority_class)
        if self.obs.tracing and receipt.trace_id:
            self.obs.traces.put({
                "trace_id": receipt.trace_id,
                "request_id": receipt.request_id,
                "model": receipt.model,
                "class": receipt.priority_class,
                "shed_reason": receipt.reason,
                "spans": [span_dict("shed", receipt.queue_wait_s,
                                    start_s=0.0, reason=receipt.reason)],
            })

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model, config, device, *, adc=None,
                   activation_bits: int = 16, engine_cls=None,
                   die_cache: Optional[DieCache] = None,
                   policy: Optional[SlaPolicy] = None,
                   admission: Optional[AdmissionController] = None,
                   max_batch: int = 8, max_wait_s: float = 0.002,
                   workers: Optional[int] = None,
                   pool: Optional[WorkerPool] = None,
                   backend: Optional[str] = None,
                   detect_faults: bool = False,
                   guard_coverage: float = 1.0,
                   fault_injector: Optional[FaultInjector] = None,
                   max_fault_retries: int = 2,
                   obs: Optional[Observability] = None,
                   **engine_kwargs) -> "InferenceServer":
        """Build the in-situ network and serve it.

        Convenience constructor: lowers ``model`` through
        :func:`repro.reram.build_insitu_network` into a private
        single-model registry with a shared :class:`~repro.reram.DieCache`
        (created if not given), so a server rebuilt across sweep points —
        or several servers over the same weights — reuses programmed
        dies.  The engines dict and the cache stay reachable as
        ``server.engines`` / ``server.die_cache``.
        """
        registry = ModelRegistry(die_cache=die_cache, pool=pool,
                                 workers=workers, backend=backend)
        try:
            registry.register(DEFAULT_MODEL, model, config, device, adc=adc,
                              activation_bits=activation_bits,
                              engine_cls=engine_cls, **engine_kwargs)
            server = cls(registry=registry, policy=policy,
                         admission=admission, max_batch=max_batch,
                         max_wait_s=max_wait_s, detect_faults=detect_faults,
                         guard_coverage=guard_coverage,
                         fault_injector=fault_injector,
                         max_fault_retries=max_fault_retries, obs=obs)
        except BaseException:
            registry.close()
            raise
        # the private registry is an implementation detail here: the
        # server owns it (and thereby the pool, unless ``pool`` was
        # borrowed — ModelRegistry.close leaves a borrowed pool open)
        server._owns_registry = True
        return server

    # ------------------------------------------------------------------
    # single-model conveniences (the pre-registry surface, kept working)
    @property
    def pool(self) -> WorkerPool:
        return self.registry.pool

    @property
    def die_cache(self) -> DieCache:
        return self.registry.die_cache

    @property
    def model(self):
        """The sole registered network (multi-tenant servers: use
        ``server.registry.get(name).network``)."""
        return self.registry.get(None).network

    @property
    def engines(self) -> Dict:
        """The sole registered model's engines dict (may be empty when
        the server was handed a bare callable)."""
        return self.registry.get(None).engines

    # ------------------------------------------------------------------
    def arm_model(self, name: Optional[str] = None,
                  coverage: float = 1.0) -> int:
        """Arm checksum guards on one model's engines (idempotent).

        Snapshots the healthy code planes, records the per-fragment
        sentinel sums and attaches a
        :class:`~repro.reram.faults.DieGuard` to every in-situ engine of
        the model.  Returns the number of dies now guarded.  Models
        registered after construction can be armed here; bare-callable
        networks have no dies and arm zero guards.
        """
        entry = self.registry.get(name)
        for layer, engine in entry.engines.items():
            key = (entry.name, layer)
            self.die_health.attach(entry.name, layer)
            if key in self._guards:
                continue
            guard = DieGuard(engine, coverage=coverage)
            engine.guard = guard
            self._guards[key] = guard
            self._engine_ids[id(engine)] = key
        return sum(1 for key in self._guards if key[0] == entry.name)

    def arm_profiling(self, name: Optional[str] = None) -> EngineProfiler:
        """Arm opt-in per-tier MVM profiling on one model (or all).

        Every subsequent ``matvec_int`` dispatch of the armed engines
        records its wall time into the
        ``forms_engine_profile_seconds{model,layer,tier}`` histogram and
        contributes per-layer ``engine`` spans to request traces.
        Timing only — armed engines compute bit-identical results.
        Idempotent; returns the server's :class:`EngineProfiler`.
        """
        if self.profiler is None:
            self.profiler = EngineProfiler(self.obs.metrics)
        names = self.registry.names() if name is None else [name]
        for model_name in names:
            entry = self.registry.get(model_name)
            self.profiler.arm(entry.engines, model=entry.name)
        return self.profiler

    # ------------------------------------------------------------------
    def submit_async(self, image: np.ndarray, *,
                     model: Optional[str] = None,
                     priority: Optional[str] = None,
                     deadline_s: Optional[float] = None,
                     trace_id: Optional[str] = None) -> Future:
        """Enqueue one image; the future resolves to a
        :class:`ServedResult` — or raises
        :class:`~repro.serving.scheduler.RequestShed` if the request was
        shed (deadline expired in queue, class latency bound hit, or
        refused at admission).

        ``model`` defaults to the sole registered model; ``priority``
        defaults to the policy's lowest-precedence class; ``deadline_s``
        is a relative latency budget — the request is shed, never
        dispatched, once it has been queued that long.  ``trace_id`` (the
        wire's ``X-Request-Id``) rides through to the served or shed
        receipt so one id traces the request across processes; in-process
        callers that pass none get one minted here, so
        :attr:`RequestStats.trace_id` is always populated and every
        request is queryable at ``GET /v1/trace/<id>``.
        """
        image = np.asarray(image)
        if image.ndim < 1:
            raise ValueError("image must be at least 1-D (no batch axis)")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 (or None)")
        if trace_id is None:
            trace_id = new_trace_id()
        with self._shutdown_lock:
            if self._shut_down:
                raise RuntimeError("server is shut down")
            # resolve + validate at the offending request, not at batch
            # stacking where failures would hit innocent batch mates
            entry = self.registry.get(model)
            self.registry.pin_shape(entry, image.shape)
            rank = self.policy.rank_of(priority)
            cls = self.policy.classes[rank]
            request_id = next(self._ids)
            if self.admission is not None and not self.admission.admit(
                    self.queue.depth, self.stats.occupancy()):
                receipt = ShedReceipt(
                    request_id=request_id, model=entry.name,
                    priority_class=cls.name, reason=SHED_ADMISSION,
                    queue_wait_s=0.0, deadline_s=deadline_s,
                    trace_id=trace_id)
                self._record_shed(receipt)
                refused: Future = Future()
                refused.set_exception(RequestShed(receipt))
                return refused
            request = SlaRequest(
                request_id=request_id, image=image, model=entry.name,
                class_rank=rank, priority_class=cls.name,
                deadline_t=(time.monotonic() + deadline_s
                            if deadline_s is not None else None),
                deadline_s=deadline_s, entry=entry, trace_id=trace_id)
            self.queue.put(request)
        return request.future

    def submit(self, image: np.ndarray, timeout: Optional[float] = None,
               **kwargs) -> ServedResult:
        """Serve one image, blocking until its batch completes (raises
        :class:`RequestShed` if it is shed instead)."""
        return self.submit_async(image, **kwargs).result(timeout)

    def submit_many(self, images: Iterable[np.ndarray],
                    timeout: Optional[float] = None,
                    **kwargs) -> List[ServedResult]:
        """Enqueue every image first, then wait — they may share batches."""
        futures = [self.submit_async(image, **kwargs) for image in images]
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------
    def server_stats(self) -> Dict:
        """Operational snapshot (see :meth:`ServerStats.snapshot`)."""
        return self.stats.snapshot(queue_depth=self.queue.depth)

    def registry_stats(self) -> Dict:
        """Structural snapshot of the tenant registry (die reuse etc.)."""
        return self.registry.stats()

    def metrics_text(self) -> str:
        """The Prometheus text exposition behind ``GET /metrics``
        (refreshes the pull gauges first)."""
        return self.obs.scrape()

    def usage_snapshot(self) -> Dict:
        """Per-(model, class) usage accounting behind ``GET /v1/usage``."""
        return self.obs.usage.snapshot()

    def trace(self, trace_id: str) -> Optional[Dict]:
        """The stored span tree for one request id (``None`` if unknown
        or already evicted from the bounded ring)."""
        return self.obs.traces.get(trace_id)

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Drain queued and in-flight requests, then stop.

        New submissions are refused immediately; everything already
        accepted is served (or shed, if its deadline expires while the
        drain is in progress).  Idempotent.  A server-owned registry
        (single-model path, ``from_model``) is closed once the batcher
        has drained; if ``timeout`` expires first it is left open so the
        background drain can still complete (closing the pool would fail
        accepted requests with a pool error) — a caller-owned registry
        is always left open.
        """
        with self._shutdown_lock:
            if self._shut_down:
                return
            self._shut_down = True
            self.queue.close()
        self.batcher.join(timeout)
        if self._owns_registry and not self.batcher.is_alive():
            self.registry.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def _dispatch(self, batch: List[SlaRequest]) -> None:
        """Run one coalesced batch: one tile per request, shared pool.

        The scheduler guarantees every request of a batch targets the
        same model, so one network forward serves them all.  The entry
        was resolved (and pinned on the request) at submit time, so an
        unregister between submit and dispatch cannot fail the batch.

        Fault recovery: a :class:`~repro.reram.faults.DieFaultDetected`
        escaping the forward (a checksum guard tripped before the faulty
        die could compute anything) quarantines the die, re-programs the
        replacement through the shared die cache and retries the whole
        batch — up to ``max_fault_retries`` rounds, after which every
        request is shed with an explicit ``fault_recovery`` receipt.
        Requests that complete across a recovery carry the recovery
        receipt on their :class:`RequestStats` and are bit-identical to a
        fault-free forward (the restored die *is* the healthy die).
        Dispatch boundaries are also where a configured
        :class:`~repro.reram.faults.FaultInjector` applies scripted chaos
        — the only point where no MVMs are in flight, so die mutation is
        race-free.
        """
        dispatch_t = time.monotonic()
        batch_id = next(self._batch_ids)
        entry = batch[0].entry
        tiles = [slice(i, i + 1) for i in range(len(batch))]
        tracing = self.obs.tracing
        recorders = ([SpanRecorder() for _ in batch] if tracing else None)
        recovery: Optional[Dict] = None
        retries = 0
        try:
            if self.fault_injector is not None:
                self.fault_injector.on_dispatch(self)
            stacked = np.stack([request.image for request in batch])
            while True:
                try:
                    results = infer_tiles(entry.network, stacked, tiles,
                                          pool=self.pool, collect_stats=True,
                                          span_recorders=recorders)
                    break
                except DieFaultDetected as fault:
                    self.stats.record_fault_detected()
                    self._m_faults.inc()
                    if retries >= self.max_fault_retries:
                        self._shed_batch_fault(batch, fault, dispatch_t,
                                               recovery)
                        return
                    retries += 1
                    recovery = self._recover_die(fault, retries, recovery)
        except BaseException:
            self.stats.record_failure(len(batch))
            self._m_failed.inc(len(batch))
            raise  # the batcher fails this batch's futures
        if recovery is not None:
            self.stats.record_recovery(len(batch))
            self._m_recovered.inc(len(batch))

        done_t = time.monotonic()
        service_s = done_t - dispatch_t
        self.stats.record_batch(len(batch), service_s)
        self._m_batches.inc()
        self._m_batch_size.observe(len(batch))
        for index, (request, (output, engine_stats)) in enumerate(
                zip(batch, results)):
            queue_wait_s = dispatch_t - request.enqueue_t
            latency_s = done_t - request.enqueue_t
            spans: Optional[List[Dict]] = None
            if tracing:
                # the span tree of the receipt: offsets are relative to
                # enqueue, tile/engine children come from the runtime's
                # recorder (duration-only when stitched across processes)
                spans = [span_dict(
                    "request", latency_s, start_s=0.0, children=[
                        span_dict("queue_wait", queue_wait_s, start_s=0.0),
                        span_dict("batch", service_s, start_s=queue_wait_s,
                                  batch_id=batch_id, batch_size=len(batch),
                                  children=recorders[index].spans),
                    ])]
            stats = RequestStats(
                request_id=request.request_id,
                batch_id=batch_id,
                batch_size=len(batch),
                queue_wait_s=queue_wait_s,
                service_s=service_s,
                latency_s=latency_s,
                engine_stats=engine_stats.as_dict(),
                model=request.model,
                priority_class=request.priority_class,
                deadline_s=request.deadline_s,
                recovery=recovery,
                trace_id=request.trace_id,
                spans=spans,
            )
            self.stats.record_request(stats)
            self._m_completed.labels(request.model,
                                     request.priority_class).inc()
            self._m_latency.labels(request.model,
                                   request.priority_class).observe(latency_s)
            self._m_queue_wait.labels(
                request.priority_class).observe(queue_wait_s)
            self.obs.usage.record_request(
                request.model, request.priority_class,
                macs=engine_stats.macs, die_seconds=service_s)
            if tracing and request.trace_id:
                self.obs.traces.put({
                    "trace_id": request.trace_id,
                    "request_id": request.request_id,
                    "model": request.model,
                    "class": request.priority_class,
                    "spans": spans,
                })
            # a client may have cancelled its future (e.g. a timed-out
            # submit); that must not poison its batch mates
            if not request.future.done():
                try:
                    request.future.set_result(ServedResult(output[0], stats))
                except InvalidStateError:   # cancelled between check and set
                    pass

    # ------------------------------------------------------------------
    def _recover_die(self, fault: DieFaultDetected, retries: int,
                     prior: Optional[Dict]) -> Dict:
        """Quarantine -> diagnose -> plan -> re-program -> back to healthy.

        Runs on the batcher thread between dispatch attempts.  Returns the
        JSON-ready recovery receipt attached to every request of the
        retried batch.  An unguarded engine (fault raised by a guard the
        server does not own) re-raises: there is no healthy reference to
        restore from, so the batch must fail loudly instead.
        """
        engine = fault.engine
        model, layer = self._engine_ids.get(
            id(engine), (getattr(engine, "name", "?"), "?"))
        guard = self._guards.get((model, layer))
        if guard is None:
            guard = getattr(engine, "guard", None)
        if guard is None:
            raise fault
        detail = ", ".join(f"{plane}: fragments "
                           f"{np.asarray(frags).tolist()}"
                           for plane, frags in fault.fragments.items())
        self.die_health.mark(model, layer, DIE_QUARANTINED,
                             detail=f"checksum mismatch ({detail})")
        masks = guard.diagnose(engine)
        plans = guard.plan_remap(engine)
        self.die_health.mark(model, layer, DIE_REPROGRAMMING)
        restore = guard.restore(engine, die_cache=self.die_cache)
        self.die_health.mark(model, layer, DIE_HEALTHY,
                             detail="replacement die programmed")
        self._m_fault_recoveries.inc()
        receipt = {
            "model": model,
            "layer": layer,
            "detected_planes": list(fault.planes),
            "faulty_fragments": {plane: np.asarray(frags).tolist()
                                 for plane, frags in fault.fragments.items()},
            "stuck_cells": {plane: int((mask != 0).sum())
                            for plane, mask in masks.items()},
            "mitigation": {plane: {
                "baseline_impact": plan.baseline_impact,
                "planned_impact": plan.planned_impact,
                "impact_reduction": plan.impact_reduction,
            } for plane, plan in plans.items()},
            "reprogram": restore,
            "retries": retries,
        }
        if prior is not None:
            receipt["prior_recoveries"] = (
                prior.get("prior_recoveries", 0) + 1)
        return receipt

    def _shed_batch_fault(self, batch: List[SlaRequest],
                          fault: DieFaultDetected, dispatch_t: float,
                          recovery: Optional[Dict]) -> None:
        """Retry budget exhausted: shed the batch with explicit receipts.

        The die stays quarantined (recovery could not hold), every future
        resolves exceptionally with a ``fault_recovery``
        :class:`ShedReceipt` — never a silent wrong answer, never a hung
        future — and the batcher keeps serving other models.
        """
        model, layer = self._engine_ids.get(id(fault.engine), ("?", "?"))
        self.die_health.mark(model, layer, DIE_QUARANTINED,
                             detail="retry budget exhausted")
        for request in batch:
            receipt = ShedReceipt(
                request_id=request.request_id, model=request.model,
                priority_class=request.priority_class,
                reason=SHED_FAULT_RECOVERY,
                queue_wait_s=dispatch_t - request.enqueue_t,
                deadline_s=request.deadline_s,
                trace_id=request.trace_id)
            self._record_shed(receipt)
            if not request.future.done():
                try:
                    request.future.set_exception(RequestShed(receipt))
                except InvalidStateError:
                    pass

"""ReRAM substrate: devices, crossbars, converters, mappings, in-situ engine.

The behavioural analog stack under the FORMS architecture: discrete-level
cells with lognormal variation (with VTEAM device dynamics underneath),
bit-sliced weight storage, crossbar MVM with optional wire parasitics and
nonlinear cell I-V, 1-bit DAC / fragment ADC conversion, the three
signed-weight mapping schemes (FORMS sign-indicator, ISAAC offset, PRIME
dual), and the bit-serial layer engine whose ideal output equals the integer
matmul exactly.
"""

from .bitslice import bit_slice, bit_unslice, num_slices, slice_weights
from .converters import (ADCSpec, DACSpec, SampleHold, paper_adc_bits,
                         required_adc_bits)
from .crossbar import CrossbarArray, SubArrayLayout
from .device import DeviceSpec, ReRAMDevice, codes_to_digital
from .engine import (DieCache, EngineStats, InSituLayerEngine, SignIndicator,
                     StatsScope, autotune_fused_kernel_max_elements,
                     build_engine, effective_levels,
                     fused_kernel_max_elements,
                     set_fused_kernel_max_elements)
from .faults import (DieFaultDetected, DieGuard, FaultEvent, FaultInjector,
                     InjectedDispatchError, fragment_sensitivity,
                     rank_engines_by_sensitivity)
from .mapping import SCHEMES, MappedLayer, infer_signs, map_layer
from .nonideal import (LINEAR_CELL, CellIV, FaultModel, IRDropPoint,
                       ReadNoise, WireModel, first_order_currents,
                       fragment_read_error, ideal_currents, ir_drop_study,
                       solve_ir_drop)
from .inference import (InSituConv2d, InSituLinear, build_insitu_network,
                        total_cycles_fed)
from .nonideal_engine import NonidealEngine, output_error
from .variation import (VariationResult, apply_variation, clone_model,
                        variation_study)
from .vteam import (ProgramResult, ProgramScheme, VTEAMCell, VTEAMParams,
                    device_spec_from_vteam, program_codes, program_level,
                    write_latency_s)

__all__ = [
    "DeviceSpec", "ReRAMDevice", "codes_to_digital",
    "ADCSpec", "DACSpec", "SampleHold", "required_adc_bits", "paper_adc_bits",
    "CrossbarArray", "SubArrayLayout",
    "bit_slice", "bit_unslice", "num_slices", "slice_weights",
    "MappedLayer", "map_layer", "infer_signs", "SCHEMES",
    "InSituLayerEngine", "SignIndicator", "EngineStats", "StatsScope",
    "DieCache",
    "build_engine", "effective_levels",
    "fused_kernel_max_elements", "set_fused_kernel_max_elements",
    "autotune_fused_kernel_max_elements",
    "apply_variation", "variation_study", "VariationResult", "clone_model",
    "VTEAMParams", "VTEAMCell", "ProgramScheme", "ProgramResult",
    "program_level", "program_codes", "device_spec_from_vteam",
    "write_latency_s",
    "WireModel", "CellIV", "LINEAR_CELL", "solve_ir_drop",
    "first_order_currents", "ideal_currents", "ir_drop_study", "IRDropPoint",
    "FaultModel", "ReadNoise", "fragment_read_error",
    "DieFaultDetected", "DieGuard", "FaultEvent", "FaultInjector",
    "InjectedDispatchError", "fragment_sensitivity",
    "rank_engines_by_sensitivity",
    "NonidealEngine", "output_error",
    "InSituConv2d", "InSituLinear", "build_insitu_network",
    "total_cycles_fed",
]

"""The FORMS optimization framework (paper Fig. 1/4).

``FORMSPipeline`` drives the three ADMM phases in the paper's order:

1. **crossbar-aware structured pruning** — filter + filter-shape pruning with
   keep counts snapped to crossbar granularity;
2. **fragment polarization** — same-sign fragments under the chosen mapping
   policy, signs re-estimated every M epochs;
3. **ReRAM-customized quantization** — weights snapped to a grid matching the
   cell resolution.

Constraints from earlier phases remain enforced in later ones (the pruned
structure is frozen into a mask; polarization signs keep projecting), so the
final model is feasible for *all* selected constraint sets simultaneously.
Each phase ends with a hard projection and masked fine-tune (ADMM-NN style).

The result object carries everything the hardware layer needs: fragment
geometry, fragment signs, integer weight levels and the per-layer scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.data import Dataset
from ..nn.layers import Conv2d, Linear, Module, compressible_layers
from ..nn.trainer import evaluate
from .admm import (ADMMConfig, ADMMReport, ADMMTrainer, Constraint,
                   PolarizationConstraint, QuantizationConstraint,
                   StructuredPruningConstraint)
from .compression import (CompressionReport, CrossbarShape,
                          model_compression_report)
from .fragments import FragmentGeometry
from .polarization import SignRule, compute_signs, is_polarized
from .pruning import PruningSpec, structured_mask
from .quantization import QuantizationSpec, layer_scale, quantize_to_int


class FrozenMaskConstraint(Constraint):
    """Keeps a previously-pruned structure fixed during later phases."""

    def __init__(self, mask: np.ndarray):
        self.mask = mask.astype(bool)

    def project(self, weight: np.ndarray) -> np.ndarray:
        return np.where(self.mask, weight, 0.0)

    def describe(self) -> str:
        live = int(self.mask.sum())
        return f"frozen-mask({live}/{self.mask.size} live)"


@dataclass
class FORMSConfig:
    """Configuration of the full optimization flow.

    The paper's headline design point is ``fragment_size=8``, W-major policy
    on ImageNet / C-major on CIFAR, 8-bit weights on 2-bit cells, 16-bit
    activations, 128x128 crossbars.  Scaled-down experiments shrink
    ``crossbar`` together with the models (see DESIGN.md).
    """

    fragment_size: int = 8
    policy: str = "w"
    sign_rule: SignRule = "sum"
    sign_refresh_every: int = 1          # the paper's M
    weight_bits: int = 8
    cell_bits: int = 2
    activation_bits: int = 16
    crossbar: CrossbarShape = field(default_factory=CrossbarShape)
    crossbar_aware: bool = True
    filter_keep: float = 0.6
    shape_keep: float = 0.6
    per_layer_keep: Dict[str, Dict[str, float]] = field(default_factory=dict)
    prune_first_conv: bool = False       # first layer is tiny & fragile
    prune_last_filters: bool = False     # last layer's filters are the classes
    baseline_bits: int = 32
    #: per-engine fused-kernel chunk budget for in-situ inference built from
    #: this config (None defers to the process-wide resolution: override >
    #: FORMS_FUSED_KERNEL_MAX_ELEMENTS env > optional autotune > default;
    #: see repro.reram.engine.fused_kernel_max_elements)
    fused_kernel_max_elements: Optional[int] = None
    # Phase toggles — used by ablations ("polarization only", "pruning only").
    do_prune: bool = True
    do_polarize: bool = True
    do_quantize: bool = True
    #: when resuming from an already-pruned model with do_prune=False, freeze
    #: its zero structure so later phases cannot regrow pruned weights
    freeze_existing_structure: bool = False
    prune_admm: ADMMConfig = field(default_factory=ADMMConfig)
    polarize_admm: ADMMConfig = field(default_factory=ADMMConfig)
    quantize_admm: ADMMConfig = field(default_factory=lambda: ADMMConfig(iterations=2))

    def quant_spec(self) -> QuantizationSpec:
        return QuantizationSpec(self.weight_bits, self.cell_bits)

    def geometry_for(self, layer) -> FragmentGeometry:
        return FragmentGeometry(tuple(layer.weight.shape), self.fragment_size, self.policy)


@dataclass
class LayerArtifacts:
    """Hardware-facing description of one optimized layer."""

    name: str
    geometry: FragmentGeometry
    signs: np.ndarray            # (fragments_per_column, cols), +1/-1
    scale: float                 # weight quantization scale
    int_weights: np.ndarray      # integer levels, original weight shape
    mask: np.ndarray             # surviving-weight mask (bool)

    @property
    def is_feasible(self) -> bool:
        return is_polarized(self.int_weights.astype(np.float64), self.geometry)


@dataclass
class FORMSResult:
    """Everything produced by :meth:`FORMSPipeline.optimize`."""

    model: Module
    config: FORMSConfig
    baseline_accuracy: float
    phase_accuracies: Dict[str, float] = field(default_factory=dict)
    phase_reports: Dict[str, ADMMReport] = field(default_factory=dict)
    compression: Optional[CompressionReport] = None
    layers: Dict[str, LayerArtifacts] = field(default_factory=dict)

    @property
    def final_accuracy(self) -> float:
        if not self.phase_accuracies:
            return self.baseline_accuracy
        return list(self.phase_accuracies.values())[-1]

    @property
    def accuracy_drop(self) -> float:
        """Positive = lost accuracy (paper's "Acc. Drop" column)."""
        return self.baseline_accuracy - self.final_accuracy


class FORMSPipeline:
    """Multi-step ADMM optimization producing a ReRAM-ready model."""

    def __init__(self, config: FORMSConfig):
        self.config = config

    # ------------------------------------------------------------------
    def _pruning_spec(self, name: str, layer) -> PruningSpec:
        cfg = self.config
        keep = cfg.per_layer_keep.get(name, {})
        filter_keep = keep.get("filter_keep", cfg.filter_keep)
        shape_keep = keep.get("shape_keep", cfg.shape_keep)
        geometry = cfg.geometry_for(layer)
        is_first_conv = isinstance(layer, Conv2d) and layer.weight.shape[1] <= 3
        is_classifier = isinstance(layer, Linear)
        if is_first_conv and not cfg.prune_first_conv:
            filter_keep, shape_keep = 1.0, 1.0
        if is_classifier and not cfg.prune_last_filters:
            filter_keep = 1.0  # never prune class outputs
        if cfg.crossbar_aware:
            row_gran = min(cfg.crossbar.rows, max(geometry.rows, 1))
            cells = cfg.quant_spec().cells_per_weight
            col_gran = min(max(cfg.crossbar.cols // cells, 1), max(geometry.cols, 1))
            # Snapping at full crossbar granularity is meaningless for layers
            # smaller than one crossbar; fall back to fragment granularity.
            if geometry.rows < cfg.crossbar.rows:
                row_gran = cfg.fragment_size
            if geometry.cols < col_gran:
                col_gran = 1
        else:
            row_gran = col_gran = 1
        return PruningSpec(filter_keep=filter_keep, shape_keep=shape_keep,
                           row_granularity=row_gran, col_granularity=col_gran)

    # ------------------------------------------------------------------
    def optimize(self, model: Module, train_set: Dataset,
                 test_set: Dataset, seed: int = 0,
                 verbose: bool = False) -> FORMSResult:
        """Run the enabled phases and collect hardware artifacts."""
        cfg = self.config
        result = FORMSResult(model=model, config=cfg,
                             baseline_accuracy=evaluate(model, test_set).accuracy)
        layers = dict(compressible_layers(model))
        carried: Dict[str, List[Constraint]] = {name: [] for name in layers}
        if not cfg.do_prune and cfg.freeze_existing_structure:
            for name, layer in layers.items():
                carried[name] = [FrozenMaskConstraint(
                    structured_mask(layer.weight.data, cfg.geometry_for(layer)))]

        if cfg.do_prune:
            constraints = {
                name: carried[name] + [StructuredPruningConstraint(
                    cfg.geometry_for(layer), self._pruning_spec(name, layer))]
                for name, layer in layers.items()
            }
            report = self._run_phase(model, constraints, cfg.prune_admm,
                                     train_set, test_set, seed, verbose)
            result.phase_reports["prune"] = report
            result.phase_accuracies["prune"] = report.final_test_accuracy
            # Freeze the pruned structure for the remaining phases.
            for name, layer in layers.items():
                carried[name] = [FrozenMaskConstraint(
                    structured_mask(layer.weight.data, cfg.geometry_for(layer)))]

        if cfg.do_polarize:
            polar = {name: PolarizationConstraint(
                cfg.geometry_for(layer), cfg.sign_rule, cfg.sign_refresh_every)
                for name, layer in layers.items()}
            constraints = {name: carried[name] + [polar[name]] for name in layers}
            report = self._run_phase(model, constraints, cfg.polarize_admm,
                                     train_set, test_set, seed + 1, verbose)
            result.phase_reports["polarize"] = report
            result.phase_accuracies["polarize"] = report.final_test_accuracy
            for name in layers:
                carried[name] = carried[name] + [polar[name]]

        if cfg.do_quantize:
            constraints = {name: carried[name] + [QuantizationConstraint(cfg.quant_spec())]
                           for name in layers}
            report = self._run_phase(model, constraints, cfg.quantize_admm,
                                     train_set, test_set, seed + 2, verbose)
            result.phase_reports["quantize"] = report
            result.phase_accuracies["quantize"] = report.final_test_accuracy

        result.layers = collect_layer_artifacts(model, cfg)
        result.compression = model_compression_report(
            model, cfg.fragment_size, cfg.policy, cfg.quant_spec(),
            crossbar=cfg.crossbar, baseline_bits=cfg.baseline_bits,
            cell_bits=cfg.cell_bits)
        return result

    def _run_phase(self, model: Module, constraints, admm_cfg: ADMMConfig,
                   train_set, test_set, seed: int, verbose: bool) -> ADMMReport:
        trainer = ADMMTrainer(model, constraints, admm_cfg)
        run_report = trainer.run(train_set, test_set=test_set, seed=seed, verbose=verbose)
        final_report = trainer.finalize(train_set, test_set=test_set, seed=seed, verbose=verbose)
        run_report.retrain_history = final_report.retrain_history
        run_report.final_test_accuracy = final_report.final_test_accuracy
        run_report.violations.extend(final_report.violations)
        return run_report


def collect_layer_artifacts(model: Module, config: FORMSConfig) -> Dict[str, LayerArtifacts]:
    """Extract geometry, signs, scales and integer levels per layer.

    Valid on any model; for un-polarized models the sign arrays are the sum
    rule's best guess (used by the ISAAC/PRIME baseline mappings that do not
    need them).
    """
    spec = config.quant_spec()
    artifacts: Dict[str, LayerArtifacts] = {}
    for name, layer in compressible_layers(model):
        geometry = config.geometry_for(layer)
        weight = layer.weight.data.astype(np.float64)
        scale = layer_scale(weight, spec)
        artifacts[name] = LayerArtifacts(
            name=name,
            geometry=geometry,
            signs=compute_signs(weight, geometry, config.sign_rule),
            scale=scale,
            int_weights=quantize_to_int(weight, spec, scale),
            mask=weight != 0.0,
        )
    return artifacts

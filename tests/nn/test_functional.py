"""Tests for conv/pool/batchnorm/losses, including adjointness and gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def naive_conv2d(x, w, b, stride, padding):
    """Reference convolution with explicit loops."""
    n, c, h, width = x.shape
    oc, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (width + 2 * padding - kw) // stride + 1
    out = np.zeros((n, oc, oh, ow))
    for i in range(n):
        for o in range(oc):
            for y in range(oh):
                for xx in range(ow):
                    patch = xp[i, :, y * stride:y * stride + kh, xx * stride:xx * stride + kw]
                    out[i, o, y, xx] = (patch * w[o]).sum() + (b[o] if b is not None else 0.0)
    return out


class TestIm2Col:
    def test_roundtrip_adjoint(self):
        # <im2col(x), y> == <x, col2im(y)> (adjointness).
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        cols = F.im2col(x, 3, 3, stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = (cols * y).sum()
        rhs = (x * F.col2im(y, x.shape, 3, 3, stride=1, padding=1)).sum()
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10)

    def test_shape(self):
        x = np.zeros((2, 3, 8, 8))
        cols = F.im2col(x, 3, 3, stride=2, padding=1)
        oh = ow = (8 + 2 - 3) // 2 + 1
        assert cols.shape == (3 * 9, oh * ow * 2)

    def test_output_size_validation(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (3, 2)])
    def test_matches_index_gather(self, stride, padding):
        """The sliding-window lowering equals the index-arithmetic gather."""
        rng = np.random.default_rng(7)
        x = rng.normal(size=(2, 3, 9, 7))
        kh = kw = 3
        xp = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                        (padding, padding))) if padding else x
        k, i, j, _, _ = F._im2col_indices(x.shape, kh, kw, stride, padding)
        gathered = xp[:, k, i, j]
        expected = gathered.transpose(1, 2, 0).reshape(gathered.shape[1], -1)
        np.testing.assert_array_equal(
            F.im2col(x, kh, kw, stride=stride, padding=padding), expected)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, stride, padding):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        np.testing.assert_allclose(out.data, naive_conv2d(x, w, b, stride, padding),
                                   rtol=1e-5, atol=1e-6)

    def test_no_bias(self):
        rng = np.random.default_rng(2)
        x, w = rng.normal(size=(1, 2, 5, 5)), rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, padding=1)
        np.testing.assert_allclose(out.data, naive_conv2d(x, w, None, 1, 1),
                                   rtol=1e-5, atol=1e-6)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((3, 5, 3, 3))))

    def test_gradients_numeric(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True, dtype=np.float64)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True, dtype=np.float64)
        b = Tensor(rng.normal(size=3), requires_grad=True, dtype=np.float64)
        out = F.conv2d(x, w, b, stride=2, padding=1)
        (out * out).sum().backward()
        eps = 1e-6
        for tensor, idx in ((w, (1, 0, 2, 1)), (x, (0, 1, 2, 3)), (b, (2,))):
            plus = tensor.data.copy(); plus[idx] += eps
            args = {id(x): x.data, id(w): w.data, id(b): b.data}
            args[id(tensor)] = plus
            outp = F.conv2d(Tensor(args[id(x)]), Tensor(args[id(w)]),
                            Tensor(args[id(b)]), stride=2, padding=1)
            numeric = ((outp.data ** 2).sum() - (out.data ** 2).sum()) / eps
            np.testing.assert_allclose(tensor.grad[idx], numeric, rtol=1e-3, atol=1e-3)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_array_equal(out.data[0, 0], [[5, 7], [13, 15.0]])

    def test_max_pool_stride(self):
        x = np.arange(25.0).reshape(1, 1, 5, 5)
        out = F.max_pool2d(Tensor(x), 3, stride=2)
        assert out.shape == (1, 1, 2, 2)

    def test_max_pool_gradient_routes_to_argmax(self):
        x = Tensor(np.array([[[[1.0, 3.0], [2.0, 0.0]]]]), requires_grad=True,
                   dtype=np.float64)
        F.max_pool2d(x, 2).sum().backward()
        np.testing.assert_array_equal(x.grad[0, 0], [[0, 1], [0, 0.0]])

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradient_uniform(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True, dtype=np.float64)
        F.avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 2, 2), 0.25))

    def test_global_avg_pool(self):
        x = Tensor(np.arange(8.0).reshape(1, 2, 2, 2))
        np.testing.assert_allclose(F.global_avg_pool2d(x).data, [[1.5, 5.5]])


class TestBatchNorm:
    def _run(self, training, x=None):
        rng = np.random.default_rng(4)
        x = Tensor(x if x is not None else rng.normal(2.0, 3.0, size=(8, 4, 3, 3)))
        gamma = Tensor(np.ones(4), requires_grad=True)
        beta = Tensor(np.zeros(4), requires_grad=True)
        mean = np.zeros(4, dtype=np.float64)
        var = np.ones(4, dtype=np.float64)
        out = F.batch_norm(x, gamma, beta, mean, var, training=training)
        return out, mean, var

    def test_training_normalizes(self):
        out, _, _ = self._run(True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_updated(self):
        _, mean, var = self._run(True)
        assert np.abs(mean).max() > 0.0
        assert not np.allclose(var, 1.0)

    def test_eval_uses_running_stats(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 2, 2, 2))
        gamma, beta = Tensor(np.ones(2)), Tensor(np.zeros(2))
        mean = np.array([1.0, -1.0])
        var = np.array([4.0, 9.0])
        out = F.batch_norm(Tensor(x), gamma, beta, mean, var, training=False)
        expected = (x - mean.reshape(1, 2, 1, 1)) / np.sqrt(var.reshape(1, 2, 1, 1) + 1e-5)
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_2d_input(self):
        x = Tensor(np.random.default_rng(6).normal(size=(16, 5)))
        out = F.batch_norm(x, Tensor(np.ones(5)), Tensor(np.zeros(5)),
                           np.zeros(5), np.ones(5), training=True)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-6)

    def test_gradient_flows_to_gamma_beta(self):
        x = Tensor(np.random.default_rng(7).normal(size=(4, 3, 2, 2)), dtype=np.float64)
        gamma = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        beta = Tensor(np.zeros(3), requires_grad=True, dtype=np.float64)
        out = F.batch_norm(x, gamma, beta, np.zeros(3), np.ones(3), training=True)
        (out * out).sum().backward()
        assert gamma.grad is not None and np.abs(gamma.grad).max() > 0
        assert beta.grad is not None


class TestLosses:
    def test_log_softmax_normalized(self):
        x = Tensor(np.random.default_rng(8).normal(size=(4, 5)) * 10)
        logp = F.log_softmax(x, axis=1)
        np.testing.assert_allclose(np.exp(logp.data).sum(axis=1), 1.0, rtol=1e-5)

    def test_log_softmax_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 0.0]]))
        assert np.isfinite(F.log_softmax(x, axis=1).data).all()

    def test_softmax_matches_manual(self):
        x = np.array([[1.0, 2.0, 3.0]])
        expected = np.exp(x) / np.exp(x).sum()
        np.testing.assert_allclose(F.softmax(Tensor(x), axis=1).data, expected, rtol=1e-5)

    def test_cross_entropy_value(self):
        logits = Tensor(np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]])))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        np.testing.assert_allclose(loss.item(), expected, rtol=1e-5)

    def test_cross_entropy_gradient(self):
        logits = Tensor(np.random.default_rng(9).normal(size=(3, 4)),
                        requires_grad=True, dtype=np.float64)
        targets = np.array([1, 0, 3])
        F.cross_entropy(logits, targets).backward()
        # dL/dlogits = (softmax - onehot)/N
        p = np.exp(logits.data - logits.data.max(axis=1, keepdims=True))
        p /= p.sum(axis=1, keepdims=True)
        onehot = np.eye(4)[targets]
        np.testing.assert_allclose(logits.grad, (p - onehot) / 3, atol=1e-6)

    def test_cross_entropy_rejects_2d_targets(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((2, 3)))

    def test_accuracy(self):
        logits = np.array([[1.0, 2.0], [3.0, 0.0]])
        assert F.accuracy(logits, np.array([1, 0])) == 1.0
        assert F.accuracy(logits, np.array([0, 0])) == 0.5

    def test_topk_accuracy(self):
        logits = np.array([[5.0, 4.0, 1.0, 0.0]])
        assert F.topk_accuracy(logits, np.array([1]), k=2) == 1.0
        assert F.topk_accuracy(logits, np.array([3]), k=2) == 0.0
        assert F.topk_accuracy(logits, np.array([3]), k=10) == 1.0  # k clamped


class TestDropout:
    def test_eval_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_training_scales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.3 < (out.data > 0).mean() < 0.7


@given(st.integers(2, 5), st.integers(2, 5), st.integers(1, 2))
@settings(max_examples=15, deadline=None)
def test_conv_linearity_property(h, w, stride):
    """conv(a*x) == a*conv(x): convolution is linear in its input."""
    rng = np.random.default_rng(42)
    x = rng.normal(size=(1, 2, h + 2, w + 2))
    weight = rng.normal(size=(3, 2, 3, 3))
    out1 = F.conv2d(Tensor(2.5 * x), Tensor(weight), None, stride=stride, padding=1).data
    out2 = 2.5 * F.conv2d(Tensor(x), Tensor(weight), None, stride=stride, padding=1).data
    np.testing.assert_allclose(out1, out2, rtol=1e-4, atol=1e-5)

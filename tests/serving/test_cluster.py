"""The cluster layer's in-process contract: ring, health, routing.

Two real :class:`~repro.serving.HttpFrontend` replicas with identical
deterministic networks stand behind a :class:`~repro.serving.
ClusterRouter`, so every routing decision is checkable against exact
expected outputs — a caller must not be able to tell the cluster from a
single front end (same envelopes, same receipts), except for the one
honest addition: ``cluster_unavailable`` when nobody can serve.
"""

import socket
import threading

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.serving import (ClusterRouter, HttpClient, HttpError,
                           HttpFrontend, InferenceServer, ModelRegistry,
                           ReplicaDirectory, RoutingPolicy)
from repro.serving.cluster import (REPLICA_DOWN, REPLICA_SUSPECT, REPLICA_UP,
                                   HashRing)
from repro.serving.cluster.directory import _ring_hash

EXPECTED = {"fast": (2.0, 1.0), "batch": (-3.0, 0.5)}


class TestHashRing:
    def test_deterministic_across_instances(self):
        names = [f"replica-{i}" for i in range(5)]
        a, b = HashRing(names), HashRing(names)
        for key in ("fast", "batch", "", "another-model"):
            assert a.preferred(key, 3) == b.preferred(key, 3)

    def test_preferred_are_distinct_and_capped(self):
        ring = HashRing(["a", "b", "c"])
        chosen = ring.preferred("model", 2)
        assert len(chosen) == len(set(chosen)) == 2
        assert ring.preferred("model", 10) and \
            sorted(ring.preferred("model", 10)) == ["a", "b", "c"]

    def test_keys_spread_over_replicas(self):
        names = [f"replica-{i}" for i in range(4)]
        ring = HashRing(names)
        primaries = {ring.preferred(f"key-{k}", 1)[0] for k in range(200)}
        assert primaries == set(names)

    def test_hash_is_process_stable(self):
        # sha256, not the salted builtin: a pinned value survives restarts
        assert _ring_hash("replica-0#0") == 0xEC8963B186885AE6

    def test_minimal_disruption_on_leave(self):
        """Keys not owned by the leaving replica keep their primary."""
        names = [f"replica-{i}" for i in range(4)]
        before = HashRing(names)
        after = HashRing([n for n in names if n != "replica-2"])
        for k in range(100):
            primary = before.preferred(f"key-{k}", 1)[0]
            if primary != "replica-2":
                assert after.preferred(f"key-{k}", 1)[0] == primary

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)


class TestDirectoryHealthMachine:
    def make_directory(self, **kwargs):
        kwargs.setdefault("suspect_after", 1)
        kwargs.setdefault("down_after", 3)
        return ReplicaDirectory({"r0": ("127.0.0.1", 1),
                                 "r1": ("127.0.0.1", 2)}, **kwargs)

    def test_failures_walk_up_suspect_down(self):
        directory = self.make_directory()
        assert directory.replica("r0").state == REPLICA_UP
        directory.report_failure("r0")
        assert directory.replica("r0").state == REPLICA_SUSPECT
        directory.report_failure("r0")
        directory.report_failure("r0")
        assert directory.replica("r0").state == REPLICA_DOWN

    def test_one_success_snaps_back_to_up(self):
        directory = self.make_directory()
        for _ in range(3):
            directory.report_failure("r0")
        assert directory.replica("r0").state == REPLICA_DOWN
        directory.report_success("r0")
        replica = directory.replica("r0")
        assert replica.state == REPLICA_UP
        assert replica.consecutive_failures == 0
        assert replica.transitions == 3   # up->suspect->down->up

    def test_candidates_order_and_exclusion(self):
        directory = self.make_directory(replication=1)
        preferred = directory.placement("fast")[0]
        other = next(n for n in directory.names() if n != preferred)
        assert directory.candidates("fast") == [preferred, other]
        for _ in range(3):
            directory.report_failure(preferred)
        assert directory.candidates("fast") == [other]   # down: excluded
        directory.report_failure(other)
        assert directory.candidates("fast") == [other]   # suspect: still in
        for _ in range(2):
            directory.report_failure(other)
        assert directory.candidates("fast") == []        # unavailable

    def test_strict_placement_never_spills(self):
        directory = self.make_directory(replication=1,
                                        strict_placement=True)
        preferred = directory.placement("fast")[0]
        assert directory.candidates("fast") == [preferred]
        for _ in range(3):
            directory.report_failure(preferred)
        assert directory.candidates("fast") == []

    def test_snapshot_shape(self):
        directory = self.make_directory()
        directory.report_failure("r1")
        snapshot = directory.snapshot()
        assert snapshot["counts"] == {"up": 1, "suspect": 1, "down": 0}
        assert snapshot["replicas"]["r1"]["failures"] == 1
        assert snapshot["replication"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaDirectory({})
        with pytest.raises(ValueError):
            self.make_directory(replication=0)
        with pytest.raises(ValueError):
            self.make_directory(suspect_after=3, down_after=1)


def linear_network(scale, shift):
    def network(tensor):
        return Tensor(tensor.data.reshape(tensor.data.shape[0], -1)
                      * scale + shift)
    return network


def make_replica():
    """One two-tenant front end; deterministic, so replicas are
    bit-identical by construction."""
    registry = ModelRegistry(workers=1)
    for name, (scale, shift) in EXPECTED.items():
        registry.register_network(name, linear_network(scale, shift))
    server = InferenceServer(registry=registry, max_batch=4, max_wait_s=0.0)
    return HttpFrontend(server, owns_server=True).start()


@pytest.fixture()
def cluster():
    frontends = {f"r{i}": make_replica() for i in range(2)}
    directory = ReplicaDirectory(
        {name: (f.host, f.port) for name, f in frontends.items()},
        replication=2, suspect_after=1, down_after=3,
        probe_interval_s=0.05, probe_timeout_s=2.0)
    policy = RoutingPolicy(attempt_timeout_s=10.0, max_attempts=3,
                           backoff_s=1e-3, backoff_cap_s=5e-3)
    router = ClusterRouter(directory, policy=policy,
                           own_directory=False).start()
    try:
        yield router, directory, frontends
    finally:
        router.shutdown()
        for frontend in frontends.values():
            frontend.shutdown()


class TestRouterEndToEnd:
    def test_infer_is_transparent_and_bit_exact(self, cluster):
        router, _, frontends = cluster
        client = HttpClient("127.0.0.1", router.port)
        image = np.arange(6.0)
        for model, (scale, shift) in EXPECTED.items():
            wire = client.infer(image, model=model, binary=(model == "fast"),
                                trace_id=f"trace-{model}")
            np.testing.assert_array_equal(wire.output, image * scale + shift)
            assert wire.stats["model"] == model
            assert wire.stats["trace_id"] == f"trace-{model}"

    def test_failover_survives_a_dead_primary(self, cluster):
        router, directory, frontends = cluster
        client = HttpClient("127.0.0.1", router.port)
        victim = directory.placement("fast")[0]
        frontends[victim].shutdown()     # socket gone: transport failures
        image = np.ones(4)
        wire = client.infer(image, model="fast")
        np.testing.assert_array_equal(wire.output, image * 2.0 + 1.0)
        assert router.stats.snapshot()["failovers"] >= 1
        assert directory.replica(victim).state != REPLICA_UP

    def test_all_replicas_down_yields_cluster_unavailable(self, cluster):
        router, directory, frontends = cluster
        client = HttpClient("127.0.0.1", router.port)
        for frontend in frontends.values():
            frontend.shutdown()
        with pytest.raises(HttpError) as info:
            client.infer(np.ones(4), model="fast", trace_id="trace-down")
        assert info.value.status == 503
        assert info.value.code == "cluster_unavailable"
        error = info.value.payload
        assert error["trace_id"] == "trace-down"
        assert error["retry_after_s"] > 0       # the 503 contract holds
        assert router.stats.snapshot()["unavailable"] == 1

    def test_batch_scatter_gather_bit_exact(self, cluster):
        router, _, _ = cluster
        client = HttpClient("127.0.0.1", router.port)
        images = np.arange(24.0).reshape(6, 4)
        results = client.infer_batch(images, model="batch")
        assert len(results) == 6
        for image, result in zip(images, results):
            assert not isinstance(result, HttpError)
            np.testing.assert_array_equal(result.output,
                                          image * -3.0 + 0.5)
        assert router.stats.snapshot()["batch_items"] == 6

    def test_batch_with_cluster_down_gets_per_item_receipts(self, cluster):
        router, _, frontends = cluster
        client = HttpClient("127.0.0.1", router.port)
        for frontend in frontends.values():
            frontend.shutdown()
        results = client.infer_batch(np.ones((3, 4)), model="fast")
        assert len(results) == 3
        for item in results:
            assert isinstance(item, HttpError)
            assert item.code == "cluster_unavailable"
        snapshot = router.stats.snapshot()
        assert snapshot["batch_items_unavailable"] == 3

    def test_draining_router_refuses_with_receipt(self, cluster):
        router, _, _ = cluster
        client = HttpClient("127.0.0.1", router.port)
        router._draining = True
        try:
            with pytest.raises(HttpError) as info:
                client.infer(np.ones(4), model="fast")
        finally:
            router._draining = False
        assert info.value.status == 503
        assert info.value.code == "shutting_down"

    def test_healthz_reflects_replica_counts(self, cluster):
        router, directory, frontends = cluster
        client = HttpClient("127.0.0.1", router.port)
        payload = client.healthz()
        assert payload["role"] == "router"
        assert payload["status"] == "ok"
        assert payload["replicas"] == {"up": 2, "suspect": 0, "down": 0}
        victim = directory.names()[0]
        frontends[victim].shutdown()
        directory.probe_once()
        degraded = client.healthz()
        assert degraded["status"] == "degraded"
        assert degraded["replicas"]["up"] == 1

    def test_models_endpoint_grafts_placement(self, cluster):
        router, directory, _ = cluster
        client = HttpClient("127.0.0.1", router.port)
        payload = client.models()
        assert sorted(payload["models"]) == ["batch", "fast"]
        assert payload["placement"]["fast"] == directory.placement("fast")
        assert payload["placement"]["batch"] == directory.placement("batch")

    def test_cluster_endpoint_is_the_operator_view(self, cluster):
        router, _, _ = cluster
        client = HttpClient("127.0.0.1", router.port)
        client.infer(np.ones(4), model="fast")
        status, payload = client.request("GET", "/v1/cluster")
        assert status == 200
        assert payload["role"] == "router"
        assert payload["policy"] == router.policy.as_dict()
        assert payload["directory"]["counts"]["up"] == 2
        assert payload["router"]["requests"] >= 1
        for name in ("r0", "r1"):
            assert "requests_completed" in payload["replica_stats"][name]

    def test_probe_marks_dead_then_restarted(self, cluster):
        """The probe loop's state machine against real sockets: a dead
        replica walks to down, a replacement on the same port rejoins."""
        router, directory, frontends = cluster
        victim = directory.names()[0]
        frontends[victim].shutdown()
        for _ in range(3):
            directory.probe_once()
        assert directory.replica(victim).state == REPLICA_DOWN
        replacement = make_replica()
        try:
            directory.replica(victim).host = replacement.host
            directory.replica(victim).port = replacement.port
            assert directory.probe_once()[victim] == REPLICA_UP
        finally:
            replacement.shutdown()


class TestHedging:
    def test_hedge_beats_a_blackholed_primary(self):
        """First candidate accepts the connection and never answers (a
        listening-but-stuck socket); the hedge fires after the delay and
        its answer wins."""
        blackhole = socket.socket()
        blackhole.bind(("127.0.0.1", 0))
        blackhole.listen(8)
        live = make_replica()
        directory = ReplicaDirectory(
            {"stuck": ("127.0.0.1", blackhole.getsockname()[1]),
             "live": (live.host, live.port)},
            replication=2, suspect_after=1, down_after=3)
        # pin the plan order: the stuck replica must be first everywhere
        directory.placement = lambda model: ["stuck", "live"]
        directory.candidates = lambda model: ["stuck", "live"]
        policy = RoutingPolicy(attempt_timeout_s=8.0, max_attempts=2,
                               hedge_delay_s=0.05)
        router = ClusterRouter(directory, policy=policy,
                               own_directory=False).start()
        try:
            client = HttpClient("127.0.0.1", router.port, timeout=15.0)
            image = np.ones(4)
            wire = client.infer(image, model="fast")
            np.testing.assert_array_equal(wire.output, image * 2.0 + 1.0)
            snapshot = router.stats.snapshot()
            assert snapshot["hedges_fired"] == 1
            assert snapshot["hedges_won"] == 1
        finally:
            router.shutdown()
            live.shutdown()
            blackhole.close()


class TestRoutingPolicy:
    def test_backoff_schedule_caps(self):
        policy = RoutingPolicy(backoff_s=0.01, backoff_cap_s=0.05)
        assert [policy.backoff_delay(i) for i in (1, 2, 3, 4, 5)] == \
            [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_validation(self):
        with pytest.raises(ValueError):
            RoutingPolicy(attempt_timeout_s=0.0)
        with pytest.raises(ValueError):
            RoutingPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RoutingPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RoutingPolicy(hedge_delay_s=-0.1)

    def test_wire_echo(self):
        policy = RoutingPolicy(hedge_delay_s=0.25)
        assert policy.as_dict()["hedge_delay_s"] == 0.25

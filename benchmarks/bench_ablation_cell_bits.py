"""Ablation — bits per ReRAM cell (the Sec. IV-C design-space sweep).

"Through design space explorations, we find that 2-bit ReRAM cells delivers
a better energy-efficiency than other number of bits per cell (e.g., 4-bit,
8-bit).  ADC bits increase as we increase the ReRAM cell bits, thereby
consuming more power and area.  More importantly, using more bits per cell
... introduces imprecision in analog computing and is more prone to process
variation."

This bench regenerates the sweep with :mod:`repro.arch.dse` under both ADC
sizing rules and checks the published conclusion:

* under worst-case-exact ADC sizing, 2-bit cells win GOPs/W outright;
* under the paper's typical-case sizing, 4-bit cells look marginally better
  on raw efficiency but fall below the 3-sigma level-separation margin —
  the variation argument is what rules them out.
"""

from repro.analysis import ExperimentTable
from repro.arch.dse import best_energy_efficiency, cell_bits_sweep
from repro.runtime import resolve_workers


def run_sweep(variation_sigma: float = 0.1, workers: int = None,
              backend: str = None):
    rows = []
    extras = {}
    for rule in ("exact", "paper"):
        for ev in cell_bits_sweep(adc_rule=rule,
                                  variation_sigma=variation_sigma,
                                  workers=resolve_workers(workers),
                                  backend=backend):
            rows.append([
                rule, ev.point.cell_bits, ev.point.adc_bits,
                ev.gops_per_w, ev.gops_per_mm2,
                ev.adc_power_fraction * 100.0,
                ev.level_margin_sigmas, ev.variation_feasible,
            ])
            extras[(rule, ev.point.cell_bits)] = ev
    table = ExperimentTable(
        "Ablation: bits per cell (fragment 8, sigma=0.1 variation)",
        ["ADC rule", "cell bits", "ADC bits", "GOPs/W", "GOPs/mm2",
         "ADC power %", "level margin (sigma)", "feasible"],
        rows)
    table.extras["evaluations"] = extras
    return table


def test_ablation_cell_bits(benchmark, save_table):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_table("ablation_cell_bits", result)
    benchmark.extra_info["table"] = result.rendered
    evals = result.extras["evaluations"]
    # The published conclusion under both sizing rules.
    for rule in ("exact", "paper"):
        pool = [ev for (r, _), ev in evals.items() if r == rule]
        assert best_energy_efficiency(pool).point.cell_bits == 2
    # Under exact sizing, 2-bit wins even without the feasibility filter.
    exact = [ev for (r, _), ev in evals.items() if r == "exact"]
    assert best_energy_efficiency(exact,
                                  require_feasible=False).point.cell_bits == 2
    # 4- and 8-bit cells fail the variation margin.
    assert not evals[("exact", 4)].variation_feasible
    assert not evals[("exact", 8)].variation_feasible

"""Tile design: 12 MCUs + digital unit + eDRAM (paper Fig. 10, Table IV).

The digital unit (shift&add tree, ReLU/activation function, output registers,
max-pool support) and the tile eDRAM are rolled into the published "Dig unit"
row of Table IV.  FORMS needs a larger eDRAM (128 KB vs 64 KB) and wider bus
(512 vs 256 bits) because its fine-grained fragments finish more results per
unit time — the extra digital power is visible in the published numbers
(53.05 mW vs 40.85 mW).
"""

from __future__ import annotations

from dataclasses import dataclass

from .mcu import MCUDesign, forms_mcu, isaac_mcu


@dataclass(frozen=True)
class TileDesign:
    """One tile: ``mcus`` MCU instances plus the digital unit."""

    name: str
    mcu: MCUDesign
    mcus: int = 12
    digital_power_mw: float = 0.0
    digital_area_mm2: float = 0.0
    edram_kb: int = 64
    bus_bits: int = 256

    @property
    def mcus_power_mw(self) -> float:
        return self.mcu.power_mw * self.mcus

    @property
    def mcus_area_mm2(self) -> float:
        return self.mcu.area_mm2 * self.mcus

    @property
    def power_mw(self) -> float:
        return self.mcus_power_mw + self.digital_power_mw

    @property
    def area_mm2(self) -> float:
        return self.mcus_area_mm2 + self.digital_area_mm2

    @property
    def crossbars(self) -> int:
        return self.mcus * self.mcu.crossbars


def forms_tile(fragment_size: int = 8) -> TileDesign:
    """FORMS tile (Table IV): published digital unit 53.05 mW.

    The published tile area column (0.39) is rounded; the 168-tile total
    (66.27 mm2) implies 0.3945 mm2 per tile, hence a 0.2425 mm2 digital unit
    next to the 0.152 mm2 MCU block.
    """
    return TileDesign(
        name=f"FORMS-{fragment_size}",
        mcu=forms_mcu(fragment_size),
        digital_power_mw=53.05,
        digital_area_mm2=0.2425,
        edram_kb=128,
        bus_bits=512,
    )


def isaac_tile() -> TileDesign:
    """ISAAC tile (Table IV): digital unit 40.85 mW / 0.2123 mm2 (from the
    168-tile total of 62.21 mm2)."""
    return TileDesign(
        name="ISAAC",
        mcu=isaac_mcu(),
        digital_power_mw=40.85,
        digital_area_mm2=0.2123,
        edram_kb=64,
        bus_bits=256,
    )

"""Cross-module integration: train -> optimize -> map -> simulate -> analyze.

These tests exercise the full FORMS story on one small model: the ADMM
pipeline's output runs on the simulated crossbar hardware and produces the
same classifications as its digital counterpart; the architecture model
consumes the same model's workload.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # Full train -> optimize -> simulate pipeline

from repro.arch import extract_workload, forms_config, isaac32_config, network_performance
from repro.core import (ADMMConfig, CrossbarShape, FORMSConfig, FORMSPipeline,
                        activation_to_int)
from repro.nn import (Adam, Conv2d, Flatten, Linear, ReLU, Sequential, Tensor,
                      evaluate, fit, no_grad, set_init_seed)
from repro.nn import functional as F
from repro.nn.data import make_synthetic
from repro.reram import DeviceSpec, ReRAMDevice, build_engine
from repro.reram.variation import clone_model, variation_study


@pytest.fixture(scope="module")
def optimized():
    train, test = make_synthetic("e2e", 4, 1, 8, 160, 64, seed=31)
    set_init_seed(31)
    model = Sequential(Conv2d(1, 8, 3, padding=1), ReLU(),
                       Flatten(), Linear(8 * 8 * 8, 4))
    fit(model, train, Adam(model.parameters(), 1e-3), epochs=4, batch_size=16)
    admm = ADMMConfig(iterations=2, epochs_per_iteration=1, retrain_epochs=2)
    config = FORMSConfig(fragment_size=4, crossbar=CrossbarShape(16, 16),
                         filter_keep=0.75, shape_keep=0.75,
                         prune_admm=admm, polarize_admm=admm, quantize_admm=admm)
    result = FORMSPipeline(config).optimize(model, train, test, seed=31)
    return model, config, result, train, test


class TestPipelineToHardware:
    def test_final_accuracy_usable(self, optimized):
        _, _, result, _, test = optimized
        assert result.final_accuracy > 0.5

    def test_conv_layer_runs_in_situ_exactly(self, optimized):
        """The optimized conv layer computed on the simulated crossbars equals
        the quantized digital computation bit for bit."""
        model, config, result, _, test = optimized
        conv = model[0]
        art = result.layers["0"]
        geometry = art.geometry
        levels_matrix = geometry.matrix(art.int_weights)

        images = test.images[:4]
        cols = F.im2col(images, 3, 3, stride=1, padding=1)
        x_int, x_scale = activation_to_int(np.abs(cols), bits=8)

        device = ReRAMDevice(DeviceSpec(cell_bits=config.cell_bits), 0.0)
        engine = build_engine(levels_matrix, geometry, config.quant_spec(),
                              device, scheme="forms", signs=art.signs,
                              activation_bits=8)
        in_situ = engine.matvec_int(x_int)
        digital = levels_matrix.T @ x_int
        np.testing.assert_array_equal(in_situ, digital)

    def test_in_situ_network_matches_digital_predictions(self, optimized):
        """Replacing every layer's weights with the crossbar-effective weights
        (ideal devices) leaves predictions identical."""
        model, config, result, _, test = optimized
        from repro.reram.variation import apply_variation
        twin = apply_variation(model, config, sigma=0.0, scheme="forms")
        x = Tensor(test.images[:32])
        with no_grad():
            model.eval(); twin.eval()
            base = model(x).data.argmax(axis=1)
            mapped = twin(x).data.argmax(axis=1)
            model.train(); twin.train()
        assert (base == mapped).mean() > 0.9  # only quantized-scale roundoff

    def test_variation_hurts_more_with_pruning(self, optimized):
        """Table VI's qualitative claim on this small model: the pruned model
        is at least as sensitive to variation as the unpruned one (averaged
        over several dies)."""
        model, config, result, train, test = optimized
        study = variation_study(model, config, test, sigma=0.2, runs=6,
                                scheme="forms", seed=3)
        assert study.mean_degradation > -0.05  # variation never helps on average

    def test_workload_feeds_perf_model(self, optimized):
        model, _, result, _, test = optimized
        workload = extract_workload(model, test, fragment_sizes=(4, 8),
                                    sample_images=4)
        assert workload.prune_ratio > 1.0
        base = network_performance(workload, isaac32_config(tiles=1))
        fast = network_performance(workload, forms_config(8, tiles=1))
        assert base.fps > 0 and fast.fps > 0

    def test_compression_report_consistent_with_artifacts(self, optimized):
        _, _, result, _, _ = optimized
        report = result.compression
        # prune ratio from the report agrees with live weight counting
        live = sum(np.count_nonzero(a.int_weights) for a in result.layers.values())
        assert live > 0
        assert report.crossbar_reduction >= report.quantization_factor

"""Autograd engine tests: forward semantics and gradient correctness.

Every primitive gets a numerical gradient check (float64, central
differences) in addition to shape/semantics tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, concatenate, no_grad, stack, unbroadcast


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fplus = fn(x)
        flat[i] = orig - eps
        fminus = fn(x)
        flat[i] = orig
        gflat[i] = (fplus - fminus) / (2 * eps)
    return grad


def check_gradient(op, *shapes, seed=0, atol=1e-4):
    """Compare autograd gradients of sum(op(*tensors)) to numeric ones."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=s).astype(np.float64) + 0.5 for s in shapes]
    tensors = [Tensor(a.copy(), requires_grad=True, dtype=np.float64) for a in arrays]
    out = op(*tensors)
    out.sum().backward()
    for i, (arr, tensor) in enumerate(zip(arrays, tensors)):
        def scalar_fn(x, idx=i):
            args = [Tensor(a) for a in arrays]
            args[idx] = Tensor(x)
            return float(op(*args).sum().data)
        expected = numeric_grad(scalar_fn, arr.copy())
        assert tensor.grad is not None, f"operand {i} got no gradient"
        np.testing.assert_allclose(tensor.grad, expected, atol=atol,
                                   err_msg=f"gradient mismatch for operand {i}")


class TestForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_add_scalar_broadcast(self):
        out = Tensor([[1.0, 2.0]]) + 1.0
        np.testing.assert_array_equal(out.data, [[2.0, 3.0]])

    def test_sub_rsub(self):
        np.testing.assert_array_equal((1.0 - Tensor([1.0, 2.0])).data, [0.0, -1.0])

    def test_mul_div(self):
        a = Tensor([2.0, 4.0])
        np.testing.assert_array_equal((a * 3).data, [6.0, 12.0])
        np.testing.assert_array_equal((a / 2).data, [1.0, 2.0])

    def test_rtruediv(self):
        np.testing.assert_allclose((1.0 / Tensor([2.0, 4.0])).data, [0.5, 0.25])

    def test_pow(self):
        np.testing.assert_array_equal((Tensor([2.0, 3.0]) ** 2).data, [4.0, 9.0])

    def test_pow_non_scalar_raises(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_array_equal((a @ b).data, np.array([[19, 22], [43, 50.0]]))

    def test_neg(self):
        np.testing.assert_array_equal((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_relu(self):
        np.testing.assert_array_equal(Tensor([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0])

    def test_clip(self):
        np.testing.assert_array_equal(Tensor([-2.0, 0.5, 3.0]).clip(-1, 1).data,
                                      [-1.0, 0.5, 1.0])

    def test_reductions(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.sum().item() == 10.0
        assert t.mean().item() == 2.5
        np.testing.assert_array_equal(t.sum(axis=0).data, [4.0, 6.0])
        np.testing.assert_array_equal(t.max(axis=1).data, [2.0, 4.0])
        np.testing.assert_array_equal(t.min(axis=1).data, [1.0, 3.0])

    def test_var(self):
        data = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(Tensor(data).var(axis=1).data, np.var(data, axis=1))

    def test_reshape_transpose(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape(2, 3).T.shape == (3, 2)
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_getitem(self):
        t = Tensor(np.arange(10.0))
        np.testing.assert_array_equal(t[2:5].data, [2.0, 3.0, 4.0])

    def test_pad2d(self):
        t = Tensor(np.ones((1, 1, 2, 2)))
        assert t.pad2d(1).shape == (1, 1, 4, 4)
        assert t.pad2d(0) is t

    def test_concatenate_stack(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        np.testing.assert_array_equal(concatenate([a, b]).data, [1, 2, 3, 4.0])
        assert stack([a, b]).shape == (2, 2)

    def test_repr_and_len(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        assert "requires_grad" in repr(t)
        assert len(t) == 2

    def test_item_detach(self):
        t = Tensor([3.5], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert Tensor(2.0).item() == 2.0


class TestBackward:
    def test_add_gradient(self):
        check_gradient(lambda a, b: a + b, (3,), (3,))

    def test_add_broadcast_gradient(self):
        check_gradient(lambda a, b: a + b, (2, 3), (3,))
        check_gradient(lambda a, b: a + b, (2, 3), (1, 3))

    def test_sub_gradient(self):
        check_gradient(lambda a, b: a - b, (4,), (4,))

    def test_mul_gradient(self):
        check_gradient(lambda a, b: a * b, (2, 2), (2, 2))

    def test_mul_broadcast_gradient(self):
        check_gradient(lambda a, b: a * b, (2, 3), (1, 3))

    def test_div_gradient(self):
        check_gradient(lambda a, b: a / (b * b + 1.0), (3,), (3,))

    def test_pow_gradient(self):
        check_gradient(lambda a: (a * a + 1.0) ** 1.5, (3,))

    def test_matmul_gradient(self):
        check_gradient(lambda a, b: a @ b, (2, 3), (3, 4))

    def test_matmul_vector_gradient(self):
        check_gradient(lambda a, b: a @ b, (3,), (3, 2))
        check_gradient(lambda a, b: a @ b, (2, 3), (3,))

    def test_exp_log_sqrt_tanh_sigmoid(self):
        check_gradient(lambda a: (a * a + 1.0).exp() * 1e-1, (3,))
        check_gradient(lambda a: (a * a + 1.0).log(), (3,))
        check_gradient(lambda a: (a * a + 1.0).sqrt(), (3,))
        check_gradient(lambda a: a.tanh(), (3,))
        check_gradient(lambda a: a.sigmoid(), (3,))

    def test_abs_gradient(self):
        check_gradient(lambda a: (a + 10.0).abs(), (3,))

    def test_relu_gradient(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True, dtype=np.float64)
        x.relu().sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0])

    def test_sum_axis_gradient(self):
        check_gradient(lambda a: a.sum(axis=1), (2, 3))
        check_gradient(lambda a: a.sum(axis=(0, 2), keepdims=True), (2, 3, 2))

    def test_mean_gradient(self):
        check_gradient(lambda a: a.mean(axis=0), (4, 2))

    def test_max_gradient_unique(self):
        x = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True, dtype=np.float64)
        x.max(axis=1).sum().backward()
        np.testing.assert_array_equal(x.grad, [[0, 1], [1, 0.0]])

    def test_max_gradient_ties_split(self):
        x = Tensor(np.array([2.0, 2.0]), requires_grad=True, dtype=np.float64)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])

    def test_reshape_transpose_gradient(self):
        check_gradient(lambda a: a.reshape(6) * np.arange(6.0), (2, 3))
        check_gradient(lambda a: a.transpose(1, 0) @ a, (2, 3))

    def test_getitem_gradient(self):
        x = Tensor(np.arange(5.0), requires_grad=True, dtype=np.float64)
        (x[1:3] * 2.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [0, 2, 2, 0, 0.0])

    def test_clip_gradient(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True, dtype=np.float64)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])

    def test_pad2d_gradient(self):
        check_gradient(lambda a: a.pad2d(1), (1, 1, 2, 2))

    def test_concatenate_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True, dtype=np.float64)
        b = Tensor([3.0], requires_grad=True, dtype=np.float64)
        (concatenate([a, b]) * np.array([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 2.0])
        np.testing.assert_array_equal(b.grad, [3.0])

    def test_stack_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True, dtype=np.float64)
        b = Tensor([3.0, 4.0], requires_grad=True, dtype=np.float64)
        (stack([a, b], axis=0) * np.array([[1.0, 1.0], [2.0, 2.0]])).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 1.0])
        np.testing.assert_array_equal(b.grad, [2.0, 2.0])

    def test_diamond_graph_accumulates(self):
        # y = x*x + x*x: gradient must be 4x, not 2x (shared subexpression).
        x = Tensor([3.0], requires_grad=True, dtype=np.float64)
        y = x * x
        (y + y).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_repeated_backward_accumulates_on_leaves(self):
        x = Tensor([1.0], requires_grad=True, dtype=np.float64)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_seed_shape_mismatch(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(3))

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True, dtype=np.float64)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()  # iterative topo sort: must not hit recursion limit
        np.testing.assert_allclose(x.grad, [1.0])


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        assert (x * 2.0).requires_grad

    def test_nested_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            with no_grad():
                pass
            assert not (x * 1.0).requires_grad


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_leading_axis(self):
        np.testing.assert_array_equal(unbroadcast(np.ones((4, 2)), (2,)), [4.0, 4.0])

    def test_keepdim_axis(self):
        out = unbroadcast(np.ones((2, 3)), (2, 1))
        np.testing.assert_array_equal(out, [[3.0], [3.0]])

    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_property_sum_preserved(self, a, b):
        grad = np.ones((a, b))
        out = unbroadcast(grad, (1, b))
        assert out.shape == (1, b)
        assert out.sum() == grad.sum()

"""Non-ideal engine tests: each physics knob degrades output attributably."""

import numpy as np
import pytest

from repro.core.fragments import FragmentGeometry
from repro.core.quantization import QuantizationSpec
from repro.reram import DeviceSpec, ReRAMDevice
from repro.reram.mapping import infer_signs, map_layer
from repro.reram.nonideal import CellIV, FaultModel, ReadNoise, WireModel
from repro.reram.nonideal_engine import NonidealEngine, output_error


@pytest.fixture(scope="module")
def mapped_layer():
    rng = np.random.default_rng(0)
    geometry = FragmentGeometry((8, 2, 3, 3), 4, "w")   # 18 rows x 8 cols
    levels = rng.integers(-20, 21, size=(geometry.rows, geometry.cols))
    # polarize each fragment to the FORMS property
    stack_rows = geometry.padded_rows
    padded = np.vstack([levels,
                        np.zeros((stack_rows - geometry.rows, geometry.cols),
                                 dtype=levels.dtype)])
    stack = padded.reshape(-1, geometry.fragment_size, geometry.cols)
    signs = np.where(stack.sum(axis=1, keepdims=True) >= 0, 1, -1)
    stack = np.abs(stack) * signs
    levels = stack.reshape(stack_rows, geometry.cols)[:geometry.rows]
    spec = QuantizationSpec(weight_bits=8, cell_bits=2)
    mapped = map_layer(levels, geometry, spec, scheme="forms",
                       signs=infer_signs(levels, geometry))
    return mapped, geometry


@pytest.fixture(scope="module")
def test_inputs(mapped_layer):
    _, geometry = mapped_layer
    rng = np.random.default_rng(1)
    return rng.integers(0, 200, size=(geometry.rows, 12))


def exact_engine(mapped):
    return NonidealEngine(mapped, ReRAMDevice(DeviceSpec(), 0.0),
                          activation_bits=8)


class TestExactness:
    def test_all_knobs_off_is_bit_exact(self, mapped_layer, test_inputs):
        mapped, _ = mapped_layer
        engine = exact_engine(mapped)
        out = engine.matvec_int(test_inputs)
        # Independent reference: the parent class path.
        from repro.reram.engine import InSituLayerEngine
        reference = InSituLayerEngine(mapped, ReRAMDevice(DeviceSpec(), 0.0),
                                      activation_bits=8)
        np.testing.assert_array_equal(out, reference.matvec_int(test_inputs))

    def test_zero_fault_rate_is_exact(self, mapped_layer, test_inputs):
        mapped, _ = mapped_layer
        engine = NonidealEngine(mapped, ReRAMDevice(DeviceSpec(), 0.0),
                                activation_bits=8,
                                fault_model=FaultModel(0.0, 0.0, seed=0))
        assert engine.fault_fraction == 0.0
        assert output_error(engine, exact_engine(mapped), test_inputs) == 0.0


class TestFaults:
    def test_faults_perturb_output(self, mapped_layer, test_inputs):
        mapped, _ = mapped_layer
        engine = NonidealEngine(mapped, ReRAMDevice(DeviceSpec(), 0.0),
                                activation_bits=8,
                                fault_model=FaultModel(0.1, 0.02, seed=2))
        assert engine.fault_fraction > 0.05
        assert output_error(engine, exact_engine(mapped), test_inputs) > 0.0

    def test_error_grows_with_fault_rate(self, mapped_layer, test_inputs):
        mapped, _ = mapped_layer
        reference = exact_engine(mapped)
        errors = []
        for rate in (0.01, 0.05, 0.25):
            per_seed = []
            for seed in range(3):
                engine = NonidealEngine(
                    mapped, ReRAMDevice(DeviceSpec(), 0.0), activation_bits=8,
                    fault_model=FaultModel(rate, rate / 10, seed=seed))
                per_seed.append(output_error(engine, reference, test_inputs))
            errors.append(np.mean(per_seed))
        assert errors[0] < errors[2]


class TestIRDrop:
    def test_wire_requires_cell_iv(self, mapped_layer):
        mapped, _ = mapped_layer
        with pytest.raises(ValueError):
            NonidealEngine(mapped, ReRAMDevice(DeviceSpec(), 0.0),
                           wire=WireModel())

    def test_ir_drop_perturbs_output(self, mapped_layer, test_inputs):
        mapped, _ = mapped_layer
        engine = NonidealEngine(mapped, ReRAMDevice(DeviceSpec(), 0.0),
                                activation_bits=8,
                                wire=WireModel(r_wire_ohm=20.0),
                                cell_iv=CellIV(nonlinearity=3.0))
        error = output_error(engine, exact_engine(mapped), test_inputs)
        assert error > 0.0

    def test_error_grows_with_wire_resistance(self, mapped_layer, test_inputs):
        mapped, _ = mapped_layer
        reference = exact_engine(mapped)
        errors = []
        for r_wire in (1.0, 50.0):
            engine = NonidealEngine(mapped, ReRAMDevice(DeviceSpec(), 0.0),
                                    activation_bits=8,
                                    wire=WireModel(r_wire_ohm=r_wire),
                                    cell_iv=CellIV(nonlinearity=3.0))
            errors.append(output_error(engine, reference, test_inputs))
        assert errors[0] <= errors[1]

    def test_tiny_parasitics_round_to_exact(self, mapped_layer, test_inputs):
        # ADC rounding absorbs sub-LSB analog error.
        mapped, _ = mapped_layer
        engine = NonidealEngine(
            mapped, ReRAMDevice(DeviceSpec(), 0.0), activation_bits=8,
            wire=WireModel(r_wire_ohm=1e-4, r_driver_ohm=1e-4,
                           r_sense_ohm=1e-4),
            cell_iv=CellIV(nonlinearity=0.0))
        assert output_error(engine, exact_engine(mapped), test_inputs) == 0.0


class TestReadNoise:
    def test_noise_perturbs_output(self, mapped_layer, test_inputs):
        mapped, _ = mapped_layer
        spec = DeviceSpec()
        noise = ReadNoise.for_fragment(4, spec.g_max, spec.read_voltage,
                                       relative_sigma=0.05, seed=3)
        engine = NonidealEngine(mapped, ReRAMDevice(spec, 0.0),
                                activation_bits=8, read_noise=noise)
        assert output_error(engine, exact_engine(mapped), test_inputs) > 0.0

    def test_small_noise_absorbed_by_adc(self, mapped_layer, test_inputs):
        mapped, _ = mapped_layer
        spec = DeviceSpec()
        noise = ReadNoise.for_fragment(4, spec.g_max, spec.read_voltage,
                                       relative_sigma=1e-6, seed=3)
        engine = NonidealEngine(mapped, ReRAMDevice(spec, 0.0),
                                activation_bits=8, read_noise=noise)
        assert output_error(engine, exact_engine(mapped), test_inputs) == 0.0


class TestCombined:
    def test_all_knobs_together(self, mapped_layer, test_inputs):
        mapped, _ = mapped_layer
        spec = DeviceSpec()
        engine = NonidealEngine(
            mapped, ReRAMDevice(spec, variation_sigma=0.05, seed=4),
            activation_bits=8,
            fault_model=FaultModel(0.01, 0.001, seed=4),
            wire=WireModel(r_wire_ohm=5.0),
            cell_iv=CellIV(nonlinearity=2.0),
            read_noise=ReadNoise.for_fragment(4, spec.g_max,
                                              spec.read_voltage,
                                              relative_sigma=0.01, seed=4))
        error = output_error(engine, exact_engine(mapped), test_inputs)
        assert 0.0 < error < 1.0    # degraded but not garbage

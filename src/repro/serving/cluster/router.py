"""The cluster router: one wire-protocol process over N replicas.

:class:`ClusterRouter` speaks the PR-5 wire protocol (``docs/serving.md``)
on the front and fans out to backend :class:`~repro.serving.http.
HttpFrontend` replicas on the back, so a caller cannot tell a cluster
from a single front end — same endpoints, same envelopes, same error
codes, plus one: ``cluster_unavailable`` (503) when no live replica can
serve a model, an explicit receipt where a naive proxy would hang or
500.

Routing of ``POST /v1/infer``:

* the :class:`~.directory.ReplicaDirectory` supplies the candidate list
  (consistent-hash preferred replicas first, live spill after);
* each attempt gets its own socket timeout
  (:attr:`RoutingPolicy.attempt_timeout_s`);
* **failover** — a connection error, a 503 ``shutting_down`` or a 503
  ``die_fault`` moves to the next candidate after a capped-exponential
  backoff.  This is safe *because inference is pure*: re-executing a
  tile on another replica of the same seed produces the identical bits
  (the bench asserts it), unlike the single client's never-retry-POST
  rule where the transport cannot know the request is idempotent;
* any other answer — success, ``shed`` (the replica is alive and
  explicitly refusing), a 4xx — is **authoritative** and passes through
  unchanged;
* **hedging** (:attr:`RoutingPolicy.hedge_delay_s`) — optionally fire
  the same request at the next candidate when the first answer has not
  arrived within the delay, and take whichever authoritative answer
  lands first: the classic tail-latency trade of duplicate work for a
  bounded p99, again safe only because the work is idempotent.

``POST /v1/infer_batch`` is scatter/gather: items round-robin across
the candidates as sub-batches, each shard fails over independently, and
the gathered reply carries **per-item receipts** in request order — a
served result, the replica's shed receipt, or a ``cluster_unavailable``
receipt for items whose every candidate died (mixed outcomes use 207,
exactly like a partially-shed single-replica batch).

``GET /v1/cluster`` exposes the directory snapshot, the routing policy,
the router's own counters and a best-effort live ``/v1/stats`` of every
replica.  ``GET /metrics`` is the router's *own* Prometheus exposition
(routing events, replica health tally — scrape the replicas separately
for serving metrics), and ``GET /v1/trace/<id>`` returns the stored
routing decision (a ``router.route`` span whose children are the
``attempt`` spans) for a request id — the same id the chosen replica
stores its serving span tree under, so one id yields both halves of the
story.  The router's ``X-Request-Id`` handling is inherited from
:class:`~repro.serving.http.JsonHttpHandler` and the id is *forwarded*
to the chosen replica, so one trace id follows a request through router
log, replica receipt and error body.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from http.server import ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from ...obs import Observability, instrument, span_dict
from ..http import (DEFAULT_MAX_BODY_BYTES, DEFAULT_RETRY_AFTER_S,
                    TRANSPORT_ERRORS, HttpClient, JsonHttpHandler,
                    error_body)
from .directory import ReplicaDirectory

#: 503 codes that mean "this replica cannot take the work right now,
#: another one can" — the failover set.  ``shed`` is deliberately NOT
#: here: a shed is an admission decision by a live replica and passes
#: through as the authoritative answer.
RETRYABLE_503_CODES = ("shutting_down", "die_fault")


@dataclass(frozen=True)
class RoutingPolicy:
    """The router's failover/hedging knobs (``/v1/cluster`` echoes them).

    ``attempt_timeout_s`` bounds one proxied round trip;
    ``max_attempts`` bounds the failover loop (candidates are retried
    cyclically when fewer than ``max_attempts`` are live);
    ``backoff_s``/``backoff_cap_s`` shape the capped-exponential pause
    between sequential attempts; ``hedge_delay_s`` (``None`` = off)
    fires a duplicate attempt at the next candidate when the first has
    not answered within the delay.
    """

    attempt_timeout_s: float = 30.0
    max_attempts: int = 3
    backoff_s: float = 0.01
    backoff_cap_s: float = 0.1
    hedge_delay_s: Optional[float] = None

    def __post_init__(self):
        if self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be > 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff_s / backoff_cap_s must be >= 0")
        if self.hedge_delay_s is not None and self.hedge_delay_s < 0:
            raise ValueError("hedge_delay_s must be >= 0 (or None)")

    def backoff_delay(self, attempt: int) -> float:
        """Pause before firing attempt ``attempt`` (1-based retry)."""
        return min(self.backoff_cap_s, self.backoff_s * (2 ** (attempt - 1)))

    def as_dict(self) -> Dict:
        return {
            "attempt_timeout_s": self.attempt_timeout_s,
            "max_attempts": self.max_attempts,
            "backoff_s": self.backoff_s,
            "backoff_cap_s": self.backoff_cap_s,
            "hedge_delay_s": self.hedge_delay_s,
        }


class RouterStats:
    """Thread-safe router-level counters (``/v1/stats`` and
    ``/v1/cluster`` serve :meth:`snapshot`)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0           # front-door requests routed
        self.attempts = 0           # proxied attempts fired
        self.failovers = 0          # retryable outcomes that moved on
        self.hedges_fired = 0
        self.hedges_won = 0         # hedge answered before the primary
        self.unavailable = 0        # cluster_unavailable receipts issued
        self.batch_items = 0        # scatter/gather items routed
        self.batch_items_unavailable = 0

    def record(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                "requests": self.requests,
                "attempts": self.attempts,
                "failovers": self.failovers,
                "hedges_fired": self.hedges_fired,
                "hedges_won": self.hedges_won,
                "unavailable": self.unavailable,
                "batch_items": self.batch_items,
                "batch_items_unavailable": self.batch_items_unavailable,
            }


def _unavailable_error(model: Optional[str], attempts: int,
                       trace_id: Optional[str] = None) -> Dict:
    """The ``cluster_unavailable`` receipt body."""
    which = f"model {model!r}" if model is not None else "the default model"
    body = error_body(
        "cluster_unavailable",
        f"no live replica could serve {which} "
        f"({attempts} attempt(s) exhausted)",
        model=model, attempts=attempts)
    if trace_id is not None:
        body["error"].setdefault("trace_id", trace_id)
    return body


class _RouterHandler(JsonHttpHandler):
    """One front-door request; all state lives on the router."""

    @property
    def router(self) -> "ClusterRouter":
        return self.server.owner   # type: ignore[attr-defined]

    def do_GET(self) -> None:   # noqa: N802 — stdlib naming
        self._begin_request()
        with self.router._track():
            if self.path == "/healthz":
                self._handle_healthz()
            elif self.path == "/v1/cluster":
                self._reply(200, self.router.cluster_snapshot())
            elif self.path == "/v1/stats":
                self._reply(200, self.router.stats_snapshot())
            elif self.path == "/v1/models":
                self._handle_models()
            elif self.path == "/metrics":
                self._reply_text(200, self.router.metrics_text())
            elif self.path.startswith("/v1/trace/"):
                self._handle_trace(self.path[len("/v1/trace/"):])
            elif self.path in ("/v1/infer", "/v1/infer_batch"):
                self._reply_error(405, "method_not_allowed",
                                  f"{self.path} requires POST")
            else:
                self._reply_error(404, "not_found",
                                  f"unknown path {self.path!r}")

    def do_POST(self) -> None:   # noqa: N802 — stdlib naming
        self._begin_request()
        with self.router._track():
            if self.path not in ("/v1/infer", "/v1/infer_batch"):
                self.close_connection = True
                if self.path in ("/healthz", "/v1/stats", "/v1/models",
                                 "/v1/cluster", "/metrics") \
                        or self.path.startswith("/v1/trace/"):
                    self._reply_error(405, "method_not_allowed",
                                      f"{self.path} requires GET")
                else:
                    self._reply_error(404, "not_found",
                                      f"unknown path {self.path!r}")
                return
            body = self._read_body()
            if body is None:
                return
            if self.router.draining:
                self._reply_error(503, "shutting_down",
                                  "the router is draining; request refused")
                return
            payload = self._parse_json(body)
            if payload is None:
                return
            model = payload.get("model")
            if model is not None and not isinstance(model, str):
                self._reply_error(400, "invalid_request",
                                  "'model' must be a string")
                return
            try:
                if self.path == "/v1/infer":
                    status, reply = self.router.route_infer(
                        payload, model, trace_id=self._trace_id)
                else:
                    status, reply = self.router.route_infer_batch(
                        payload, model, trace_id=self._trace_id)
            except Exception as exc:   # noqa: BLE001 — the wire must answer
                self._reply_error(500, "internal",
                                  f"{type(exc).__name__}: {exc}")
                return
            self._reply(status, reply)

    # -- GET endpoints ------------------------------------------------------
    def _handle_trace(self, trace_id: str) -> None:
        record = self.router.trace(trace_id)
        if record is None:
            self._reply_error(
                404, "not_found",
                f"no stored trace for id {trace_id!r} (never seen, "
                f"evicted from the ring, or tracing is disabled)")
        else:
            self._reply(200, record)

    def _handle_healthz(self) -> None:
        router = self.router
        counts = router.directory.snapshot()["counts"]
        draining = router.draining
        body = {
            "status": ("draining" if draining
                       else "ok" if counts["up"] == len(
                           router.directory.names())
                       else "degraded"),
            "draining": draining,
            "role": "router",
            "replicas": counts,
        }
        self._reply(503 if draining else 200, body)

    def _handle_models(self) -> None:
        """Forward ``/v1/models`` to the first live replica and graft the
        router's placement map on."""
        router = self.router
        outcome = router.proxy_get("/v1/models")
        if outcome is None:
            self._reply(503, _unavailable_error(None, 0, self._trace_id))
            return
        status, payload = outcome
        if status == 200 and isinstance(payload, dict):
            models = payload.get("models")
            names = (list(models) if isinstance(models, (dict, list))
                     else [])
            payload["placement"] = {name: router.directory.placement(name)
                                    for name in names}
        self._reply(status, payload)


class _RouterHttpd(ThreadingHTTPServer):
    daemon_threads = True
    block_on_close = False
    owner: "ClusterRouter"


class _Tracked:
    """Context manager counting one in-flight request on the router."""

    __slots__ = ("router",)

    def __init__(self, router: "ClusterRouter"):
        self.router = router

    def __enter__(self) -> "_Tracked":
        with self.router._inflight_lock:
            self.router._inflight += 1
        return self

    def __exit__(self, *exc_info) -> None:
        with self.router._inflight_lock:
            self.router._inflight -= 1
            self.router._inflight_lock.notify_all()


# ---------------------------------------------------------------------------
class ClusterRouter:
    """Wire-protocol front door over a :class:`ReplicaDirectory`.

    The router owns the directory's probe loop by default
    (``own_directory=True``): :meth:`start` starts probing,
    :meth:`shutdown` stops it.  Use as a context manager, exactly like
    :class:`~repro.serving.http.HttpFrontend`.

    ``client_factory`` is the ``(host, port, timeout) -> client`` hook
    the proxied attempts go through (tests inject scripted replicas).
    """

    def __init__(self, directory: ReplicaDirectory, *,
                 policy: Optional[RoutingPolicy] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                 retry_after_s: Optional[float] = DEFAULT_RETRY_AFTER_S,
                 own_directory: bool = True,
                 client_factory: Optional[Callable] = None,
                 log: Optional[Callable[[str], None]] = None,
                 obs: Optional[Observability] = None):
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if retry_after_s is not None and retry_after_s < 0:
            raise ValueError("retry_after_s must be >= 0 (or None)")
        self.directory = directory
        self.policy = policy if policy is not None else RoutingPolicy()
        self.max_body_bytes = max_body_bytes
        self.retry_after_s = retry_after_s
        self.own_directory = own_directory
        self.log = log
        self.stats = RouterStats()
        self.obs = obs if obs is not None else Observability()
        self._wire_obs()
        self._client_factory = (client_factory if client_factory is not None
                                else HttpClient)
        self._draining = False
        self._inflight = 0
        self._inflight_lock = threading.Condition()
        self._httpd = _RouterHttpd((host, port), _RouterHandler)
        self._httpd.owner = self
        self._thread: Optional[threading.Thread] = None
        self._shut_down = False

    def _wire_obs(self) -> None:
        """Bridge the router's live counters to its ``/metrics`` page.

        The router has no hot inference loop of its own, so *all* its
        metrics are pull-time mirrors: a scrape hook copies
        :meth:`RouterStats.snapshot` into the
        ``forms_router_events_total`` counter family (monotone ``set`` —
        the snapshot totals only ever grow) and the directory's
        up/suspect/down tally into ``forms_router_replicas``.
        """
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        events = instrument(metrics, "forms_router_events_total")
        replicas = instrument(metrics, "forms_router_replicas")

        def refresh() -> None:
            for event, total in self.stats.snapshot().items():
                events.labels(event).set(total)
            for state, count in self.directory.snapshot()["counts"].items():
                replicas.labels(state).set(count)

        self.obs.add_scrape_hook(refresh)

    # -- observability ------------------------------------------------------
    def metrics_text(self) -> str:
        """``GET /metrics``: the router's own Prometheus exposition (the
        replicas each serve their own — scrape all of them)."""
        return self.obs.scrape()

    def trace(self, trace_id: str) -> Optional[Dict]:
        """The stored routing trace for ``trace_id`` (``None`` on miss)."""
        return self.obs.traces.get(trace_id)

    # -- address ------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    def _track(self) -> _Tracked:
        return _Tracked(self)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "ClusterRouter":
        if self._thread is not None:
            raise RuntimeError("router already started")
        if self.own_directory:
            self.directory.start()
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="forms-cluster-router",
                                        daemon=True)
        self._thread.start()
        return self

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Refuse new work, stop probing, stop accepting, wait out
        in-flight handlers.  Idempotent.  Replicas are not touched —
        their lifecycle belongs to whoever spawned them."""
        if self._shut_down:
            return
        self._shut_down = True
        self._draining = True
        if self.own_directory:
            self.directory.stop()
        if self._thread is not None:
            # stdlib shutdown() blocks on serve_forever's acknowledgment,
            # so it must only run when the accept loop actually ran
            self._httpd.shutdown()
            self._thread.join(timeout)
        with self._inflight_lock:
            self._inflight_lock.wait_for(
                lambda: self._inflight == 0,
                timeout=timeout if timeout is not None else 5.0)
        self._httpd.server_close()

    def __enter__(self) -> "ClusterRouter":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- one proxied attempt ------------------------------------------------
    def _attempt(self, name: str, method: str, path: str,
                 body: Optional[Dict],
                 trace_id: Optional[str], *,
                 spans: Optional[List[Dict]] = None,
                 hedge: bool = False) -> Tuple[str, int, Dict]:
        """One round trip to replica ``name``.

        Returns ``("ok", status, payload)`` for an authoritative answer
        (passed through unchanged) or ``("retry", status, payload)``
        for a failover-able outcome; health reporting happens here.
        With ``spans`` an ``attempt`` span (replica, outcome, status,
        hedge flag) is appended — list.append is atomic, so concurrent
        hedged attempts share one list safely.
        """
        start = time.perf_counter()

        def record(kind: str, status: int) -> None:
            if spans is not None:
                spans.append(span_dict(
                    "attempt", time.perf_counter() - start,
                    replica=name, outcome=kind, status=status, hedge=hedge))

        host, port = self.directory.endpoint(name)
        client = self._client_factory(host, port,
                                      self.policy.attempt_timeout_s)
        headers = ({"X-Request-Id": trace_id}
                   if trace_id is not None else None)
        try:
            if headers is not None:
                status, payload = client.request(method, path, body, headers)
            else:
                status, payload = client.request(method, path, body)
        except TRANSPORT_ERRORS as exc:
            self.directory.report_failure(name)
            record("retry", 0)
            return ("retry", 0,
                    error_body("cluster_unavailable",
                               f"replica {name}: {exc}", replica=name))
        code = None
        if isinstance(payload, dict):
            error = payload.get("error")
            if isinstance(error, dict):
                code = error.get("code")
        if status == 503 and code in RETRYABLE_503_CODES:
            self.directory.report_failure(name)
            record("retry", status)
            return "retry", status, payload
        self.directory.report_success(name)
        record("ok", status)
        return "ok", status, payload

    def _proxy(self, plan: List[str], method: str, path: str,
               body: Optional[Dict], trace_id: Optional[str], *,
               hedge_delay_s: Optional[float] = None,
               spans: Optional[List[Dict]] = None
               ) -> Optional[Tuple[int, Dict]]:
        """Failover (and optionally hedge) ``body`` across ``plan``.

        Fires attempts in plan order; a retryable outcome moves on after
        the policy backoff.  With ``hedge_delay_s`` a second candidate
        is fired when the first answer is that late, and the first
        *authoritative* answer wins (a straggler thread parks its result
        in the queue and dies — daemon, harmless).  Returns ``None``
        when every attempt came back retryable: the caller's
        ``cluster_unavailable``.
        """
        results: "queue.SimpleQueue" = queue.SimpleQueue()
        inflight = 0
        fired = 0

        def fire(name: str, hedge: bool) -> None:
            nonlocal inflight, fired
            inflight += 1
            fired += 1
            self.stats.record(attempts=1, hedges_fired=int(hedge))

            def attempt_thread():
                results.put((hedge, self._attempt(name, method, path, body,
                                                  trace_id, spans=spans,
                                                  hedge=hedge)))
            threading.Thread(target=attempt_thread,
                             name="forms-router-attempt",
                             daemon=True).start()

        fire(plan[0], hedge=False)
        answered = False
        while inflight:
            timeout = None
            if (not answered and hedge_delay_s is not None
                    and fired < len(plan) and inflight == 1):
                timeout = hedge_delay_s
            try:
                hedge, (kind, status, payload) = results.get(timeout=timeout)
            except queue.Empty:
                fire(plan[fired], hedge=True)
                continue
            inflight -= 1
            answered = True
            if kind == "ok":
                self.stats.record(hedges_won=int(hedge))
                return status, payload
            self.stats.record(failovers=1)
            if inflight == 0 and fired < len(plan):
                time.sleep(self.policy.backoff_delay(fired))
                fire(plan[fired], hedge=False)
        return None

    def _plan(self, model: Optional[str]) -> List[str]:
        """The attempt schedule: candidates cycled up to ``max_attempts``."""
        candidates = self.directory.candidates(model)
        if not candidates:
            return []
        return [candidates[i % len(candidates)]
                for i in range(self.policy.max_attempts)]

    # -- routing ------------------------------------------------------------
    def proxy_get(self, path: str) -> Optional[Tuple[int, Dict]]:
        """Forward one GET to the first answering live replica."""
        plan = self._plan(None)
        if not plan:
            return None
        return self._proxy(plan, "GET", path, None, None)

    def route_infer(self, payload: Dict, model: Optional[str], *,
                    trace_id: Optional[str] = None) -> Tuple[int, Dict]:
        """Route one ``POST /v1/infer`` envelope; returns
        ``(status, reply)`` ready for the wire.

        With tracing on, the routing decision is stored in the router's
        trace ring under the same ``trace_id`` the replica stores its
        span tree under: a ``router.route`` span whose children are the
        ``attempt`` spans (replica, outcome, hedge flag).  An attempt
        still in flight when the answer lands (a losing hedge) may miss
        the snapshot — the stored trace is the *decision*, not the
        stragglers.
        """
        self.stats.record(requests=1)
        tracing = self.obs.tracing and trace_id is not None
        spans: Optional[List[Dict]] = [] if tracing else None
        start = time.perf_counter()
        plan = self._plan(model)
        if not plan:
            self.stats.record(unavailable=1)
            self._store_trace(trace_id, model, spans, start,
                              outcome="unavailable")
            return 503, _unavailable_error(model, 0, trace_id)
        outcome = self._proxy(plan, "POST", "/v1/infer", payload, trace_id,
                              hedge_delay_s=self.policy.hedge_delay_s,
                              spans=spans)
        if outcome is None:
            self.stats.record(unavailable=1)
            self._store_trace(trace_id, model, spans, start,
                              outcome="unavailable")
            return 503, _unavailable_error(model, len(plan), trace_id)
        self._store_trace(trace_id, model, spans, start, outcome="ok",
                          status=outcome[0])
        return outcome

    def _store_trace(self, trace_id: Optional[str], model: Optional[str],
                     spans: Optional[List[Dict]], start: float,
                     **attrs) -> None:
        if spans is None or trace_id is None:
            return
        route = span_dict("router.route", time.perf_counter() - start,
                          start_s=0.0, children=list(spans), **attrs)
        self.obs.traces.put({"trace_id": trace_id, "role": "router",
                             "model": model, "spans": [route]})

    def route_infer_batch(self, payload: Dict, model: Optional[str], *,
                          trace_id: Optional[str] = None) -> Tuple[int, Dict]:
        """Scatter one ``/v1/infer_batch`` envelope, gather per-item
        receipts in request order."""
        self.stats.record(requests=1)
        has_json = "inputs" in payload
        has_b64 = "inputs_b64" in payload
        key = "inputs_b64" if has_b64 else "inputs"
        raw = payload.get(key)
        if has_json == has_b64 or not isinstance(raw, list) or not raw:
            return 400, error_body(
                "invalid_request",
                "pass exactly one non-empty list: 'inputs' (nested JSON "
                "arrays) or 'inputs_b64' (base64 .npy strings)")
        self.stats.record(batch_items=len(raw))
        candidates = self.directory.candidates(model)
        if not candidates:
            self.stats.record(unavailable=1,
                              batch_items_unavailable=len(raw))
            return 503, _unavailable_error(model, 0, trace_id)

        # scatter: item i starts at candidate i % k; a shard is the
        # group of items sharing a starting candidate, and each shard
        # fails over independently along its own rotation of the list
        shards: Dict[int, List[int]] = {}
        for index in range(len(raw)):
            shards.setdefault(index % len(candidates), []).append(index)
        passthrough = {k: payload[k]
                       for k in ("model", "priority", "deadline_ms")
                       if k in payload}
        items: List[Optional[Dict]] = [None] * len(raw)
        outcomes: "queue.SimpleQueue" = queue.SimpleQueue()

        def route_shard(offset: int, indices: List[int]) -> None:
            rotation = (candidates[offset:] + candidates[:offset])
            plan = [rotation[i % len(rotation)]
                    for i in range(self.policy.max_attempts)]
            body = dict(passthrough)
            body[key] = [raw[i] for i in indices]
            outcomes.put((indices,
                          self._proxy(plan, "POST", "/v1/infer_batch",
                                      body, trace_id)))

        for offset, indices in shards.items():
            threading.Thread(target=route_shard, args=(offset, indices),
                             name="forms-router-shard", daemon=True).start()
        for _ in range(len(shards)):
            indices, outcome = outcomes.get()
            if outcome is None:
                # every candidate of this shard died: explicit per-item
                # receipts, never a dropped index
                self.stats.record(batch_items_unavailable=len(indices))
                for i in indices:
                    entry = _unavailable_error(model,
                                               self.policy.max_attempts,
                                               trace_id)
                    entry["error"]["index"] = i
                    items[i] = entry
                continue
            status, reply = outcome
            results = (reply.get("results")
                       if isinstance(reply, dict) else None)
            if isinstance(results, list) and len(results) == len(indices):
                for i, item in zip(indices, results):
                    items[i] = item
                continue
            # an envelope-level replica error (e.g. invalid_input at one
            # item): attribute it to every item of the shard, remapping
            # the replica's shard-relative index to the caller's
            error = (reply.get("error")
                     if isinstance(reply, dict) else None)
            error = error if isinstance(error, dict) else {
                "code": "internal", "message": f"replica answered {status}"}
            shard_index = error.get("index")
            for position, i in enumerate(indices):
                entry = dict(error)
                if isinstance(shard_index, int) \
                        and 0 <= shard_index < len(indices):
                    entry["index"] = indices[shard_index]
                    entry["at_fault"] = position == shard_index
                if trace_id is not None:
                    entry.setdefault("trace_id", trace_id)
                items[i] = {"error": entry}
        completed = sum("error" not in item for item in items)
        shed = len(items) - completed
        status = 200 if shed == 0 else (503 if completed == 0 else 207)
        return status, {"results": items, "completed": completed,
                        "shed": shed}

    # -- introspection ------------------------------------------------------
    def stats_snapshot(self) -> Dict:
        """``GET /v1/stats``: router counters + per-replica attempt
        accounting (no fan-out; cheap enough for tight polling)."""
        directory = self.directory.snapshot()
        return {"role": "router", "router": self.stats.snapshot(),
                "replicas": directory["replicas"],
                "counts": directory["counts"]}

    def cluster_snapshot(self) -> Dict:
        """``GET /v1/cluster``: the full operator view — directory state,
        routing policy, router counters and a best-effort live
        ``/v1/stats`` fetch from every replica."""
        directory = self.directory.snapshot()
        replica_stats: Dict[str, Dict] = {}
        for name in self.directory.names():
            host, port = self.directory.endpoint(name)
            client = self._client_factory(
                host, port, self.directory.probe_timeout_s)
            try:
                status, payload = client.request("GET", "/v1/stats")
            except TRANSPORT_ERRORS as exc:
                replica_stats[name] = {"unreachable": str(exc)}
            else:
                replica_stats[name] = (payload if status == 200
                                       else {"status": status,
                                             "body": payload})
        return {"role": "router", "directory": directory,
                "policy": self.policy.as_dict(),
                "router": self.stats.snapshot(),
                "replica_stats": replica_stats}

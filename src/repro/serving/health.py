"""Per-die health tracking for the serving stack.

Every in-situ engine a server fronts is one *die* from the operator's
point of view: programmed once, shared by every request of its model, and
— under the online fault machinery of :mod:`repro.reram.faults` — capable
of being quarantined and re-programmed mid-traffic.  The
:class:`DieHealthRegistry` is the single place those transitions are
recorded: the dispatch path marks dies
``healthy -> quarantined -> reprogramming -> healthy`` as recovery
progresses, ``/healthz`` summarizes the counts, and ``/v1/stats``
consumers correlate shed spikes with the transition log.

States are intentionally a tiny closed set (:data:`DIE_HEALTHY`,
:data:`DIE_QUARANTINED`, :data:`DIE_REPROGRAMMING`); everything else an
operator needs (which fragment tripped, what the mitigation planner said)
travels on the per-request recovery receipts instead.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

#: die states, in recovery order
DIE_HEALTHY = "healthy"
DIE_QUARANTINED = "quarantined"
DIE_REPROGRAMMING = "reprogramming"
DIE_STATES = (DIE_HEALTHY, DIE_QUARANTINED, DIE_REPROGRAMMING)


class DieHealthRegistry:
    """Thread-safe state registry for the dies a server serves from.

    Keys are ``(model, layer)`` pairs — one per in-situ engine.  The
    registry never blocks the dispatch path: transitions are O(1) under
    one lock, and :meth:`counts` / :meth:`snapshot` produce the JSON-ready
    views the HTTP layer exposes.  ``recoveries`` counts completed
    quarantine -> healthy round trips (the number an operator alarms on).
    """

    def __init__(self, event_log: int = 256):
        if event_log < 1:
            raise ValueError("event_log must be >= 1")
        self._lock = threading.Lock()
        self._states: Dict[Tuple[str, str], str] = {}
        self._events: List[Dict] = []
        self._event_log = event_log
        self.recoveries = 0

    # ------------------------------------------------------------------
    def attach(self, model: str, layer: str) -> None:
        """Register one die as healthy (idempotent)."""
        with self._lock:
            self._states.setdefault((model, layer), DIE_HEALTHY)

    def mark(self, model: str, layer: str, state: str,
             detail: Optional[str] = None) -> None:
        """Transition one die; unknown dies are attached implicitly."""
        if state not in DIE_STATES:
            raise ValueError(f"unknown die state {state!r}; "
                             f"expected one of {DIE_STATES}")
        with self._lock:
            previous = self._states.get((model, layer), DIE_HEALTHY)
            self._states[(model, layer)] = state
            if state == DIE_HEALTHY and previous != DIE_HEALTHY:
                self.recoveries += 1
            self._events.append({
                # monotonic, not wall clock: the log exists to order
                # transitions (and difference their times), and a wall
                # clock can step backwards mid-incident
                "t": time.monotonic(), "model": model, "layer": layer,
                "from": previous, "to": state, "detail": detail})
            del self._events[:-self._event_log]

    def state_of(self, model: str, layer: str) -> str:
        with self._lock:
            return self._states.get((model, layer), DIE_HEALTHY)

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """``{healthy, quarantined, reprogramming, recoveries}`` — the
        ``/healthz`` die-pool summary."""
        with self._lock:
            out = {state: 0 for state in DIE_STATES}
            for state in self._states.values():
                out[state] += 1
            out["recoveries"] = self.recoveries
            return out

    def snapshot(self) -> Dict:
        """Full JSON-ready view: per-die states plus the transition log."""
        with self._lock:
            return {
                "dies": {f"{model}/{layer}": state
                         for (model, layer), state
                         in sorted(self._states.items())},
                "counts": {state: sum(1 for s in self._states.values()
                                      if s == state)
                           for state in DIE_STATES},
                "recoveries": self.recoveries,
                "events": [dict(event) for event in self._events],
            }

    @property
    def degraded(self) -> bool:
        """True while any die is quarantined or re-programming."""
        with self._lock:
            return any(state != DIE_HEALTHY
                       for state in self._states.values())

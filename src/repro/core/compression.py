"""Crossbar-count accounting and compression reports (Tables I & II).

The paper's "crossbar reduction" column compares the *baseline* mapping —
the un-pruned 32-bit model under the splitting scheme of [41], which needs a
positive and a negative crossbar copy — against the FORMS mapping — the
pruned model at ``weight_bits`` with a single polarized crossbar copy plus a
1R sign indicator.  E.g. LeNet-5: 23.18x (pruning) x 4x (32-bit -> 8-bit)
x 2x (polarization) = 185.44x.

``crossbars_for_matrix`` counts physical crossbars for an arbitrary mapping
scheme so the decomposition is *measured*, not assumed: the live rows/columns
come from the actual pruned weight tensors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.layers import Module, compressible_layers
from .fragments import FragmentGeometry
from .pruning import structure_summary
from .quantization import QuantizationSpec


@dataclass(frozen=True)
class CrossbarShape:
    """Physical crossbar array dimensions (paper default 128 x 128)."""

    rows: int = 128
    cols: int = 128

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError("crossbar dimensions must be positive")


#: mapping schemes and the crossbar-copy multiplier they pay for signed weights
SCHEME_COPIES = {
    "forms": 1,        # magnitude-only storage + 1R sign indicator
    "isaac_offset": 1,  # offset encoding, pays in peripheral circuitry instead
    "dual": 2,         # PRIME-style positive/negative crossbar pair
    "splitting": 2,    # baseline splitting scheme [41] used in Tables I/II
}


def crossbars_for_matrix(rows: int, cols: int, crossbar: CrossbarShape,
                         cells_per_weight: int, scheme: str = "forms") -> int:
    """Number of physical crossbars to hold a ``rows x cols`` weight matrix.

    Each weight occupies ``cells_per_weight`` adjacent cells in a row, so a
    crossbar stores ``crossbar.cols // cells_per_weight`` filters across and
    ``crossbar.rows`` weights down.
    """
    if rows < 1 or cols < 1:
        raise ValueError("matrix dimensions must be positive")
    if cells_per_weight < 1:
        raise ValueError("cells_per_weight must be >= 1")
    try:
        copies = SCHEME_COPIES[scheme]
    except KeyError:
        raise KeyError(f"unknown mapping scheme {scheme!r}; options: {sorted(SCHEME_COPIES)}") from None
    filters_per_crossbar = max(crossbar.cols // cells_per_weight, 1)
    vertical = -(-rows // crossbar.rows)
    horizontal = -(-cols // filters_per_crossbar)
    return vertical * horizontal * copies


@dataclass
class LayerCompression:
    """Per-layer compression accounting."""

    name: str
    rows: int
    cols: int
    live_rows: int
    live_cols: int
    baseline_crossbars: int
    forms_crossbars: int

    @property
    def prune_ratio(self) -> float:
        return (self.rows * self.cols) / max(self.live_rows * self.live_cols, 1)

    @property
    def crossbar_reduction(self) -> float:
        return self.baseline_crossbars / max(self.forms_crossbars, 1)


@dataclass
class CompressionReport:
    """Whole-model compression summary (one Table I/II row)."""

    layers: List[LayerCompression] = field(default_factory=list)
    baseline_bits: int = 32
    weight_bits: int = 8
    fragment_size: int = 8

    @property
    def total_baseline_crossbars(self) -> int:
        return sum(layer.baseline_crossbars for layer in self.layers)

    @property
    def total_forms_crossbars(self) -> int:
        return sum(layer.forms_crossbars for layer in self.layers)

    @property
    def crossbar_reduction(self) -> float:
        return self.total_baseline_crossbars / max(self.total_forms_crossbars, 1)

    @property
    def prune_ratio(self) -> float:
        dense = sum(layer.rows * layer.cols for layer in self.layers)
        live = sum(layer.live_rows * layer.live_cols for layer in self.layers)
        return dense / max(live, 1)

    @property
    def quantization_factor(self) -> float:
        return self.baseline_bits / self.weight_bits

    @property
    def polarization_factor(self) -> float:
        """Crossbar copies saved by polarization vs the splitting baseline."""
        return SCHEME_COPIES["splitting"] / SCHEME_COPIES["forms"]

    def analytic_reduction(self) -> float:
        """Paper-style decomposition: prune x quant x polarization.

        The measured :attr:`crossbar_reduction` differs from this by the
        ceil-to-crossbar rounding, which is exactly the waste crossbar-aware
        pruning minimizes.
        """
        return self.prune_ratio * self.quantization_factor * self.polarization_factor

    def summary(self) -> Dict[str, float]:
        return {
            "prune_ratio": self.prune_ratio,
            "quantization_factor": self.quantization_factor,
            "polarization_factor": self.polarization_factor,
            "baseline_crossbars": self.total_baseline_crossbars,
            "forms_crossbars": self.total_forms_crossbars,
            "crossbar_reduction": self.crossbar_reduction,
            "analytic_reduction": self.analytic_reduction(),
        }


def model_compression_report(model: Module, fragment_size: int, policy: str,
                             quant: QuantizationSpec,
                             crossbar: CrossbarShape = CrossbarShape(),
                             baseline_bits: int = 32,
                             cell_bits: Optional[int] = None) -> CompressionReport:
    """Measure crossbar counts of a (possibly pruned) model.

    Baseline: dense ``baseline_bits`` weights, splitting scheme (2 copies).
    FORMS: live rows/cols only, ``quant.weight_bits`` weights, single copy.
    """
    cell_bits = cell_bits if cell_bits is not None else quant.cell_bits
    baseline_cells = -(-baseline_bits // cell_bits)
    report = CompressionReport(baseline_bits=baseline_bits,
                               weight_bits=quant.weight_bits,
                               fragment_size=fragment_size)
    for name, layer in compressible_layers(model):
        geometry = FragmentGeometry(tuple(layer.weight.shape), fragment_size, policy)
        summary = structure_summary(layer.weight.data, geometry)
        baseline = crossbars_for_matrix(
            summary["rows"], summary["cols"], crossbar, baseline_cells, scheme="splitting")
        forms = crossbars_for_matrix(
            max(summary["live_rows"], 1), max(summary["live_cols"], 1), crossbar,
            quant.cells_per_weight, scheme="forms")
        report.layers.append(LayerCompression(
            name=name, rows=summary["rows"], cols=summary["cols"],
            live_rows=summary["live_rows"], live_cols=summary["live_cols"],
            baseline_crossbars=baseline, forms_crossbars=forms))
    return report

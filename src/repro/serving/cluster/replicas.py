"""Subprocess replica management for the cluster harness.

A *replica* here is one real ``python -m repro serve --http`` process —
its own interpreter, its own sockets, its own die pool — so killing one
with SIGKILL is a true process death (no in-process shortcut could fake
the half-open sockets and connection resets the router must survive).

:class:`ReplicaProcess` wraps one such process: spawn, readiness wait
(polling ``/healthz``), SIGKILL, graceful SIGINT drain, and restart on
the *same* port (the front end's ``ThreadingHTTPServer`` inherits
``allow_reuse_address``, so the rebind succeeds while the killed
process's connections linger in TIME_WAIT).  stderr is captured to a
temp file and surfaced on failure — a replica that dies on boot must
explain itself.

:class:`ClusterHarness` stands up the whole topology — N replicas of
the same ``build_demo_server`` build (same ``--seed``, so every replica
serves **bit-identical** outputs: the property that makes router
failover and hedging safe), a :class:`~.directory.ReplicaDirectory`
over them and a :class:`~.router.ClusterRouter` in front — and tears
it all down deterministically.  The chaos bench and the CLI
``serve --cluster N`` both build on it.
"""

from __future__ import annotations

import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..http import TRANSPORT_ERRORS, HttpClient
from .directory import ReplicaDirectory
from .router import ClusterRouter, RoutingPolicy

#: default bound on one replica's boot (build_demo_server is ~tens of
#: milliseconds; the bound is interpreter start + imports + bind)
READY_TIMEOUT_S = 60.0


def free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral port, pre-allocated by a momentary bind.

    The port must be known *before* the replica process exists (the
    directory's membership is fixed at construction), so bind-to-0,
    read the assignment, close.  The tiny window in which another
    process could steal it is acceptable for a loopback test harness.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _repro_pythonpath() -> str:
    """PYTHONPATH that makes ``python -m repro`` resolve to *this* tree."""
    import repro
    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH")
    return src if not existing else f"{src}{os.pathsep}{existing}"


class ReplicaProcess:
    """One ``python -m repro serve --http`` backend process."""

    def __init__(self, name: str, port: int, *, host: str = "127.0.0.1",
                 models: int = 2, workers: int = 1, seed: int = 0,
                 deadline_ms: float = 0.0):
        self.name = name
        self.host = host
        self.port = port
        self.models = models
        self.workers = workers
        self.seed = seed
        self.deadline_ms = deadline_ms
        self.proc: Optional[subprocess.Popen] = None
        self.spawns = 0
        self._stderr_path: Optional[str] = None

    @property
    def argv(self) -> List[str]:
        return [sys.executable, "-m", "repro", "serve",
                "--http", str(self.port), "--http-host", self.host,
                "--models", str(self.models),
                "--workers", str(self.workers),
                "--seed", str(self.seed),
                "--deadline-ms", str(self.deadline_ms)]

    def spawn(self) -> "ReplicaProcess":
        if self.alive:
            raise RuntimeError(f"replica {self.name} already running")
        env = dict(os.environ, PYTHONPATH=_repro_pythonpath())
        fd, self._stderr_path = tempfile.mkstemp(
            prefix=f"forms-replica-{self.name}-", suffix=".log")
        stderr = os.fdopen(fd, "wb")
        try:
            self.proc = subprocess.Popen(
                self.argv, env=env, stdout=subprocess.DEVNULL, stderr=stderr,
                start_new_session=True)
        finally:
            stderr.close()
        self.spawns += 1
        return self

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def stderr_tail(self, lines: int = 20) -> str:
        if self._stderr_path is None:
            return ""
        try:
            text = pathlib.Path(self._stderr_path).read_text(
                encoding="utf-8", errors="replace")
        except OSError:
            return ""
        return "\n".join(text.splitlines()[-lines:])

    def wait_ready(self, timeout: float = READY_TIMEOUT_S) -> None:
        """Poll ``/healthz`` until the replica answers 200."""
        client = HttpClient(self.host, self.port, timeout=2.0)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.alive:
                raise RuntimeError(
                    f"replica {self.name} died during boot "
                    f"(exit {self.proc.returncode}):\n{self.stderr_tail()}")
            try:
                status, _ = client.request("GET", "/healthz")
            except TRANSPORT_ERRORS:
                time.sleep(0.05)
                continue
            if status == 200:
                return
            time.sleep(0.05)
        raise TimeoutError(
            f"replica {self.name} not ready on port {self.port} within "
            f"{timeout:.0f}s:\n{self.stderr_tail()}")

    def kill(self) -> None:
        """SIGKILL — the chaos primitive: no drain, no goodbye, half-open
        connections left for the router to discover."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()

    def interrupt(self) -> None:
        """SIGINT — the graceful path: the serve loop drains and exits."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGINT)

    def wait_exit(self, timeout: float = READY_TIMEOUT_S) -> Optional[int]:
        if self.proc is None:
            return None
        return self.proc.wait(timeout=timeout)

    def restart(self, timeout: float = READY_TIMEOUT_S) -> "ReplicaProcess":
        """Spawn again on the same port and wait until ready."""
        if self.alive:
            raise RuntimeError(f"replica {self.name} still running")
        self.close()   # reap + drop the old stderr file
        self.spawn()
        self.wait_ready(timeout)
        return self

    def close(self) -> None:
        """Kill (if needed), reap, and remove the stderr capture."""
        self.kill()
        self.proc = None
        if self._stderr_path is not None:
            try:
                os.unlink(self._stderr_path)
            except OSError:
                pass
            self._stderr_path = None


# ---------------------------------------------------------------------------
class ClusterHarness:
    """N subprocess replicas + directory + router, as one context.

    ``with ClusterHarness(3) as harness:`` boots three replicas of the
    identical demo build, waits for all of them, starts the health
    prober and the router, and yields; exit drains the router and kills
    every replica.  ``harness.kill(name)`` / ``harness.restart(name)``
    are the chaos controls.
    """

    def __init__(self, replicas: int = 2, *, models: int = 2,
                 workers: int = 1, seed: int = 0, deadline_ms: float = 0.0,
                 host: str = "127.0.0.1", router_port: int = 0,
                 policy: Optional[RoutingPolicy] = None,
                 replication: int = 2,
                 suspect_after: int = 1, down_after: int = 3,
                 probe_interval_s: float = 0.1,
                 log: Optional[Callable[[str], None]] = None,
                 directory_kwargs: Optional[Dict] = None):
        if replicas < 1:
            raise ValueError("a cluster needs at least one replica")
        self.replicas: Dict[str, ReplicaProcess] = {}
        for i in range(replicas):
            name = f"replica-{i}"
            self.replicas[name] = ReplicaProcess(
                name, free_port(host), host=host, models=models,
                workers=workers, seed=seed, deadline_ms=deadline_ms)
        self.directory = ReplicaDirectory(
            {name: (proc.host, proc.port)
             for name, proc in self.replicas.items()},
            replication=replication, suspect_after=suspect_after,
            down_after=down_after, probe_interval_s=probe_interval_s,
            log=log, **(directory_kwargs or {}))
        self.router = ClusterRouter(self.directory, policy=policy,
                                    host=host, port=router_port, log=log)
        self.log = log

    # -- lifecycle ----------------------------------------------------------
    def start(self, timeout: float = READY_TIMEOUT_S) -> "ClusterHarness":
        try:
            for proc in self.replicas.values():
                proc.spawn()
            for proc in self.replicas.values():
                proc.wait_ready(timeout)
            self.router.start()
        except BaseException:
            self.close()
            raise
        return self

    def close(self) -> None:
        self.router.shutdown()
        for proc in self.replicas.values():
            proc.close()

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- chaos controls -----------------------------------------------------
    def kill(self, name: str) -> None:
        if self.log is not None:
            self.log(f"chaos: SIGKILL {name}")
        self.replicas[name].kill()

    def restart(self, name: str, timeout: float = READY_TIMEOUT_S) -> None:
        if self.log is not None:
            self.log(f"chaos: restart {name}")
        self.replicas[name].restart(timeout)

    def client(self, **kwargs) -> HttpClient:
        """A wire client aimed at the router's front door."""
        return HttpClient(self.router.host, self.router.port, **kwargs)

    def names(self) -> Sequence[str]:
        return list(self.replicas)

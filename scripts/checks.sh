#!/usr/bin/env sh
# The standard check set: fast tier-1 signal + the engine perf gate.
#
#   sh scripts/checks.sh            # what CI runs (see .github/workflows)
#
# 1. `pytest -m "not slow"` — the fast tier-1 signal (the full tier-1
#    command is `pytest -x -q` without the marker filter; the 35 slow
#    training-driver tests are nightly material).
# 2. `run_perf_suite.py --smoke` — records BENCH-schema results to a
#    throwaway path and exits non-zero if the headline micro-benchmark
#    (mvm_forms_16bit_128pos) falls below its 5x speedup floor, so a perf
#    regression fails the check set exactly like a correctness regression.
#    Runs twice: once on the default thread backend, once with
#    `--backend process` — the multi-worker benches then fan tiles out to
#    spawn-context worker processes over shared-memory planes, so the
#    whole process tier (spawn, ship, merge, unlink) gets an end-to-end
#    smoke on every push.  (The un-`slow` half of
#    tests/runtime/test_backend_equivalence.py already ran the
#    serial/thread/process differential matrix at workers 1 and 2 in
#    step 1.)
# 3. `bench_serving.py --smoke` — two open-loop Poisson arrival-rate
#    points through the batching inference server, each asserting
#    bit-identity of every served output against the serial single-image
#    path (a serving regression fails here before it ships).
# 4. `bench_multitenant.py --smoke` — two mixed-traffic points: two
#    tenants on one shared pool under the two-class SLA policy, each
#    point asserting per-model bit-identity under mixed-class contention
#    before recording (records merge without clobbering the engine or
#    serving entries in the BENCH payload).
# 5. `python -m repro serve --http 0 --http-demo` — the HTTP wire smoke:
#    launch the two-tenant demo server on an ephemeral port, replay
#    concurrent mixed-class requests through real sockets, assert every
#    decoded response bit-identical to the in-process serial forward,
#    then drain and verify the port actually closed.  The demo also
#    scrapes the telemetry surface while the socket is up: `/metrics`
#    must survive the strict exposition parser, `/v1/usage` must bill
#    exactly the served/shed counts, and a served request's span tree
#    must come back from `/v1/trace/<id>`.
# 6. `bench_http.py --smoke` — two open-loop Poisson rate points driven
#    as real `POST /v1/infer` traffic (client round-trip + server-side
#    latency recorded; bit-identity of decoded outputs asserted per
#    point).
# 7. `bench_chaos.py --smoke` — two mixed-traffic points under scripted
#    die faults: stuck-at flips land on both tenants' live dies, each
#    point asserting checksum detection + online re-program recovery,
#    bit-identity of every completed request against the *pre-fault*
#    serial forward, and zero hung futures before recording.
# 8. `python -m repro serve --cluster 2 --http 0 --http-demo` — the
#    cluster failover smoke: boot two subprocess replicas behind the
#    router, SIGKILL one mid-traffic and restart it, assert every
#    completed response bit-identical to the serial forward, every
#    failure a documented receipt, zero hung requests, and that the
#    killed replica rejoined.
# 9. `bench_obs.py --smoke` — the observability-overhead smoke: the
#    open-loop serving point driven with the telemetry bundle armed and
#    with Observability.disabled(), interleaved, asserting the two modes'
#    outputs byte-identical before recording (the full run additionally
#    gates overhead against the 5% mean-service-time budget).
# 10. `python -m repro serve --async --http 0 --http-demo` — the async
#    wire smoke: the step-5 replay through the asyncio front end under
#    weighted-fair arbitration, plus an SSE streaming leg
#    (`?stream=1`) whose per-event outputs and terminal `done` tally
#    are verified against the serial forward and the usage meter.
# 11. `bench_async.py --smoke` — two open-loop rate points with a
#    barrier-synchronized crowd of concurrent connections held open on
#    the asyncio front end (peak asserted server-side); bit-identity of
#    every 200 and a documented shed receipt on every 503 asserted per
#    point.
# 12. `check_docs.py` — README.md and docs/architecture.md must exist and
#    mention every src/repro/* package, every docs/*.md page must be
#    linked from the README, every `python -m repro` subcommand and
#    `serve` flag must appear in the docs, every METRIC_CATALOG
#    name must appear in docs/observability.md, and every STREAM_EVENTS
#    type must appear in docs/serving.md (drift fails the check set).
set -e

cd "$(dirname "$0")/.."

echo "==> tier-1 (fast signal): pytest -m 'not slow'"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q -m "not slow"

echo "==> perf gate: run_perf_suite.py --smoke"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/run_perf_suite.py \
    --smoke -o "${PERF_GATE_OUTPUT:-/tmp/forms_perf_gate.json}"

echo "==> process-backend smoke: run_perf_suite.py --smoke --backend process"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/run_perf_suite.py \
    --smoke --backend process \
    -o "${PERF_GATE_PROCESS_OUTPUT:-/tmp/forms_perf_gate_process.json}"

echo "==> serving smoke: bench_serving.py --smoke"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_serving.py \
    --smoke --requests 12 \
    -o "${SERVING_BENCH_OUTPUT:-/tmp/forms_serving_smoke.json}"

echo "==> multi-tenant smoke: bench_multitenant.py --smoke"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_multitenant.py \
    --smoke --requests 12 \
    -o "${MULTITENANT_BENCH_OUTPUT:-/tmp/forms_multitenant_smoke.json}"

echo "==> http wire smoke: serve --http 0 --http-demo"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro serve \
    --http 0 --http-demo --models 2 --requests 12 --rate 400

echo "==> http bench smoke: bench_http.py --smoke"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_http.py \
    --smoke --requests 12 \
    -o "${HTTP_BENCH_OUTPUT:-/tmp/forms_http_smoke.json}"

echo "==> chaos recovery smoke: bench_chaos.py --smoke"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_chaos.py \
    --smoke --requests 12 \
    -o "${CHAOS_BENCH_OUTPUT:-/tmp/forms_chaos_smoke.json}"

echo "==> cluster failover smoke: serve --cluster 2 --http 0 --http-demo"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro serve \
    --cluster 2 --http 0 --http-demo --requests 12 --rate 400

echo "==> observability overhead smoke: bench_obs.py --smoke"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_obs.py \
    --smoke --requests 12 \
    -o "${OBS_BENCH_OUTPUT:-/tmp/forms_obs_smoke.json}"

echo "==> async wire smoke: serve --async --http 0 --http-demo"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro serve \
    --async --http 0 --http-demo --models 2 --requests 12 --rate 400 \
    --sla-mode weighted_fair

echo "==> async bench smoke: bench_async.py --smoke"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_async.py \
    --smoke \
    -o "${ASYNC_BENCH_OUTPUT:-/tmp/forms_async_smoke.json}"

echo "==> docs check: check_docs.py"
python scripts/check_docs.py

echo "==> checks passed"

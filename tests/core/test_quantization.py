"""ReRAM-customized quantization tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (QuantizationSpec, activation_to_int, dequantize,
                        is_quantized, layer_scale, project_quantization,
                        quantization_error, quantize, quantize_to_int)


class TestSpec:
    def test_qmax(self):
        assert QuantizationSpec(8, 2).qmax == 127
        assert QuantizationSpec(4, 2).qmax == 7

    def test_cells_per_weight(self):
        assert QuantizationSpec(8, 2).cells_per_weight == 4
        assert QuantizationSpec(16, 2).cells_per_weight == 8
        assert QuantizationSpec(8, 4).cells_per_weight == 2

    def test_bits_must_be_multiple_of_cell_bits(self):
        with pytest.raises(ValueError):
            QuantizationSpec(7, 2)

    def test_other_validation(self):
        with pytest.raises(ValueError):
            QuantizationSpec(1, 1)
        with pytest.raises(ValueError):
            QuantizationSpec(8, 0)


class TestQuantize:
    def test_grid_values(self):
        spec = QuantizationSpec(4, 2)
        out = quantize(np.array([0.0, 0.9, 1.1, -3.3]), spec, scale=1.0)
        np.testing.assert_array_equal(out, [0.0, 1.0, 1.0, -3.0])

    def test_saturates_at_qmax(self):
        spec = QuantizationSpec(4, 2)  # qmax 7
        out = quantize(np.array([100.0, -100.0]), spec, scale=1.0)
        np.testing.assert_array_equal(out, [7.0, -7.0])

    def test_idempotent(self, rng):
        spec = QuantizationSpec(8, 2)
        w = rng.normal(size=(10, 10))
        scale = layer_scale(w, spec)
        once = quantize(w, spec, scale)
        np.testing.assert_array_equal(quantize(once, spec, scale), once)

    def test_error_bounded_by_half_step(self, rng):
        spec = QuantizationSpec(8, 2)
        w = rng.normal(size=1000)
        scale = layer_scale(w, spec)
        q = quantize(w, spec, scale)
        inside = np.abs(w) <= spec.qmax * scale
        assert np.abs(w[inside] - q[inside]).max() <= scale / 2 + 1e-12

    def test_preserves_sign(self, rng):
        spec = QuantizationSpec(8, 2)
        w = rng.normal(size=500)
        q = quantize(w, spec, layer_scale(w, spec))
        assert (w * q >= 0.0).all()  # quantization never flips a sign

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            quantize(np.ones(3), QuantizationSpec(8, 2), 0.0)


class TestScaleAndInt:
    def test_layer_scale_maps_max_to_qmax(self, rng):
        spec = QuantizationSpec(8, 2)
        w = rng.normal(size=100)
        scale = layer_scale(w, spec)
        np.testing.assert_allclose(np.abs(w).max() / scale, spec.qmax, rtol=1e-9)

    def test_layer_scale_ignores_zeros(self):
        spec = QuantizationSpec(8, 2)
        w = np.array([0.0, 0.0, 2.54])
        assert layer_scale(w, spec) == pytest.approx(2.54 / 127)

    def test_layer_scale_all_zero(self):
        assert layer_scale(np.zeros(5), QuantizationSpec(8, 2)) == 1.0

    def test_percentile_clips_outliers(self, rng):
        spec = QuantizationSpec(8, 2)
        w = np.concatenate([rng.normal(size=1000), [100.0]])
        assert layer_scale(w, spec, percentile=99.0) < layer_scale(w, spec)

    def test_int_roundtrip(self, rng):
        spec = QuantizationSpec(8, 2)
        w = rng.normal(size=64)
        scale = layer_scale(w, spec)
        levels = quantize_to_int(w, spec, scale)
        assert levels.dtype == np.int64
        assert np.abs(levels).max() <= spec.qmax
        np.testing.assert_allclose(dequantize(levels, scale),
                                   quantize(w, spec, scale), rtol=1e-6)

    def test_project_fits_scale_once(self, rng):
        spec = QuantizationSpec(8, 2)
        w = rng.normal(size=32)
        projected, scale = project_quantization(w, spec)
        assert scale > 0
        assert is_quantized(projected, spec, scale)
        # Passing the previous scale keeps the grid stable.
        projected2, scale2 = project_quantization(projected, spec, scale)
        assert scale2 == scale
        np.testing.assert_array_equal(projected2, projected)

    def test_quantization_error_metric(self, rng):
        spec = QuantizationSpec(8, 2)
        w = rng.normal(size=128)
        scale = layer_scale(w, spec)
        err = quantization_error(w, spec, scale)
        assert 0.0 <= err <= scale  # RMS below one step


class TestActivationToInt:
    def test_clips_negative(self):
        ints, _ = activation_to_int(np.array([-1.0, 0.5, 1.0]), bits=4, scale=1 / 15)
        assert ints[0] == 0

    def test_range(self, rng):
        x = np.abs(rng.normal(size=100))
        ints, scale = activation_to_int(x, bits=8)
        assert ints.min() >= 0 and ints.max() <= 255
        assert ints.max() == 255  # max maps to full scale

    def test_all_zero_input(self):
        ints, scale = activation_to_int(np.zeros(4), bits=8)
        assert scale == 1.0
        np.testing.assert_array_equal(ints, 0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            activation_to_int(np.ones(2), bits=0)


@given(st.sampled_from([(4, 2), (8, 2), (8, 4), (16, 2)]),
       st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_quantize_projection_property(spec_args, seed):
    """Quantization is an idempotent projection that never flips signs and
    never moves a value by more than half a step (inside the range)."""
    spec = QuantizationSpec(*spec_args)
    rng = np.random.default_rng(seed)
    w = rng.normal(scale=0.5, size=64)
    scale = layer_scale(w, spec)
    q = quantize(w, spec, scale)
    assert is_quantized(q, spec, scale)
    assert (w * q >= 0).all()
    inside = np.abs(w) < spec.qmax * scale
    assert np.abs((w - q)[inside]).max() <= scale / 2 + 1e-9

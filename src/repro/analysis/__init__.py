"""Evaluation harness: one driver per paper table/figure, plus rendering.

``table1`` .. ``table6``, ``fragment_size_sweep`` (Fig. 6), ``eic_experiment``
(Fig. 8) and ``fig13``/``fig14`` each return an :class:`ExperimentTable`
whose ``rendered`` field reproduces the paper artifact at the configured
:class:`ExperimentScale` (FAST for tests/benches, STANDARD/FULL for deeper
runs).
"""

from .experiments import (DATASET_KEEP, TRACE_IMAGE_SIZE, BaselineRun,
                          ExperimentTable, compression_rows, dataset_for,
                          eic_experiment, fig13, fig14, forms_config_for,
                          fps_experiment, fps_stack_configs, fps_workload,
                          fragment_size_sweep, optimize_baseline, table1,
                          table2, table3, table4, table5, table6,
                          train_baseline)
from .figures import (bar_chart, grouped_bar_chart, histogram, line_chart,
                      sparkline)
from .presets import (FAST, FIG13_WORKLOADS, FIG14_WORKLOADS, FULL, SCALES,
                      STANDARD, TABLE1_WORKLOADS, TABLE2_WORKLOADS,
                      ExperimentScale)
from .report import (DEFAULT_ARTIFACTS, ReportSection, generate_report,
                     write_report)
from .tables import render_kv, render_table

__all__ = [
    "ExperimentScale", "FAST", "STANDARD", "FULL", "SCALES",
    "TABLE1_WORKLOADS", "TABLE2_WORKLOADS", "FIG13_WORKLOADS", "FIG14_WORKLOADS",
    "ExperimentTable", "BaselineRun", "train_baseline", "dataset_for",
    "forms_config_for", "optimize_baseline", "compression_rows",
    "table1", "table2", "table3", "table4", "table5", "table6",
    "fragment_size_sweep", "eic_experiment", "fps_experiment", "fps_workload",
    "fps_stack_configs", "fig13", "fig14",
    "DATASET_KEEP", "TRACE_IMAGE_SIZE",
    "render_table", "render_kv",
    "bar_chart", "grouped_bar_chart", "line_chart", "histogram", "sparkline",
    "generate_report", "write_report", "ReportSection", "DEFAULT_ARTIFACTS",
]

"""Classification metrics tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.metrics import (ClassificationReport, classification_report,
                              confusion_matrix, predictions_from_logits,
                              topk_accuracy)


class TestPredictions:
    def test_argmax(self):
        logits = np.array([[0.1, 0.9], [2.0, -1.0]])
        np.testing.assert_array_equal(predictions_from_logits(logits), [1, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            predictions_from_logits(np.zeros(4))


class TestTopK:
    def test_top1_equals_argmax_accuracy(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(50, 6))
        labels = rng.integers(0, 6, size=50)
        top1 = topk_accuracy(logits, labels, k=1)
        manual = float((predictions_from_logits(logits) == labels).mean())
        assert top1 == pytest.approx(manual)

    def test_full_k_is_perfect(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(20, 4))
        labels = rng.integers(0, 4, size=20)
        assert topk_accuracy(logits, labels, k=4) == 1.0

    def test_monotone_in_k(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(100, 8))
        labels = rng.integers(0, 8, size=100)
        accs = [topk_accuracy(logits, labels, k=k) for k in range(1, 9)]
        assert accs == sorted(accs)

    def test_validation(self):
        logits = np.zeros((4, 3))
        labels = np.zeros(4, dtype=int)
        with pytest.raises(ValueError):
            topk_accuracy(logits, labels, k=0)
        with pytest.raises(ValueError):
            topk_accuracy(logits, labels, k=4)
        with pytest.raises(ValueError):
            topk_accuracy(logits, labels[:2], k=1)


class TestConfusionMatrix:
    def test_simple_counts(self):
        labels = np.array([0, 0, 1, 1, 2])
        predictions = np.array([0, 1, 1, 1, 0])
        matrix = confusion_matrix(labels, predictions, num_classes=3)
        expected = np.array([[1, 1, 0], [0, 2, 0], [1, 0, 0]])
        np.testing.assert_array_equal(matrix, expected)

    def test_row_sums_are_support(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 5, size=200)
        predictions = rng.integers(0, 5, size=200)
        matrix = confusion_matrix(labels, predictions, num_classes=5)
        for c in range(5):
            assert matrix[c].sum() == (labels == c).sum()

    def test_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 5]), np.array([0, 1]),
                             num_classes=3)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_trace_is_correct_count(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 4, size=60)
        predictions = rng.integers(0, 4, size=60)
        matrix = confusion_matrix(labels, predictions, num_classes=4)
        assert np.trace(matrix) == (labels == predictions).sum()
        assert matrix.sum() == 60


class TestReport:
    def perfect(self):
        labels = np.array([0, 1, 2] * 10)
        return classification_report(labels, labels, num_classes=3)

    def test_perfect_classifier(self):
        report = self.perfect()
        assert report.accuracy == 1.0
        np.testing.assert_array_equal(report.recall, 1.0)
        np.testing.assert_array_equal(report.precision, 1.0)
        assert report.macro_f1 == 1.0

    def test_collapsed_class_visible_in_macro_f1(self):
        # 90% aggregate accuracy can hide a dead class; macro-F1 cannot.
        labels = np.array([0] * 90 + [1] * 10)
        predictions = np.zeros(100, dtype=int)   # class 1 always missed
        report = classification_report(labels, predictions, num_classes=2)
        assert report.accuracy == pytest.approx(0.9)
        assert report.macro_f1 < 0.5
        assert report.worst_class() == 1
        assert report.recall[1] == 0.0

    def test_support(self):
        labels = np.array([0, 0, 1])
        report = classification_report(labels, labels, num_classes=2)
        np.testing.assert_array_equal(report.support, [2, 1])

    def test_summary_keys(self):
        summary = self.perfect().summary()
        assert set(summary) == {"accuracy", "macro_f1", "worst_class_recall"}

    def test_empty_class_handled(self):
        labels = np.array([0, 0])
        predictions = np.array([0, 1])
        report = classification_report(labels, predictions, num_classes=3)
        assert report.recall[2] == 0.0
        assert report.precision[2] == 0.0
        assert not np.isnan(report.f1).any()

"""Bit-slicing tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reram import bit_slice, bit_unslice, num_slices, slice_weights


class TestNumSlices:
    def test_exact(self):
        assert num_slices(8, 2) == 4
        assert num_slices(16, 2) == 8

    def test_ceiling(self):
        assert num_slices(7, 2) == 4
        assert num_slices(9, 4) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            num_slices(0, 2)


class TestBitSlice:
    def test_known_value(self):
        # 0b10110101 = 181 -> 2-bit slices little-endian: 01, 01, 11, 10
        codes = bit_slice(np.array([181]), 2, 4)
        np.testing.assert_array_equal(codes[0], [0b01, 0b01, 0b11, 0b10])

    def test_shape(self):
        codes = bit_slice(np.zeros((3, 5), dtype=np.int64), 2, 4)
        assert codes.shape == (3, 5, 4)

    def test_codes_within_cell_range(self, rng):
        values = rng.integers(0, 256, size=100)
        codes = bit_slice(values, 2, 4)
        assert codes.min() >= 0 and codes.max() <= 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_slice(np.array([-1]), 2, 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            bit_slice(np.array([256]), 2, 4)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            bit_slice(np.array([1.5]), 2, 4)


class TestRoundTrip:
    def test_unslice_inverts(self, rng):
        values = rng.integers(0, 2 ** 8, size=(4, 6))
        codes = bit_slice(values, 2, 4)
        np.testing.assert_array_equal(bit_unslice(codes, 2), values)

    def test_slice_weights_values(self):
        np.testing.assert_array_equal(slice_weights(4, 2), [1, 4, 16, 64])


@given(st.integers(1, 3), st.integers(1, 8), st.integers(0, 2 ** 16 - 1))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(cell_bits, extra, value):
    slices = num_slices(16, cell_bits)
    codes = bit_slice(np.array([value]), cell_bits, slices)
    assert bit_unslice(codes, cell_bits)[0] == value
    # recombination via slice_weights agrees
    assert (codes[0] * slice_weights(slices, cell_bits)).sum() == value

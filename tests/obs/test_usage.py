"""UsageMeter units: the accounting substrate of ``GET /v1/usage``."""

import threading

from repro.obs import UsageMeter


class TestUsageMeter:
    def test_empty_snapshot(self):
        snap = UsageMeter().snapshot()
        assert snap == {"by_model": {},
                        "totals": {"requests": 0, "sheds": 0, "macs": 0,
                                   "die_seconds": 0.0}}

    def test_requests_accumulate_per_cell(self):
        meter = UsageMeter()
        meter.record_request("fast", "interactive", macs=100,
                             die_seconds=0.5)
        meter.record_request("fast", "interactive", macs=50,
                             die_seconds=0.25)
        meter.record_request("fast", "bulk", macs=10, die_seconds=0.1)
        meter.record_request("batch", "bulk", macs=1, die_seconds=0.01)
        snap = meter.snapshot()
        cell = snap["by_model"]["fast"]["interactive"]
        assert cell == {"requests": 2, "sheds": 0, "macs": 150,
                        "die_seconds": 0.75}
        assert snap["by_model"]["fast"]["bulk"]["requests"] == 1
        assert snap["totals"]["requests"] == 4
        assert snap["totals"]["macs"] == 161
        assert snap["totals"]["die_seconds"] == 0.86

    def test_sheds_count_separately_from_requests(self):
        meter = UsageMeter()
        meter.record_shed("fast", "interactive")
        meter.record_shed("fast", "interactive")
        snap = meter.snapshot()
        cell = snap["by_model"]["fast"]["interactive"]
        assert cell["sheds"] == 2 and cell["requests"] == 0
        assert snap["totals"]["sheds"] == 2

    def test_snapshot_is_a_copy(self):
        meter = UsageMeter()
        meter.record_request("fast", "bulk", macs=5)
        snap = meter.snapshot()
        snap["by_model"]["fast"]["bulk"]["macs"] = 0
        snap["totals"]["requests"] = 99
        fresh = meter.snapshot()
        assert fresh["by_model"]["fast"]["bulk"]["macs"] == 5
        assert fresh["totals"]["requests"] == 1

    def test_concurrent_recording_loses_nothing(self):
        meter = UsageMeter()
        threads_n, per_thread = 8, 400

        def writer(i):
            model = f"m{i % 2}"
            for _ in range(per_thread):
                meter.record_request(model, "default", macs=3,
                                     die_seconds=0.001)
                meter.record_shed(model, "default")

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        totals = meter.snapshot()["totals"]
        expected = threads_n * per_thread
        assert totals["requests"] == expected
        assert totals["sheds"] == expected
        assert totals["macs"] == expected * 3

"""Batch-level data augmentation for the training substrate.

The reference training recipes the paper's Tables I/II baselines come from
(CIFAR ResNet/VGG training) universally use random crops and horizontal
flips; ADMM retraining phases benefit from the same regularization.  These
transforms operate on image batches ``(N, C, H, W)`` with a seeded RNG so
runs stay reproducible, and compose via :class:`Compose`.

Use with the trainer through :class:`AugmentedDataset`, a view that applies
the transform lazily per epoch — the underlying images are never modified.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, Tuple

import numpy as np

from .data import Dataset


class Transform:
    """Base class: a seeded, batch-level image transform."""

    def __call__(self, images: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class RandomHorizontalFlip(Transform):
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must lie in [0, 1]")
        self.p = p

    def __call__(self, images: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        flip = rng.random(len(images)) < self.p
        out = images.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out


class RandomCrop(Transform):
    """Pad by ``padding`` pixels (reflect) and crop back at a random offset."""

    def __init__(self, padding: int = 2):
        if padding < 1:
            raise ValueError("padding must be >= 1")
        self.padding = padding

    def __call__(self, images: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        pad = self.padding
        n, _, height, width = images.shape
        padded = np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)),
                        mode="reflect")
        rows = rng.integers(0, 2 * pad + 1, size=n)
        cols = rng.integers(0, 2 * pad + 1, size=n)
        out = np.empty_like(images)
        for i in range(n):
            out[i] = padded[i, :, rows[i]:rows[i] + height,
                            cols[i]:cols[i] + width]
        return out


class GaussianNoise(Transform):
    """Add zero-mean Gaussian pixel noise of standard deviation ``sigma``."""

    def __init__(self, sigma: float = 0.05):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma

    def __call__(self, images: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0.0:
            return images
        noise = rng.normal(0.0, self.sigma, size=images.shape)
        return (images + noise).astype(images.dtype)


class Cutout(Transform):
    """Zero a random square patch per image (regularizes like dropout)."""

    def __init__(self, size: int = 4):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size

    def __call__(self, images: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        n, _, height, width = images.shape
        if self.size >= min(height, width):
            raise ValueError("cutout patch must be smaller than the image")
        out = images.copy()
        rows = rng.integers(0, height - self.size + 1, size=n)
        cols = rng.integers(0, width - self.size + 1, size=n)
        for i in range(n):
            out[i, :, rows[i]:rows[i] + self.size,
                cols[i]:cols[i] + self.size] = 0.0
        return out


class Compose(Transform):
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Transform]):
        if not transforms:
            raise ValueError("need at least one transform")
        self.transforms = list(transforms)

    def __call__(self, images: np.ndarray,
                 rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            images = transform(images, rng)
        return images


def standard_augmentation(padding: int = 2, flip_p: float = 0.5,
                          noise_sigma: float = 0.0) -> Compose:
    """The CIFAR-recipe default: random crop + horizontal flip (+ noise)."""
    transforms: List[Transform] = [RandomCrop(padding),
                                   RandomHorizontalFlip(flip_p)]
    if noise_sigma > 0:
        transforms.append(GaussianNoise(noise_sigma))
    return Compose(transforms)


class AugmentedDataset:
    """A :class:`Dataset` view whose images are transformed on access.

    Each ``images`` read applies the transform with a fresh per-epoch RNG
    stream, so successive epochs see different augmentations while the
    underlying data never changes.  Quacks like :class:`Dataset` for the
    trainer (``len``, ``images``, ``labels``, ``num_classes``).
    """

    def __init__(self, dataset: Dataset, transform: Transform, seed: int = 0):
        self.dataset = dataset
        self.transform = transform
        self.seed = seed
        self._draws = 0

    def __len__(self) -> int:
        return len(self.dataset)

    @property
    def name(self) -> str:
        return f"{self.dataset.name}+aug"

    @property
    def num_classes(self) -> int:
        return self.dataset.num_classes

    @property
    def labels(self) -> np.ndarray:
        return self.dataset.labels

    @property
    def images(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed + self._draws)
        self._draws += 1
        return self.transform(self.dataset.images, rng)

"""Gradient-based optimizers.

The ADMM W-subproblem (paper Eq. 4) is "classic SGD" on the loss plus the
augmented-Lagrangian penalty; the penalty gradient ``rho * (W - Z + U)`` is
injected by :class:`repro.core.admm.ADMMTrainer` before ``step`` is called, so
these optimizers stay constraint-agnostic.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .layers import Parameter


class Optimizer:
    """Base optimizer holding a list of parameters."""

    def __init__(self, params: Iterable[Parameter]):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) — the paper's reference SGD-family solver."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiplies learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

"""The serving contract, end to end.

A served request must be **bit-identical** to a direct single-image
``run_network_serial`` call on the same image — at any batch composition,
submission interleaving and worker count, with and without read noise —
and the per-request engine-stats slices must sum exactly to the shared
engines' merged totals.
"""

import threading

import numpy as np
import pytest

from repro.perf.suite import _post_relu_network
from repro.reram import ADCSpec, DeviceSpec, ReRAMDevice, paper_adc_bits
from repro.reram.nonideal import ReadNoise
from repro.reram.nonideal_engine import NonidealEngine
from repro.runtime import run_network_serial
from repro.serving import InferenceServer

WORKER_COUNTS = (1, 3)


@pytest.fixture(scope="module")
def network_case():
    model, config, images = _post_relu_network()
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    return model, config, images, device, adc


def make_server(network_case, *, noise=False, **kwargs):
    model, config, images, device, adc = network_case
    build = dict(adc=adc, activation_bits=12)
    if noise:
        spec = DeviceSpec()
        build["engine_cls"] = NonidealEngine
        build["read_noise"] = ReadNoise.for_fragment(
            config.fragment_size, spec.g_max, spec.read_voltage,
            relative_sigma=0.05, seed=3)
    return InferenceServer.from_model(model, config, device,
                                      **build, **kwargs)


def serial_reference(server, images):
    """Direct serial single-image forwards through the *same* network."""
    return run_network_serial(server.model, images, tile_size=1)


class TestBitIdentity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("noise", [False, True],
                             ids=["ideal", "read_noise"])
    def test_served_equals_serial(self, network_case, workers, noise):
        """The acceptance matrix: >=2 worker counts x {ideal, noisy}."""
        images = network_case[2]
        with make_server(network_case, noise=noise, workers=workers,
                         max_batch=4, max_wait_s=0.05) as server:
            results = server.submit_many(images)
            serial = serial_reference(server, images)
        for i, served in enumerate(results):
            np.testing.assert_array_equal(served.output, serial[i])

    def test_interleaved_submissions_from_threads(self, network_case):
        """Concurrent single-image submissions, arbitrary arrival order."""
        images = network_case[2]
        outputs = {}
        with make_server(network_case, workers=3, max_batch=3,
                         max_wait_s=0.02) as server:

            def client(i):
                outputs[i] = server.submit(images[i]).output

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(images.shape[0])]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            serial = serial_reference(server, images)
        for i in range(images.shape[0]):
            np.testing.assert_array_equal(outputs[i], serial[i])

    def test_batch_composition_is_irrelevant(self, network_case):
        """max_batch=1 (no coalescing) and max_batch=8 (everything rides
        together) produce identical bits."""
        images = network_case[2]
        with make_server(network_case, workers=2, max_batch=1,
                         max_wait_s=0.0) as singles:
            lone = [r.output for r in singles.submit_many(images)]
        with make_server(network_case, workers=2, max_batch=8,
                         max_wait_s=0.1) as coalesced:
            ganged = coalesced.submit_many(images)
        assert max(r.stats.batch_size for r in ganged) > 1
        for a, b in zip(lone, ganged):
            np.testing.assert_array_equal(a, b.output)

    def test_noisy_serving_is_batch_invariant(self, network_case):
        """Read noise is keyed per (input, job): which batch a request
        rode in cannot change its noise draw."""
        images = network_case[2][:4]
        with make_server(network_case, noise=True, workers=1,
                         max_batch=1, max_wait_s=0.0) as singles:
            lone = [r.output for r in singles.submit_many(images)]
        with make_server(network_case, noise=True, workers=3,
                         max_batch=4, max_wait_s=0.1) as coalesced:
            ganged = [r.output for r in coalesced.submit_many(images)]
        for a, b in zip(lone, ganged):
            np.testing.assert_array_equal(a, b)


class TestStatsConsistency:
    def test_request_slices_sum_to_engine_totals(self, network_case):
        """Per-request engine-stats slices partition the merged totals."""
        images = network_case[2]
        with make_server(network_case, workers=3, max_batch=4,
                         max_wait_s=0.02) as server:
            results = server.submit_many(images)
            totals = {}
            for engine in server.engines.values():
                for key, value in engine.stats.as_dict().items():
                    totals[key] = totals.get(key, 0) + value
        summed = {}
        for served in results:
            for key, value in served.stats.engine_stats.items():
                summed[key] = summed.get(key, 0) + value
        assert summed == totals

    def test_slices_match_serial_single_image_stats(self, network_case):
        """Each request's slice equals the stats of a standalone serial
        single-image forward on a fresh, identical network."""
        model, config, images, device, adc = network_case
        images = images[:3]
        with make_server(network_case, workers=3, max_batch=3,
                         max_wait_s=0.05) as server:
            results = server.submit_many(images)
        from repro.reram.inference import build_insitu_network
        for i, served in enumerate(results):
            net, engines = build_insitu_network(model, config, device,
                                                adc=adc, activation_bits=12)
            run_network_serial(net, images[i:i + 1], tile_size=1)
            standalone = {}
            for engine in engines.values():
                for key, value in engine.stats.as_dict().items():
                    standalone[key] = standalone.get(key, 0) + value
            assert served.stats.engine_stats == standalone

    def test_request_receipts_are_coherent(self, network_case):
        images = network_case[2]
        with make_server(network_case, workers=2, max_batch=4,
                         max_wait_s=0.02) as server:
            results = server.submit_many(images)
            snapshot = server.server_stats()
        assert snapshot["requests_completed"] == images.shape[0]
        assert snapshot["requests_failed"] == 0
        assert snapshot["batches_formed"] >= 1
        ids = [r.stats.request_id for r in results]
        assert sorted(ids) == list(range(images.shape[0]))
        for served in results:
            s = served.stats
            assert s.latency_s >= s.queue_wait_s >= 0.0
            assert s.latency_s >= s.service_s >= 0.0
            assert 1 <= s.batch_size <= 4
            assert s.engine_stats["conversions"] > 0


class TestLifecycle:
    def test_shutdown_drains_and_refuses(self, network_case):
        images = network_case[2]
        server = make_server(network_case, workers=2, max_batch=8,
                             max_wait_s=0.2)
        futures = [server.submit_async(image) for image in images]
        server.shutdown()
        for future in futures:
            assert future.result(timeout=5.0).output.shape[-1] == 10
        with pytest.raises(RuntimeError, match="shut down"):
            server.submit(images[0])
        server.shutdown()  # idempotent

    def test_borrowed_pool_left_open(self, network_case):
        from repro.runtime import WorkerPool
        images = network_case[2][:2]
        with WorkerPool(2) as pool:
            with make_server(network_case, pool=pool,
                             max_wait_s=0.0) as server:
                server.submit_many(images)
            assert pool.map(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_cancelled_future_does_not_poison_batch_mates(self, network_case):
        """A client cancelling its pending future must not fail the other
        requests riding the same batch."""
        images = network_case[2][:4]
        with make_server(network_case, workers=1, max_batch=4,
                         max_wait_s=0.5) as server:
            victim = server.submit_async(images[0])
            cancelled = victim.cancel()
            mates = [server.submit_async(image) for image in images[1:]]
            serial = serial_reference(server, images)
            for i, future in enumerate(mates, start=1):
                np.testing.assert_array_equal(
                    future.result(timeout=5.0).output, serial[i])
        if not cancelled:   # raced the batcher: the victim was served
            np.testing.assert_array_equal(
                victim.result(timeout=5.0).output, serial[0])

    def test_rejects_scalar_image(self, network_case):
        with make_server(network_case, workers=1,
                         max_wait_s=0.0) as server:
            with pytest.raises(ValueError):
                server.submit_async(np.float64(3.0))

    def test_shape_mismatch_rejected_at_submit(self, network_case):
        """A malformed request is rejected at submit time and never
        reaches a batch where it would fail innocent batch mates."""
        images = network_case[2][:2]
        with make_server(network_case, workers=1, max_batch=4,
                         max_wait_s=0.2) as server:
            good = server.submit_async(images[0])
            with pytest.raises(ValueError, match="shape"):
                server.submit_async(images[1][..., :-1])
            serial = serial_reference(server, images[:1])
            np.testing.assert_array_equal(good.result(timeout=5.0).output,
                                          serial[0])

    def test_die_cache_shared_across_servers(self, network_case):
        from repro.reram import DieCache
        cache = DieCache()
        with make_server(network_case, workers=1, max_wait_s=0.0,
                         die_cache=cache):
            pass
        misses = cache.misses
        assert misses > 0
        with make_server(network_case, workers=1, max_wait_s=0.0,
                         die_cache=cache):
            pass
        assert cache.misses == misses
        assert cache.hits >= misses

"""VTEAM memristor dynamics (paper ref [71], Kvatinsky et al. 2015).

The behavioural :mod:`repro.reram.device` model assumes cells can be set to
any of ``2**cell_bits`` discrete conductance levels; this module supplies the
device physics underneath that assumption.  VTEAM is a *voltage-threshold*
memristor model: the internal state ``x`` (0 = fully ON / low resistance,
1 = fully OFF / high resistance) only moves when the applied voltage exceeds
a polarity-dependent threshold,

    dx/dt = k_off * (v / v_off - 1)^alpha_off * f_off(x)   for v > v_off > 0
    dx/dt = 0                                              for v_on < v < v_off
    dx/dt = k_on  * (v / v_on  - 1)^alpha_on  * f_on(x)    for v < v_on  < 0

with ``k_off > 0`` (RESET, toward high resistance) and ``k_on < 0`` (SET,
toward low resistance), and window functions ``f_on/f_off`` that vanish at
the state bounds.  Resistance interpolates linearly in state:
``R(x) = r_on + x * (r_off - r_on)``.

Two consequences matter architecturally and are property-tested here:

* reads are non-destructive — the 0.3 V read voltage sits inside the
  threshold window, so MVM passes never drift the stored weights;
* writes are inherently analog — hitting one of the discrete levels of
  :class:`~repro.reram.device.DeviceSpec` requires the closed-loop
  program-and-verify controller (:func:`program_level`), whose pulse count
  is the write-latency figure the charge-pump/write-driver costing uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .device import DeviceSpec


@dataclass(frozen=True)
class VTEAMParams:
    """VTEAM model parameters.

    Defaults describe a cell compatible with the behavioural
    :class:`~repro.reram.device.DeviceSpec` defaults (100 kOhm / 10 MOhm)
    with +/-0.5 V thresholds — safely above the 0.3 V read voltage and below
    the 2 V charge-pump write voltage (paper Sec. V-B).  ``k_off``/``k_on``
    are scaled so a 2 V, 10 ns write pulse moves the state by roughly a
    quarter of its range: a full SET/RESET takes a handful of pulses, and
    program-and-verify can bisect to intermediate levels.
    """

    v_off: float = 0.5            # RESET threshold (V, positive)
    v_on: float = -0.5            # SET threshold (V, negative)
    k_off: float = 5e6            # RESET rate coefficient (1/s, positive)
    k_on: float = -5e6            # SET rate coefficient (1/s, negative)
    alpha_off: float = 3.0        # RESET voltage nonlinearity exponent
    alpha_on: float = 3.0         # SET voltage nonlinearity exponent
    r_on: float = 100e3           # resistance at x = 0 (Ohm)
    r_off: float = 10e6           # resistance at x = 1 (Ohm)
    window_p: float = 2.0         # window polynomial order (higher = harder stop)

    def __post_init__(self):
        if not self.v_on < 0.0 < self.v_off:
            raise ValueError("thresholds must satisfy v_on < 0 < v_off")
        if self.k_off <= 0 or self.k_on >= 0:
            raise ValueError("need k_off > 0 (RESET) and k_on < 0 (SET)")
        if self.alpha_off < 1 or self.alpha_on < 1:
            raise ValueError("alpha exponents must be >= 1")
        if not 0 < self.r_on < self.r_off:
            raise ValueError("need 0 < r_on < r_off")
        if self.window_p < 1:
            raise ValueError("window_p must be >= 1")

    # -- static maps -------------------------------------------------------
    def resistance(self, x) -> np.ndarray:
        """Resistance at state ``x`` (linear ion-drift interpolation)."""
        x = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
        return self.r_on + x * (self.r_off - self.r_on)

    def conductance(self, x) -> np.ndarray:
        return 1.0 / self.resistance(x)

    def state_for_conductance(self, g) -> np.ndarray:
        """Inverse of :meth:`conductance` (clipped to the valid state range)."""
        g = np.asarray(g, dtype=np.float64)
        if (g <= 0).any():
            raise ValueError("conductance must be positive")
        x = (1.0 / g - self.r_on) / (self.r_off - self.r_on)
        return np.clip(x, 0.0, 1.0)

    # -- dynamics ----------------------------------------------------------
    def window_off(self, x) -> np.ndarray:
        """RESET window: full speed at x = 0, stops at x = 1."""
        x = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
        return 1.0 - x ** self.window_p

    def window_on(self, x) -> np.ndarray:
        """SET window: full speed at x = 1, stops at x = 0."""
        x = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
        return 1.0 - (1.0 - x) ** self.window_p

    def dxdt(self, x, voltage: float) -> np.ndarray:
        """State velocity at state ``x`` under applied ``voltage``."""
        x = np.asarray(x, dtype=np.float64)
        if voltage > self.v_off:
            drive = self.k_off * (voltage / self.v_off - 1.0) ** self.alpha_off
            return drive * self.window_off(x)
        if voltage < self.v_on:
            drive = self.k_on * (voltage / self.v_on - 1.0) ** self.alpha_on
            return drive * self.window_on(x)
        return np.zeros_like(x)


class VTEAMCell:
    """One (or an array of) VTEAM memristor(s) with mutable internal state.

    ``state`` may be a scalar or any-shaped array; all operations broadcast.
    """

    def __init__(self, params: VTEAMParams = VTEAMParams(),
                 state: float | np.ndarray = 1.0):
        self.params = params
        self.state = np.clip(np.asarray(state, dtype=np.float64), 0.0, 1.0)
        #: Joule heating accumulated by every step/pulse (summed over cells),
        #: the quantity behind write-energy budgets: E = integral v^2 g dt.
        self.energy_j = 0.0

    # -- electrical interface ----------------------------------------------
    @property
    def resistance(self) -> np.ndarray:
        return self.params.resistance(self.state)

    @property
    def conductance(self) -> np.ndarray:
        return self.params.conductance(self.state)

    def read_current(self, read_voltage: float = 0.3) -> np.ndarray:
        """Ohmic read.  Raises if the read would disturb the state."""
        if not self.params.v_on < read_voltage < self.params.v_off:
            raise ValueError(
                f"read voltage {read_voltage} V is outside the non-disturb "
                f"window ({self.params.v_on}, {self.params.v_off})")
        return read_voltage * self.conductance

    # -- time evolution ------------------------------------------------------
    def step(self, voltage: float, dt: float) -> np.ndarray:
        """One explicit-Euler integration step; returns the new state."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.energy_j += float((voltage ** 2 * self.conductance).sum()) * dt
        self.state = np.clip(self.state + self.params.dxdt(self.state, voltage) * dt,
                             0.0, 1.0)
        return self.state

    def apply_pulse(self, voltage: float, duration: float,
                    steps: int = 16) -> np.ndarray:
        """Apply a rectangular voltage pulse, integrating in ``steps`` substeps.

        Sub-stepping keeps the explicit Euler integration stable when a pulse
        would otherwise traverse a large fraction of the state range at once.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if steps < 1:
            raise ValueError("steps must be >= 1")
        dt = duration / steps
        for _ in range(steps):
            self.step(voltage, dt)
        return self.state


# ---------------------------------------------------------------------------
# Closed-loop programming
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ProgramScheme:
    """Program-and-verify controller settings.

    Bang-bang with pulse-width bisection: apply a SET or RESET pulse toward
    the target, verify with a read, and halve the pulse width whenever the
    sign of the error flips (overshoot).  ``tolerance`` is relative to the
    cell's full conductance range.
    """

    set_voltage: float = -2.0     # toward low resistance (higher conductance)
    reset_voltage: float = 2.0    # toward high resistance (lower conductance)
    pulse_width_s: float = 50e-9  # initial pulse width
    min_pulse_width_s: float = 0.5e-9
    max_pulses: int = 200
    tolerance: float = 0.01       # fraction of (g_max - g_min)

    def __post_init__(self):
        if self.set_voltage >= 0 or self.reset_voltage <= 0:
            raise ValueError("set_voltage must be negative, reset_voltage positive")
        if not 0 < self.min_pulse_width_s <= self.pulse_width_s:
            raise ValueError("need 0 < min_pulse_width_s <= pulse_width_s")
        if self.max_pulses < 1:
            raise ValueError("max_pulses must be >= 1")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")


@dataclass
class ProgramResult:
    """Outcome of one program-and-verify session."""

    target_g: float
    achieved_g: float
    pulses: int
    converged: bool
    energy_j: float = 0.0   # Joule heating spent on the write pulses

    @property
    def error(self) -> float:
        return abs(self.achieved_g - self.target_g)


def program_level(cell: VTEAMCell, target_g: float,
                  scheme: ProgramScheme = ProgramScheme()) -> ProgramResult:
    """Drive ``cell`` to ``target_g`` siemens with program-and-verify writes.

    ``cell`` must hold a scalar state.  Returns the achieved conductance and
    pulse count; ``converged`` is False when ``max_pulses`` ran out first.
    """
    params = cell.params
    g_min, g_max = 1.0 / params.r_off, 1.0 / params.r_on
    if not g_min <= target_g <= g_max:
        raise ValueError(f"target conductance {target_g:g} outside "
                         f"[{g_min:g}, {g_max:g}]")
    tol = scheme.tolerance * (g_max - g_min)
    width = scheme.pulse_width_s
    previous_sign = 0
    energy_start = cell.energy_j
    for pulse in range(scheme.max_pulses):
        error = target_g - float(cell.conductance)
        if abs(error) <= tol:
            return ProgramResult(target_g, float(cell.conductance), pulse,
                                 True, cell.energy_j - energy_start)
        sign = 1 if error > 0 else -1
        if previous_sign and sign != previous_sign:
            width = max(width / 2.0, scheme.min_pulse_width_s)
        previous_sign = sign
        # Conductance too low -> SET (negative voltage); too high -> RESET.
        voltage = scheme.set_voltage if sign > 0 else scheme.reset_voltage
        cell.apply_pulse(voltage, width)
    converged = abs(target_g - float(cell.conductance)) <= tol
    return ProgramResult(target_g, float(cell.conductance), scheme.max_pulses,
                         converged, cell.energy_j - energy_start)


def program_codes(codes: np.ndarray, params: VTEAMParams = VTEAMParams(),
                  cell_bits: int = 2,
                  scheme: ProgramScheme = ProgramScheme(),
                  initial_state: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
    """Program an array of level codes cell by cell through the VTEAM physics.

    Bridges the dynamics model to the behavioural stack: the target levels
    are exactly :meth:`DeviceSpec.ideal_conductance`.  Returns
    ``(conductances, pulse_counts)`` with the shapes of ``codes``.

    This is the slow, physically-honest path; the behavioural
    :class:`~repro.reram.device.ReRAMDevice` is its fast surrogate (their
    agreement is property-tested in ``tests/reram/test_vteam.py``).
    """
    spec = device_spec_from_vteam(params, cell_bits)
    targets = spec.ideal_conductance(np.asarray(codes))
    flat_targets = targets.reshape(-1)
    achieved = np.empty_like(flat_targets)
    pulses = np.empty(flat_targets.shape, dtype=np.int64)
    for i, target in enumerate(flat_targets):
        cell = VTEAMCell(params, state=initial_state)
        result = program_level(cell, float(target), scheme)
        achieved[i] = result.achieved_g
        pulses[i] = result.pulses
    return achieved.reshape(targets.shape), pulses.reshape(targets.shape)


def device_spec_from_vteam(params: VTEAMParams, cell_bits: int = 2,
                           read_voltage: Optional[float] = None) -> DeviceSpec:
    """Derive the behavioural :class:`DeviceSpec` implied by VTEAM parameters.

    The read voltage defaults to 60% of the SET/RESET threshold magnitude —
    comfortably non-disturbing while maximizing read current (signal margin
    at the sample-and-hold).
    """
    if read_voltage is None:
        read_voltage = 0.6 * min(params.v_off, -params.v_on)
    if not params.v_on < read_voltage < params.v_off:
        raise ValueError("read_voltage must sit inside the threshold window")
    return DeviceSpec(cell_bits=cell_bits, r_on=params.r_on, r_off=params.r_off,
                      read_voltage=read_voltage,
                      write_voltage=max(abs(params.v_off), abs(params.v_on)) * 4)


def write_latency_s(pulse_counts: np.ndarray,
                    scheme: ProgramScheme = ProgramScheme(),
                    verify_time_s: float = 10e-9) -> float:
    """Worst-case write latency of a crossbar programming session.

    Cells on different columns program in parallel (one write driver per
    column); cells on the same column serialize.  For the simple upper bound
    used by the costing model we charge the max pulse count times one
    pulse + verify period.
    """
    if verify_time_s < 0:
        raise ValueError("verify_time_s must be non-negative")
    worst = int(np.max(pulse_counts)) if np.size(pulse_counts) else 0
    return worst * (scheme.pulse_width_s + verify_time_s)

"""Parallel whole-network in-situ inference.

:func:`repro.reram.inference.build_insitu_network` produces a model whose
conv/linear layers run on crossbar engines; this module executes that model
over a batch of inputs with the batch split into *tiles* and the tiles
fanned out across a :class:`~repro.runtime.executor.WorkerPool`.  Tiles are
independent end to end (a feedforward network has no cross-image state), so
tile-level parallelism is also pipeline parallelism: while one worker's
tile occupies layer 3's engine, another tile drives layer 1 — different
layers of the network genuinely run concurrently.

Numerical contract (the determinism contract)
---------------------------------------------
Downstream layers — most prominently :mod:`repro.serving`, which promises
its clients that a batched request is bit-identical to a single-image call
— rely on three properties of this module, all asserted in
``tests/runtime/`` and ``tests/serving/``:

* The **tiling is the numerical configuration**: activation quantization
  picks its scale per engine call, so a different tiling can quantize a
  tile on a (slightly) different grid.  Fix the tile boundaries and
  results are reproducible.  (This is why the serving layer dispatches
  one tile per request: each image keeps the quantization grid of a
  standalone call, no matter which batch it rode in.)
* The **worker count is not**: for a fixed tiling, outputs and engine
  stats are bit-identical at any worker count — including 1 and the
  no-pool serial path, which run the identical code minus the threads.
  Two mechanisms make this structural rather than statistical:
  **ordered merge** — :meth:`WorkerPool.map` returns results in item
  order and kernels accumulate into per-call stats locals merged under
  the engine's stats lock, so neither outputs nor counters depend on
  completion order; and **keyed noise substreams** —
  :class:`repro.reram.nonideal.ReadNoise` draws each job's noise from a
  substream keyed on (input digest, plane, bit, fragment), not on draw
  order, so even *noisy* inference is worker-count invariant.
* **Per-thread stats attribution**: an engine commits each call's stats
  once, on the thread that issued the call, which is what lets
  :func:`infer_tiles` (via :class:`repro.reram.StatsScope`) hand back an
  exact per-tile — and hence per-request — slice of the merged stats.

Engines may be shared freely across tiles — kernel calls accumulate stats
in per-call locals and merge under the stats lock.  The same holds
*across models*: the multi-tenant serving layer
(:mod:`repro.serving.registry`) runs several independent networks' tiles
on one pool, and because no state is shared between engines of different
models (the shared :class:`~repro.reram.DieCache` hands out read-only
programmed planes), which tenants co-occupy the pool — and in what order
the SLA scheduler interleaves them — can never change any tile's bits.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.tensor import Tensor
from ..obs.trace import SpanRecorder, bind as _bind_recorder
from ..reram import EngineStats, StatsScope
from .executor import _WORKER_THREAD_PREFIX, WorkerPool


def _engine_list(engines) -> List:
    if hasattr(engines, "values"):
        return list(engines.values())
    return list(engines)


def collect_engines(model) -> Dict[str, object]:
    """Every crossbar engine reachable from ``model``, keyed by module name.

    The same traversal (and the same keys) as
    :func:`repro.reram.inference.build_insitu_network`'s engines dict —
    the process backend uses it to merge worker-side per-engine stats
    back into the caller's engine objects.
    """
    engines: Dict[str, object] = {}
    if hasattr(model, "named_modules"):
        for name, module in model.named_modules():
            engine = getattr(module, "engine", None)
            if engine is not None:
                engines[name] = engine
    return engines


def attach_pool(engines, pool: Optional[WorkerPool]) -> None:
    """Point every engine's in-layer chunk fan-out at ``pool``.

    Layer-level parallelism: one big MVM's independent job chunks spread
    across the workers.  Composes safely with tile-level fan-out on the
    same pool (a map issued from a worker runs inline), but for many small
    tiles the tile-level fan-out alone is usually the better schedule.
    """
    for engine in _engine_list(engines):
        engine.pool = pool


def detach_pool(engines) -> None:
    """Restore serial in-layer execution on every engine."""
    attach_pool(engines, None)


def iter_tiles(batch: int, tile_size: int) -> List[slice]:
    """The uniform tiling: ``batch`` split into ``tile_size``-image slices."""
    if tile_size < 1:
        raise ValueError("tile_size must be >= 1")
    return [slice(start, min(start + tile_size, batch))
            for start in range(0, batch, tile_size)]


_tiles = iter_tiles


def _normalize_tile(tile):
    if isinstance(tile, (int, np.integer)):
        return slice(int(tile), int(tile) + 1)
    return tile


def _process_tile_task(task, *, shipment, collect_spans=False):
    """Run one tile in a process worker (module-level: must pickle).

    The model and its engines arrive via the shipment (deserialized once
    per worker); the images array rides the plane-aware pickle, so every
    task attaches the same shared-memory batch.  Returns the tile output
    plus two stats views: per-engine counter deltas (exact — a worker
    runs one task at a time on one thread) for the parent's merge, and
    the scope aggregate for ``collect_stats`` callers.  With
    ``collect_spans`` a fourth element rides along: the tile's finished
    span dict (duration plus worker pid — ``perf_counter`` offsets are
    not comparable across processes, so only durations cross the
    boundary), which the parent stitches into the caller's recorder.
    """
    from .process import load_shipment

    tile, images = task
    model, _engines = load_shipment(shipment)
    engines = collect_engines(model)
    before = {name: engine.stats.as_dict() for name, engine in engines.items()}
    recorder = SpanRecorder() if collect_spans else None
    start = time.perf_counter()
    with _bind_recorder(recorder), StatsScope() as scope:
        out = model(Tensor(images[_normalize_tile(tile)])).data
    deltas = {}
    for name, engine in engines.items():
        after = engine.stats.as_dict()
        deltas[name] = {key: after[key] - before[name][key] for key in after}
    if not collect_spans:
        return out, deltas, scope.stats.as_dict()
    recorder.close_span("tile", time.perf_counter() - start,
                        backend="process", pid=os.getpid())
    return out, deltas, scope.stats.as_dict(), recorder.spans


def _infer_tiles_process(model, images, tiles, pool, collect_stats,
                         span_recorders=None):
    """The process-backend tile fan-out: ship once, run tiles, merge stats.

    The deterministic contract is preserved structurally: ``pool.map`` is
    ordered and eager-error on every backend, each tile's bits depend only
    on the shipped planes and the shared images (both byte-exact copies of
    the caller's arrays), and the per-engine counter deltas merge into the
    caller's engines in tile order — integer merges commute, so the totals
    equal the serial run's no matter how tiles landed on workers.
    Worker-side tile spans (when ``span_recorders`` is given) come back
    with the results and are stitched into each tile's recorder here, on
    the caller's side.
    """
    engines = collect_engines(model)
    version = tuple(getattr(engine, "_swap_epoch", 0)
                    for engine in engines.values())
    shipment = pool.ship((model, engines), version=version)
    collect_spans = span_recorders is not None
    run = functools.partial(_process_tile_task, shipment=shipment,
                            collect_spans=collect_spans)
    raw = pool.map(run, [(tile, images) for tile in tiles])
    results = []
    for index, row in enumerate(raw):
        if collect_spans:
            out, deltas, scope_counters, spans = row
            recorder = span_recorders[index]
            if recorder is not None:
                for span in spans:
                    recorder.add_span(span)
        else:
            out, deltas, scope_counters = row
        for name, counters in deltas.items():
            engines[name].stats.merge(EngineStats(**counters))
        if collect_stats:
            results.append((out, EngineStats(**scope_counters)))
        else:
            results.append(out)
    return results


def infer_tiles(model, images: np.ndarray, tiles: Sequence,
                *, workers: Optional[int] = None,
                pool: Optional[WorkerPool] = None,
                collect_stats: bool = False,
                backend: Optional[str] = None,
                span_recorders: Optional[Sequence] = None):
    """Run ``model`` over explicit batch tiles fanned out on workers.

    The tile-shape-agnostic entry point: ``tiles`` is any sequence of
    indexers into the batch axis of ``images`` — slices (possibly ragged),
    index arrays, single integers — and each tile is one engine-call unit.
    Returns the list of per-tile output arrays *in tile order* (not
    concatenated: callers like :mod:`repro.serving` slice results back out
    per request).

    With ``collect_stats=True`` each tile's forward pass runs inside a
    :class:`repro.reram.StatsScope`, and the return value is a list of
    ``(output, EngineStats)`` pairs — the exact slice of every shared
    engine's merged stats attributable to that tile.  The slices are exact
    because engines commit each call's stats on the calling thread and one
    tile runs entirely on one worker thread (see the module docstring).

    ``pool`` (if given) is borrowed and left open; otherwise a pool of
    ``workers`` on ``backend`` is created for the call.  On a
    process-backend pool the model ships to the workers once (planes in
    shared memory) and worker-side per-engine stats merge back into the
    caller's engines — outputs and merged stats are bit-identical to the
    thread and serial schedules (``tests/runtime/
    test_backend_equivalence.py``).

    ``span_recorders`` (optional, aligned with ``tiles``; entries may be
    ``None``) collects one timed ``tile`` span per tile into each
    :class:`repro.obs.SpanRecorder` — on the serial/thread schedules the
    recorder is bound on the executing thread (so armed engine profilers
    contribute per-layer children), on the process schedule the worker's
    finished spans return with the results and are stitched here.
    Tracing is read-only: it never touches an operand, and the traced
    and untraced schedules produce byte-identical outputs
    (``tests/obs/test_obs_determinism.py``).
    """
    images = np.asarray(images)
    if images.ndim < 1 or images.shape[0] == 0:
        raise ValueError("images must carry at least one batch entry")
    tiles = list(tiles)
    if not tiles:
        raise ValueError("tiles must name at least one tile")
    if span_recorders is not None:
        span_recorders = list(span_recorders)
        if len(span_recorders) != len(tiles):
            raise ValueError(
                f"span_recorders must align with tiles: "
                f"{len(span_recorders)} recorder(s) for {len(tiles)} tile(s)")

    def run_tile(tile) -> np.ndarray:
        return model(Tensor(images[_normalize_tile(tile)])).data

    def run_tile_scoped(tile) -> Tuple[np.ndarray, EngineStats]:
        with StatsScope() as scope:
            out = run_tile(tile)
        return out, scope.stats

    run_one = run_tile_scoped if collect_stats else run_tile

    def dispatch(active_pool):
        backend_label = getattr(active_pool, "backend", "thread")
        if (backend_label == "process"
                and active_pool.workers > 1 and len(tiles) > 1
                and not threading.current_thread().name.startswith(
                    _WORKER_THREAD_PREFIX)):
            return _infer_tiles_process(model, images, tiles, active_pool,
                                        collect_stats,
                                        span_recorders=span_recorders)

        def run_tile_traced(item):
            tile, recorder = item
            if recorder is None:
                return run_one(tile)
            start = time.perf_counter()
            with _bind_recorder(recorder):
                result = run_one(tile)
            recorder.close_span("tile", time.perf_counter() - start,
                                backend=backend_label)
            return result

        if span_recorders is not None:
            return active_pool.map(run_tile_traced,
                                   list(zip(tiles, span_recorders)))
        return active_pool.map(run_one, tiles)

    if pool is not None:
        return dispatch(pool)
    with WorkerPool(workers, backend=backend) as owned:
        return dispatch(owned)


def infer_tiled(model, images: np.ndarray, *, workers: Optional[int] = None,
                tile_size: int = 1, pool: Optional[WorkerPool] = None,
                backend: Optional[str] = None) -> np.ndarray:
    """Run ``model`` over ``images`` with batch tiles fanned out on workers.

    ``images`` is the usual ``(batch, ...)`` input array; returns the
    concatenated ``(batch, ...)`` output array.  ``pool`` (if given) is
    borrowed and left open; otherwise a pool of ``workers`` on ``backend``
    is created for the call.  ``workers=1`` (or a 1-image batch) is the
    serial baseline — the identical code path minus the workers.
    """
    images = np.asarray(images)
    if images.ndim < 1 or images.shape[0] == 0:
        raise ValueError("images must carry at least one batch entry")
    outputs = infer_tiles(model, images,
                          iter_tiles(images.shape[0], tile_size),
                          workers=workers, pool=pool, backend=backend)
    return np.concatenate(outputs, axis=0)


def run_network_serial(model, images: np.ndarray, *,
                       tile_size: int = 1) -> np.ndarray:
    """The serial reference schedule: same tiling, no pool, one thread."""
    images = np.asarray(images)
    outputs = [model(Tensor(images[tile])).data
               for tile in _tiles(images.shape[0], tile_size)]
    return np.concatenate(outputs, axis=0)


def evaluate_tiled(model, dataset, *, workers: Optional[int] = None,
                   tile_size: int = 8,
                   backend: Optional[str] = None) -> float:
    """Classification accuracy of ``model`` on ``dataset`` via tiled fan-out.

    ``dataset`` follows the ``repro.nn.data`` convention (``images`` /
    ``labels`` arrays).  The serving-shaped entry point: one call, whole
    test set, all workers busy.
    """
    logits = infer_tiled(model, dataset.images, workers=workers,
                         tile_size=tile_size, backend=backend)
    predictions = np.argmax(logits, axis=1)
    return float((predictions == dataset.labels).mean())

"""WorkerPool / parallel_map contract tests."""

import os
import threading

import pytest

from repro.runtime import WorkerPool, parallel_map, resolve_workers
from repro.runtime.executor import WORKERS_ENV


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers() == 7

    def test_cpu_default(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_invalid_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv(WORKERS_ENV, "-2")
        with pytest.raises(ValueError):
            resolve_workers()


class TestWorkerPool:
    def test_ordered_results(self):
        with WorkerPool(4) as pool:
            out = pool.map(lambda i: i * i, range(20))
        assert out == [i * i for i in range(20)]

    def test_serial_pool_is_inline(self):
        thread_names = []
        with WorkerPool(1) as pool:
            pool.map(lambda _: thread_names.append(
                threading.current_thread().name), range(3))
        assert all(name == threading.main_thread().name
                   for name in thread_names)

    def test_exceptions_propagate(self):
        def boom(i):
            if i == 3:
                raise RuntimeError("task 3 failed")
            return i

        with WorkerPool(4) as pool:
            with pytest.raises(RuntimeError, match="task 3 failed"):
                pool.map(boom, range(8))

    def test_reentrant_map_runs_inline(self):
        """A map issued from a worker thread must not deadlock the pool."""
        with WorkerPool(2) as pool:
            def outer(i):
                return sum(pool.map(lambda j: i + j, range(3)))
            assert pool.map(outer, range(4)) == [3, 6, 9, 12]

    def test_single_item_runs_inline(self):
        with WorkerPool(4) as pool:
            assert pool.map(lambda x: threading.current_thread().name,
                            [0]) == [threading.main_thread().name]


class TestParallelMap:
    def test_owned_pool(self):
        assert parallel_map(lambda x: x + 1, range(5), workers=3) == \
            [1, 2, 3, 4, 5]

    def test_borrowed_pool_left_open(self):
        with WorkerPool(2) as pool:
            parallel_map(lambda x: x, range(4), pool=pool)
            assert pool.map(lambda x: x, [1, 2]) == [1, 2]


class TestSweepFanOut:
    def test_dse_sweep_worker_invariant(self):
        from repro.arch.dse import DesignPoint, sweep
        points = [DesignPoint(fragment_size=m) for m in (4, 8, 16)]
        serial = sweep(points)
        pooled = sweep(points, workers=3)
        assert [e.point for e in pooled] == [e.point for e in serial]
        assert [e.gops for e in pooled] == [e.gops for e in serial]

    def test_crossbar_size_sweep_worker_invariant(self):
        from repro.arch.dse import crossbar_size_sweep
        serial = crossbar_size_sweep(options=(64, 128))
        pooled = crossbar_size_sweep(options=(64, 128), workers=2)
        assert [r.analog_error for r in pooled] == \
            [r.analog_error for r in serial]

    def test_die_cache_shared_across_workers(self):
        import numpy as np
        from repro.core import FragmentGeometry, QuantizationSpec
        from repro.core.polarization import compute_signs, project_polarization
        from repro.reram import DeviceSpec, DieCache, ReRAMDevice, build_engine

        rng = np.random.default_rng(0)
        geom = FragmentGeometry((4, 2, 3, 3), 4)
        w = rng.normal(size=(4, 2, 3, 3))
        w = project_polarization(w, geom, compute_signs(w, geom))
        levels = np.clip(np.rint(w * 50), -50, 50).astype(np.int64)
        levels = geom.matrix(levels)
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.2, seed=1)
        cache = DieCache()

        engines = parallel_map(
            lambda _: build_engine(levels, geom, QuantizationSpec(8, 2),
                                   device, die_cache=cache),
            range(6), workers=3)
        assert cache.misses == 1
        assert cache.hits == 5
        first = engines[0].conductance["main"]
        assert all(e.conductance["main"] is first for e in engines[1:])

"""Fragment polarization: signs, projection and feasibility.

The polarization constraint set (paper Sec. III-D2) is

    P_i = { W | the weights in each fragment have the same sign }.

The Euclidean projection onto P_i, given a target sign per fragment, zeroes
every weight whose sign disagrees (zero entries are compatible with either
sign).  The fragment sign itself is chosen by the paper's sum rule (Eq. 2):
positive when the fragment sums to >= 0.  We also provide the L2-optimal rule
— pick the sign whose matching weights carry more energy, which yields the
true nearest point in P_i — as an ablation (``bench_ablation_sign_rule``).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from .fragments import FragmentGeometry

SignRule = Literal["sum", "l2"]


def fragment_signs(stack: np.ndarray, rule: SignRule = "sum") -> np.ndarray:
    """Sign (+1/-1) per fragment of a ``(n_frag, m, cols)`` stack.

    ``sum`` implements paper Eq. 2: ``+`` iff the fragment's weights sum to a
    non-negative value.  ``l2`` picks the sign whose agreeing weights have the
    larger sum of squares (the projection-distance-minimizing choice).
    """
    if stack.ndim != 3:
        raise ValueError("expected a fragment stack of shape (n_frag, m, cols)")
    if rule == "sum":
        totals = stack.sum(axis=1)
        return np.where(totals >= 0.0, 1.0, -1.0)
    if rule == "l2":
        pos_energy = np.where(stack > 0, stack, 0.0).__pow__(2).sum(axis=1)
        neg_energy = np.where(stack < 0, stack, 0.0).__pow__(2).sum(axis=1)
        return np.where(pos_energy >= neg_energy, 1.0, -1.0)
    raise ValueError(f"unknown sign rule {rule!r}")


def project_stack(stack: np.ndarray, signs: np.ndarray) -> np.ndarray:
    """Project a fragment stack onto the polarization set for given signs.

    Weights whose sign disagrees with their fragment's sign become zero;
    agreeing weights are unchanged.  This is the exact Euclidean projection
    for fixed signs.
    """
    if signs.shape != (stack.shape[0], stack.shape[2]):
        raise ValueError(f"signs shape {signs.shape} != (n_frag, cols) = "
                         f"({stack.shape[0]}, {stack.shape[2]})")
    agree = stack * signs[:, None, :] >= 0.0
    return np.where(agree, stack, 0.0)


def project_polarization(weight: np.ndarray, geometry: FragmentGeometry,
                         signs: np.ndarray) -> np.ndarray:
    """Project a full weight tensor onto the polarization set."""
    stack = geometry.fragment_stack(geometry.matrix(weight))
    projected = project_stack(stack, signs)
    return geometry.weight(geometry.from_fragment_stack(projected))


def compute_signs(weight: np.ndarray, geometry: FragmentGeometry,
                  rule: SignRule = "sum") -> np.ndarray:
    """Fragment signs ``(n_frag, cols)`` of a weight tensor."""
    return fragment_signs(geometry.fragment_stack(geometry.matrix(weight)), rule)


def polarization_violation(weight: np.ndarray, geometry: FragmentGeometry) -> float:
    """Fraction of nonzero weights that break same-sign-per-fragment.

    Signs are inferred from the weights themselves (sum rule), so a feasible
    tensor returns exactly 0.0 regardless of which rule produced it.
    """
    stack = geometry.fragment_stack(geometry.matrix(weight))
    signs = fragment_signs(stack, "sum")
    disagree = (stack * signs[:, None, :]) < 0.0
    nonzero = stack != 0.0
    total = nonzero.sum()
    if total == 0:
        return 0.0
    return float((disagree & nonzero).sum() / total)


def is_polarized(weight: np.ndarray, geometry: FragmentGeometry) -> bool:
    """True when every fragment holds weights of a single sign."""
    return polarization_violation(weight, geometry) == 0.0


def sign_flip_fraction(old_signs: np.ndarray, new_signs: np.ndarray) -> float:
    """Fraction of fragments whose target sign changed between refreshes.

    The paper re-estimates fragment signs every M epochs (Sec. III-B); this
    metric tracks how quickly the targets settle.
    """
    if old_signs.shape != new_signs.shape:
        raise ValueError("sign arrays must have the same shape")
    return float((old_signs != new_signs).mean())

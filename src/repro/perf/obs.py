"""Observability-overhead benchmark: what the instruments cost.

PR 9 wires metrics, tracing and usage metering into the serving path
*on by default*, under the promise that observability is read-only with
respect to numerics and cheap with respect to time.  The numerics half
is proven by the differential suites (``tests/obs/``); this module
measures the time half: the same open-loop Poisson point
(:func:`repro.perf.serving.drive_poisson`, same seed, same arrivals,
same die cache) driven twice — once with the default armed
:class:`~repro.obs.Observability` bundle, once with
:meth:`~repro.obs.Observability.disabled` — interleaved over ``reps``
repetitions, compared by the **min estimator** (the minimum across reps:
the run least disturbed by the host, the right estimator for
is-the-code-slower questions on a noisy container).

The headline ``overhead_pct`` compares **mean dispatch-path service
time per request** (``busy_s / completed``), not end-to-end latency:
the instruments live on the submit and dispatch paths, and open-loop
latency percentiles are dominated by queue dynamics that swing tens of
percent run to run on a loaded host — both modes' latency percentiles
still ride along in the record as context.

One ``"obs"``-kind record per rate lands in ``BENCH_engine.json``
(merged alongside the engine and serving records, preserved by both
recorders), carrying both modes' latency/throughput and the headline
``overhead_pct`` against the :data:`OBS_OVERHEAD_BUDGET_PCT` budget.
Both modes assert bit-identity against the serial forward inside
``drive_poisson``, and the two modes' outputs are additionally compared
byte-for-byte here — the record never exists without the proof.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

OBS_RECORD_KIND = "obs"

#: the acceptance budget: armed-vs-disabled mean-service-time overhead (%)
OBS_OVERHEAD_BUDGET_PCT = 5.0


def obs_record_name(rate_rps: float) -> str:
    return f"serving_obs_overhead_r{rate_rps:g}"


def run_obs_point(rate_rps: float, requests: int = 32, *, reps: int = 3,
                  max_batch: int = 8, max_wait_ms: float = 2.0,
                  workers: Optional[int] = None, seed: int = 0,
                  activation_bits: int = 12, die_cache=None) -> Dict:
    """Measure one armed-vs-disabled overhead point and return its record.

    Runs ``reps`` interleaved (on, off, on, off, ...) repetitions of the
    identical Poisson point so slow host drift hits both modes equally,
    reduces each mode by the min estimator, and packages the comparison
    as one ``"obs"`` record.  Raises if the armed and disabled outputs
    of the paired rep differ by a single byte.
    """
    from ..obs import Observability
    from ..reram import DieCache
    from .serving import drive_poisson

    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    die_cache = die_cache if die_cache is not None else DieCache()

    def one(obs) -> Dict:
        return drive_poisson(rate_rps, requests, max_batch=max_batch,
                             max_wait_ms=max_wait_ms, workers=workers,
                             seed=seed, activation_bits=activation_bits,
                             die_cache=die_cache, obs=obs)

    # unrecorded warm-up: the first drive pays die programming (the
    # shared cache is cold) and every first-touch cost of the process;
    # neither belongs to either mode
    one(Observability.disabled())

    runs = {"on": [], "off": []}
    for rep in range(reps):
        # alternate which mode goes first so drift and residual warm-up
        # effects hit both modes symmetrically
        order = ("on", "off") if rep % 2 == 0 else ("off", "on")
        for mode in order:
            runs[mode].append(one(Observability() if mode == "on"
                                  else Observability.disabled()))

    # the instruments must not have touched a single output byte
    for on_result, off_result in zip(runs["on"][0]["results"],
                                     runs["off"][0]["results"]):
        if not np.array_equal(on_result.output, off_result.output):
            raise AssertionError(
                "armed vs disabled observability produced different "
                "outputs — instrumentation touched the numerics")

    def best(mode: str, key: str) -> float:
        return min(driven["snapshot"][key] for driven in runs[mode])

    def peak_throughput(mode: str) -> float:
        return max(requests / driven["open_loop_s"]
                   for driven in runs[mode])

    def best_service(mode: str) -> float:
        # mean dispatch-path service time per completed request:
        # busy_s / completed.  The headline estimator — the instruments
        # live on the submit and dispatch paths, and unlike end-to-end
        # latency this is not amplified (or drowned) by open-loop queue
        # dynamics, which swing tens of percent run to run on a busy
        # host while service time stays put.
        return min(snap["occupancy"] * snap["elapsed_s"]
                   / snap["requests_completed"]
                   for snap in (driven["snapshot"]
                                for driven in runs[mode]))

    service_on, service_off = best_service("on"), best_service("off")
    overhead_pct = ((service_on - service_off) / service_off * 100.0
                    if service_off > 0 else 0.0)
    return {
        "name": obs_record_name(rate_rps),
        "kind": OBS_RECORD_KIND,
        "results": {
            "offered_rate_rps": rate_rps,
            "service_mean_on_s": service_on,
            "service_mean_off_s": service_off,
            "latency_p50_on_s": best("on", "latency_p50_s"),
            "latency_p50_off_s": best("off", "latency_p50_s"),
            "latency_p95_on_s": best("on", "latency_p95_s"),
            "latency_p95_off_s": best("off", "latency_p95_s"),
            "throughput_on_rps": peak_throughput("on"),
            "throughput_off_rps": peak_throughput("off"),
            "overhead_pct": overhead_pct,
        },
        "meta": {
            "requests": requests,
            "reps": reps,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "workers": runs["on"][0]["workers"],
            "seed": seed,
            "activation_bits": activation_bits,
            "estimator": "min-over-reps",
            "budget_pct": OBS_OVERHEAD_BUDGET_PCT,
            "within_budget": overhead_pct <= OBS_OVERHEAD_BUDGET_PCT,
            "bit_identical_on_vs_off": True,
        },
    }

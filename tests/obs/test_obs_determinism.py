"""Observability is read-only w.r.t. numerics: the differential matrix.

For every backend in {serial, thread, process} x {ideal, read-noise},
the same images served three ways —

* a server with the default-armed observability bundle (metrics +
  tracing + usage metering) *and* the opt-in engine profiler armed,
* a server with :meth:`~repro.obs.Observability.disabled`,
* the serial single-image forward (the repo-wide contract reference) —

produce **byte-identical** outputs, and identical per-request
``EngineStats`` receipts.  This is the PR's acceptance proof that
instruments time and count but never touch an operand: the hard cell is
read noise, whose substreams are keyed on data (input digest, plane,
bit, fragment), never on timing or identity — so a span bracket or a
histogram observe cannot shift a single sample.
"""

import numpy as np
import pytest

from repro.obs import Observability
from repro.perf.suite import _post_relu_network
from repro.reram import (ADCSpec, DeviceSpec, DieCache, ReRAMDevice,
                         paper_adc_bits)
from repro.reram.nonideal import ReadNoise
from repro.reram.nonideal_engine import NonidealEngine
from repro.runtime import (WorkerPool, run_network_serial,
                           shared_memory_available)
from repro.serving import InferenceServer

pytestmark = pytest.mark.skipif(
    not shared_memory_available()[0],
    reason=f"shared memory unavailable: {shared_memory_available()[1]}")

BACKENDS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def case():
    model, config, images = _post_relu_network()
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    # one die cache across every cell: programming is deterministic, so
    # shared dies are invisible to the bits and save most of the setup
    return model, config, images, device, adc, DieCache(maxsize=None)


@pytest.fixture(scope="module")
def pools():
    opened = {backend: WorkerPool(2, backend=backend)
              for backend in BACKENDS}
    yield opened
    for pool in opened.values():
        pool.close()


def make_server(case, pool, *, noise, obs):
    model, config, images, device, adc, die_cache = case
    kwargs = {}
    if noise:
        spec = DeviceSpec()
        kwargs.update(
            engine_cls=NonidealEngine,
            read_noise=ReadNoise.for_fragment(
                config.fragment_size, spec.g_max, spec.read_voltage,
                relative_sigma=0.05, seed=3))
    return InferenceServer.from_model(
        model, config, device, adc=adc, activation_bits=12,
        die_cache=die_cache, pool=pool, max_batch=4, max_wait_s=0.02,
        obs=obs, **kwargs)


@pytest.fixture(scope="module")
def baselines(case):
    """Serial single-image forwards per noise variant (the contract)."""
    model, config, images, device, adc, die_cache = case
    truth = {}
    for noise in (False, True):
        server = make_server(case, None, noise=noise,
                             obs=Observability.disabled())
        with server:
            truth[noise] = run_network_serial(server.model, images,
                                              tile_size=1)
    return truth


@pytest.mark.parametrize("noise", (False, True), ids=("ideal", "noise"))
@pytest.mark.parametrize("backend", BACKENDS)
def test_armed_equals_disabled_equals_serial(case, pools, baselines,
                                             backend, noise):
    images = case[2]
    outputs, receipts = {}, {}
    for mode, obs in (("armed", Observability()),
                      ("off", Observability.disabled())):
        with make_server(case, pools[backend], noise=noise,
                         obs=obs) as server:
            if mode == "armed":
                server.arm_profiling()   # the deepest hooks, on
            results = server.submit_many(images)
            outputs[mode] = [r.output for r in results]
            receipts[mode] = [r.stats.engine_stats for r in results]
            if mode == "armed":
                # the instruments did observe the traffic...
                assert server.usage_snapshot()["totals"]["requests"] \
                    == len(images)
    label = f"{backend} noise={noise}"
    for i, reference in enumerate(baselines[noise]):
        # ...while every output stayed byte-identical, armed or not
        np.testing.assert_array_equal(
            outputs["armed"][i], reference,
            err_msg=f"{label}: armed diverged from serial at {i}")
        np.testing.assert_array_equal(
            outputs["off"][i], reference,
            err_msg=f"{label}: disabled diverged from serial at {i}")
    assert receipts["armed"] == receipts["off"], \
        f"{label}: per-request EngineStats receipts diverged"


def test_tracing_off_vs_on_single_server_path(case):
    """The cheapest regression guard: one server, tracing toggled via the
    ring capacity, identical bits (exercises the spans=None dispatch
    branch against the recorder-armed one)."""
    images = case[2][:3]
    with make_server(case, None, noise=True,
                     obs=Observability(trace_ring=0)) as quiet:
        untraced = [r.output for r in quiet.submit_many(images)]
    with make_server(case, None, noise=True,
                     obs=Observability()) as loud:
        traced = [r.output for r in loud.submit_many(images)]
    for a, b in zip(untraced, traced):
        np.testing.assert_array_equal(a, b)

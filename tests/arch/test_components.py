"""Component catalog and ADC scaling-law tests (Table III)."""

import pytest

from repro.arch import (ADCScalingModel, default_adc_model, forms_adc_spec,
                        forms_mcu_components, isaac_adc_spec,
                        isaac_mcu_components, table3_rows)
from repro.arch.components import (FORMS_ADC_POINT, ISAAC_ADC_POINT,
                                   bom_area_mm2, bom_power_mw,
                                   forms_adc_frequency)


class TestADCScaling:
    def test_calibration_reproduces_anchor_points(self):
        model = default_adc_model()
        for bits, freq, power, area in (ISAAC_ADC_POINT, FORMS_ADC_POINT):
            assert model.power_mw(bits, freq) == pytest.approx(power, rel=1e-9)
            assert model.area_mm2(bits) == pytest.approx(area, rel=1e-9)

    def test_coefficients_positive(self):
        model = default_adc_model()
        assert model.power_linear > 0 and model.power_expo > 0
        assert model.area_linear > 0 and model.area_expo > 0

    def test_monotone_in_bits(self):
        model = default_adc_model()
        powers = [model.power_mw(b, 1e9) for b in range(2, 10)]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_exponential_dominates_at_high_bits(self):
        model = default_adc_model()
        # doubling resolution from 8 to 9 bits costs much more than 4 to 5
        assert (model.power_mw(9, 1e9) - model.power_mw(8, 1e9)
                > 2 * (model.power_mw(5, 1e9) - model.power_mw(4, 1e9)))

    def test_power_linear_in_frequency(self):
        model = default_adc_model()
        assert model.power_mw(6, 2e9) == pytest.approx(2 * model.power_mw(6, 1e9))

    def test_calibration_same_bits_rejected(self):
        with pytest.raises(ValueError):
            ADCScalingModel.calibrate((4, 1e9, 1.0, 1.0), (4, 2e9, 2.0, 2.0))

    def test_sar_frequency_scaling(self):
        assert forms_adc_frequency(4) == pytest.approx(2.1e9)
        assert forms_adc_frequency(8) == pytest.approx(1.05e9)
        with pytest.raises(ValueError):
            forms_adc_frequency(0)


class TestPublishedSpecs:
    def test_isaac_adc_row(self):
        spec = isaac_adc_spec()
        assert spec.power_mw == 16.0
        assert spec.area_mm2 == 0.0096
        assert spec.param("resolution_bits") == 8

    def test_forms_adc_row_fragment8(self):
        spec = forms_adc_spec(8)
        assert spec.power_mw == 15.2
        assert spec.area_mm2 == 0.0091
        assert spec.count == 32

    def test_forms_adc_derived_sizes(self):
        smaller = forms_adc_spec(4)   # 3-bit
        larger = forms_adc_spec(16)   # 5-bit
        assert smaller.param("resolution_bits") == 3
        assert larger.param("resolution_bits") == 5
        assert smaller.area_mm2 < forms_adc_spec(8).area_mm2 < larger.area_mm2

    def test_forms_bom_contains_skip_and_sign(self):
        names = {c.name for c in forms_mcu_components(8)}
        assert "zero-skip logic" in names and "sign indicator" in names

    def test_isaac_bom_lacks_them(self):
        names = {c.name for c in isaac_mcu_components()}
        assert "zero-skip logic" not in names and "sign indicator" not in names

    def test_mcu_power_totals_match_table4(self):
        # Table IV: 12 FORMS MCUs = 280.05 mW, 12 ISAAC MCUs = 288.96 mW.
        assert 12 * bom_power_mw(forms_mcu_components(8)) == pytest.approx(280.05, rel=1e-3)
        assert 12 * bom_power_mw(isaac_mcu_components()) == pytest.approx(288.96, rel=1e-3)

    def test_mcu_area_totals_match_table4(self):
        assert 12 * bom_area_mm2(forms_mcu_components(8)) == pytest.approx(0.152, rel=1e-2)
        assert 12 * bom_area_mm2(isaac_mcu_components()) == pytest.approx(0.158, rel=1e-2)

    def test_unit_properties(self):
        spec = isaac_adc_spec()
        assert spec.unit_power_mw == pytest.approx(2.0)
        assert spec.param("missing", 42) == 42


class TestTable3Rows:
    def test_row_structure(self):
        rows = table3_rows(8)
        names = [r["component"] for r in rows]
        assert names[0] == "ADC"
        sign_row = [r for r in rows if r["component"] == "sign indicator"][0]
        assert sign_row["isaac_power_mw"] is None
        assert sign_row["forms_power_mw"] == pytest.approx(0.012)

"""Event-driven pipeline simulator tests (cross-validated vs the analytic model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.event_pipeline import (EventPipeline, MultiLayerPipeline,
                                       PipelineStats, StageSpec,
                                       layer_stage_spec)
from repro.arch.pipeline import PipelineModel


class TestStageSpec:
    def test_paper_stage_counts(self):
        # 22 stages at 16 feed cycles, 26 with pooling (Fig. 12).
        assert layer_stage_spec(pooling=False).total_stages(16) == 22
        assert layer_stage_spec(pooling=True).total_stages(16) == 26

    def test_validation(self):
        with pytest.raises(ValueError):
            StageSpec(front_stages=-1)


class TestSingleLayer:
    def test_first_item_latency_is_stage_count(self):
        spec = layer_stage_spec()
        sim = EventPipeline(spec, [16])
        stats = sim.run()
        assert stats.completion_times[0] == spec.total_stages(16) == 22

    def test_constant_feed_matches_analytic_interval(self):
        # Steady-state initiation interval == feed cycles, exactly as the
        # analytic PipelineModel computes it.
        spec = layer_stage_spec()
        analytic = PipelineModel(input_bits=16)
        sim = EventPipeline(spec, [16] * 64)
        stats = sim.run()
        intervals = np.diff(stats.completion_times)
        assert (intervals == 16).all()
        expected = analytic.initiation_interval_s() / analytic.cycle_time_s
        assert intervals[0] == pytest.approx(expected)

    def test_skipping_reduces_makespan(self):
        spec = layer_stage_spec()
        full = EventPipeline(spec, [16] * 32).run()
        skipped = EventPipeline(spec, [7] * 32).run()
        assert skipped.makespan < full.makespan

    def test_variable_feed_throughput_is_mean_eic(self):
        rng = np.random.default_rng(0)
        eic = rng.integers(4, 14, size=400)
        stats = EventPipeline(layer_stage_spec(), eic).run()
        assert stats.steady_interval == pytest.approx(eic.mean(), rel=0.05)

    def test_release_times_gate_arrivals(self):
        spec = StageSpec(front_stages=1, back_stages=1)
        stats = EventPipeline(spec, [2, 2]).run(release_times=[0.0, 100.0])
        assert stats.completion_times[1] == 100.0 + 1 + 2 + 1
        assert stats.stall_cycles == 0.0

    def test_stall_accounting(self):
        # Second item arrives while the first still feeds -> stalls.
        spec = StageSpec(front_stages=0, back_stages=0)
        stats = EventPipeline(spec, [10, 10]).run()
        assert stats.stall_cycles == 10.0

    def test_utilization_saturates_under_backlog(self):
        stats = EventPipeline(StageSpec(0, 0), [8] * 100).run()
        assert stats.feed_utilization == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EventPipeline(StageSpec(), [0, 4])
        with pytest.raises(ValueError):
            EventPipeline(StageSpec(), [[4, 4]])
        with pytest.raises(ValueError):
            EventPipeline(StageSpec(), [4, 4]).run(release_times=[0.0])

    @given(st.lists(st.integers(min_value=1, max_value=16), min_size=1,
                    max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_makespan_bounds(self, eic):
        # Makespan is at least the serial feed demand and at most the fully
        # serialized (no-overlap) execution.
        spec = layer_stage_spec()
        stats = EventPipeline(spec, eic).run()
        assert stats.makespan >= sum(eic)
        assert stats.makespan <= sum(spec.total_stages(e) for e in eic)


class TestMultiLayer:
    def test_single_layer_chain_matches_event_pipeline(self):
        spec = layer_stage_spec()
        eic = [9, 12, 5, 16, 7]
        solo = EventPipeline(spec, eic).run()
        (chained,) = MultiLayerPipeline([(spec, eic)]).run()
        np.testing.assert_allclose(chained.completion_times,
                                   solo.completion_times)

    def test_bottleneck_sets_steady_interval(self):
        spec = layer_stage_spec()
        fast = [4] * 200
        slow = [12] * 200
        stats = MultiLayerPipeline([(spec, fast), (spec, slow), (spec, fast)],
                                   buffer_capacity=64).run()
        assert stats[-1].steady_interval == pytest.approx(12.0, rel=0.05)

    def test_bottleneck_layer_index(self):
        spec = layer_stage_spec()
        sim = MultiLayerPipeline([(spec, [4] * 8), (spec, [15] * 8)])
        assert sim.bottleneck_layer() == 1

    def test_back_pressure_slows_producer(self):
        # A fast first layer behind a tiny buffer is held back by the slow
        # second layer.
        spec = StageSpec(front_stages=0, back_stages=0)
        fast, slow = [2] * 64, [10] * 64
        tight = MultiLayerPipeline([(spec, fast), (spec, slow)],
                                   buffer_capacity=1).run()
        roomy = MultiLayerPipeline([(spec, fast), (spec, slow)],
                                   buffer_capacity=64).run()
        # A single credit serializes the producer's feed with the consumer's
        # (blocking-before-service): the initiation interval becomes
        # fast + slow = 12 instead of the bottleneck's 10.
        assert tight[-1].steady_interval == pytest.approx(12.0, rel=0.05)
        assert roomy[-1].steady_interval == pytest.approx(10.0, rel=0.05)
        # The producer's completions are spread out by back-pressure.
        assert tight[0].completion_times[-1] > roomy[0].completion_times[-1]
        assert tight[0].stall_cycles > roomy[0].stall_cycles

    def test_two_credits_restore_overlap(self):
        # Double buffering is enough to hide the credit round-trip here.
        spec = StageSpec(front_stages=0, back_stages=0)
        fast, slow = [2] * 64, [10] * 64
        double = MultiLayerPipeline([(spec, fast), (spec, slow)],
                                    buffer_capacity=2).run()
        assert double[-1].steady_interval == pytest.approx(10.0, rel=0.05)

    def test_larger_buffers_never_hurt(self):
        rng = np.random.default_rng(1)
        spec = layer_stage_spec()
        feeds = [rng.integers(2, 16, size=80) for _ in range(3)]
        layers = [(spec, f) for f in feeds]
        small = MultiLayerPipeline(layers, buffer_capacity=1).run()
        big = MultiLayerPipeline(layers, buffer_capacity=128).run()
        assert big[-1].makespan <= small[-1].makespan + 1e-9

    def test_item_ordering_preserved(self):
        rng = np.random.default_rng(2)
        spec = layer_stage_spec()
        layers = [(spec, rng.integers(1, 16, size=50)) for _ in range(2)]
        stats = MultiLayerPipeline(layers, buffer_capacity=4).run()
        for layer_stats in stats:
            assert (np.diff(layer_stats.completion_times) > 0).all()

    def test_validation(self):
        spec = layer_stage_spec()
        with pytest.raises(ValueError):
            MultiLayerPipeline([])
        with pytest.raises(ValueError):
            MultiLayerPipeline([(spec, [4])], buffer_capacity=0)
        with pytest.raises(ValueError):
            MultiLayerPipeline([(spec, [4, 4]), (spec, [4])])
        with pytest.raises(ValueError):
            MultiLayerPipeline([(spec, [0, 4])])

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=10000))
    @settings(max_examples=20, deadline=None)
    def test_throughput_bounded_by_bottleneck(self, capacity, seed):
        rng = np.random.default_rng(seed)
        spec = layer_stage_spec()
        feeds = [rng.integers(1, 16, size=60) for _ in range(3)]
        stats = MultiLayerPipeline([(spec, f) for f in feeds],
                                   buffer_capacity=capacity).run()
        bottleneck_demand = max(f.sum() for f in feeds)
        assert stats[-1].makespan >= bottleneck_demand

"""Online die-fault machinery: injection, checksum detection, restoration.

The contract under test: a stuck-at fault flipped onto a live die is (a)
visible to every bit-exact compute tier (nothing but the guard stands
between a stuck cell and a wrong answer), (b) detected by the sentinel
checksums before the MVM's results escape, (c) diagnosed and planned at
cell granularity, and (d) reversible — ``DieGuard.restore`` brings the
engine back bit-identical to its pre-fault self, through the shared
``DieCache`` (a cache hit returning the original conductance array) or
from the retained healthy planes.  Scenarios replay deterministically
from one seed.
"""

import numpy as np
import pytest

from repro.core import FragmentGeometry, QuantizationSpec
from repro.core.polarization import compute_signs, project_polarization
from repro.reram import (DeviceSpec, DieCache, ReRAMDevice, build_engine)
from repro.reram.faults import (DieFaultDetected, DieGuard, FaultEvent,
                                FaultInjector, fragment_sensitivity,
                                rank_engines_by_sensitivity)

QSPEC = QuantizationSpec(8, 2)


def polarized_levels(shape=(4, 2, 3, 3), m=4, seed=0, qmax=127):
    rng = np.random.default_rng(seed)
    geom = FragmentGeometry(shape, m)
    w = rng.normal(size=shape)
    signs = compute_signs(w, geom)
    w = project_polarization(w, geom, signs)
    levels = np.clip(np.rint(w * qmax / (np.abs(w).max() + 1e-9)),
                     -qmax, qmax).astype(np.int64)
    return geom.matrix(levels), geom


def make_engine(seed=0, die_cache=None, scheme="forms"):
    levels, geom = polarized_levels(seed=seed)
    device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
    return build_engine(levels, geom, QSPEC, device, scheme=scheme,
                        activation_bits=12, die_cache=die_cache), geom


def some_input(geom, seed=1, cols=5):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2 ** 12, size=(geom.rows, cols))


class TestDetection:
    def test_clean_engine_never_trips(self):
        engine, geom = make_engine()
        engine.guard = DieGuard(engine)
        x = some_input(geom)
        healthy = engine.matvec_int(x)
        np.testing.assert_array_equal(healthy,
                                      engine.matvec_int_reference(x))
        assert engine.guard.checks >= 1
        assert engine.guard.faults_detected == 0

    def test_flip_detected_before_results_escape(self):
        engine, geom = make_engine()
        guard = DieGuard(engine)
        engine.guard = guard
        log = FaultInjector(seed=7).flip_die(engine, sa0_rate=0.1,
                                             sa1_rate=0.05)
        assert log["stuck_cells_total"] > 0
        with pytest.raises(DieFaultDetected) as info:
            engine.matvec_int(some_input(geom))
        assert "main" in info.value.planes
        assert len(info.value.fragments["main"]) > 0
        assert guard.faults_detected == 1

    def test_dense_path_also_guarded(self):
        engine, geom = make_engine()
        engine.guard = DieGuard(engine)
        FaultInjector(seed=7).flip_die(engine, sa0_rate=0.1, sa1_rate=0.05)
        with pytest.raises(DieFaultDetected):
            engine.matvec_int_dense(some_input(geom))

    @pytest.mark.parametrize("scheme", ["forms", "isaac_offset", "dual"])
    def test_fault_corrupts_every_tier_unguarded(self, scheme):
        """Without a guard, the fault silently changes the numerics on the
        fused tier AND the cycle-by-cycle oracle — detection really is the
        only line of defense."""
        engine, geom = make_engine(scheme=scheme)
        x = some_input(geom)
        healthy_fused = engine.matvec_int(x)
        healthy_ref = engine.matvec_int_reference(x)
        FaultInjector(seed=3).flip_die(engine, sa0_rate=0.2, sa1_rate=0.1)
        assert not np.array_equal(engine.matvec_int(x), healthy_fused)
        assert not np.array_equal(engine.matvec_int_reference(x),
                                  healthy_ref)

    def test_deterministic_replay(self):
        """Same seed, same engine build -> identical stuck cells and
        identical faulty outputs."""
        outs = []
        for _ in range(2):
            engine, geom = make_engine()
            log = FaultInjector(seed=11).flip_die(engine, sa0_rate=0.1,
                                                  sa1_rate=0.05)
            outs.append((log["stuck_cells_total"],
                         engine.matvec_int(some_input(geom))))
        assert outs[0][0] == outs[1][0]
        np.testing.assert_array_equal(outs[0][1], outs[1][1])


class TestCoverage:
    def test_partial_coverage_audits_hot_fragments(self):
        engine, _ = make_engine()
        n_frag = engine.mapped.code_planes["main"].shape[0]
        guard = DieGuard(engine, coverage=0.25, full_audit_every=4)
        assert 1 <= len(guard.audit_fragments) < n_frag
        weight = fragment_sensitivity(engine)
        audited = set(guard.audit_fragments.tolist())
        # the audited set is the sensitivity-heaviest fragments
        for frag in audited:
            assert all(weight[frag] >= weight[other] or other in audited
                       for other in range(n_frag))

    def test_periodic_full_audit_bounds_detection_latency(self):
        """A fault outside the hot set escapes per-MVM audits but is caught
        by the Nth-check full sweep."""
        engine, geom = make_engine()
        guard = DieGuard(engine, coverage=0.01, full_audit_every=3)
        engine.guard = guard
        cold = [f for f in range(engine.mapped.code_planes["main"].shape[0])
                if f not in set(guard.audit_fragments.tolist())]
        assert cold, "coverage=0.01 must leave unaudited fragments"
        # corrupt exactly one cold fragment (rebind, never mutate in place)
        codes = engine.mapped.code_planes["main"].copy()
        codes[cold[0]] = 0
        engine.swap_planes({"main": codes},
                           {"main": engine.device.program(codes)})
        x = some_input(geom)
        engine.matvec_int(x)            # check 1: hot set only -> passes
        engine.matvec_int(x)            # check 2: passes
        with pytest.raises(DieFaultDetected):   # check 3: full sweep
            engine.matvec_int(x)

    def test_coverage_validation(self):
        engine, _ = make_engine()
        with pytest.raises(ValueError):
            DieGuard(engine, coverage=0.0)
        with pytest.raises(ValueError):
            DieGuard(engine, coverage=1.5)
        with pytest.raises(ValueError):
            DieGuard(engine, full_audit_every=0)


class TestDiagnosisAndRecovery:
    def test_diagnose_finds_only_changed_cells(self):
        engine, geom = make_engine()
        guard = DieGuard(engine)
        engine.guard = guard
        FaultInjector(seed=5).flip_die(engine, sa0_rate=0.1, sa1_rate=0.05)
        masks = guard.diagnose(engine)
        changed = (engine.mapped.code_planes["main"]
                   != guard.reference["main"])
        np.testing.assert_array_equal(masks["main"] != 0, changed)

    def test_plan_remap_reduces_projected_impact(self):
        engine, _ = make_engine()
        guard = DieGuard(engine)
        FaultInjector(seed=5).flip_die(engine, sa0_rate=0.1, sa1_rate=0.05)
        plans = guard.plan_remap(engine)
        assert "main" in plans
        plan = plans["main"]
        assert plan.baseline_impact >= plan.planned_impact >= 0.0

    def test_plan_remap_skips_untouched_planes(self):
        engine, _ = make_engine()
        guard = DieGuard(engine)
        assert guard.plan_remap(engine) == {}

    @pytest.mark.parametrize("use_cache", [True, False])
    def test_restore_is_bit_identical(self, use_cache):
        cache = DieCache() if use_cache else None
        engine, geom = make_engine(die_cache=cache)
        guard = DieGuard(engine)
        engine.guard = guard
        x = some_input(geom)
        healthy = engine.matvec_int(x)
        healthy_conductance = engine.conductance["main"]
        FaultInjector(seed=9).flip_die(engine, sa0_rate=0.1, sa1_rate=0.05)
        info = guard.restore(engine, die_cache=cache)
        assert info["via_die_cache"] is use_cache
        if use_cache:
            # the healthy codes are still keyed: restoring is a cache hit
            # returning the very conductance array the engine started with
            assert info["cache_hits"] == 1
        assert engine.conductance["main"] is healthy_conductance
        np.testing.assert_array_equal(engine.matvec_int(x), healthy)
        np.testing.assert_array_equal(engine.matvec_int_reference(x),
                                      healthy)

    def test_swap_planes_rejects_unknown_plane(self):
        engine, _ = make_engine()
        codes = engine.mapped.code_planes["main"]
        with pytest.raises(KeyError):
            engine.swap_planes({"nope": codes},
                               {"nope": engine.conductance["main"]})


class TestSensitivityRanking:
    def test_fragment_sensitivity_shape_and_positivity(self):
        engine, _ = make_engine()
        weight = fragment_sensitivity(engine)
        assert weight.shape == (engine.mapped.code_planes["main"].shape[0],)
        assert (weight >= 0).all() and weight.sum() > 0

    def test_rank_engines_heaviest_first_deterministic(self):
        heavy, _ = make_engine(seed=0)
        light, _ = make_engine(seed=1)
        engines = {"a": heavy, "b": light}
        order = rank_engines_by_sensitivity(engines)
        totals = {name: fragment_sensitivity(engine).sum()
                  for name, engine in engines.items()}
        assert order == sorted(engines,
                               key=lambda name: (-totals[name], name))
        assert order == rank_engines_by_sensitivity(engines)


class TestFaultEventValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultEvent("meltdown")

    def test_bad_rates_and_delay(self):
        with pytest.raises(ValueError):
            FaultEvent("stuck_at", sa0_rate=1.5)
        with pytest.raises(ValueError):
            FaultEvent("stuck_at", at_dispatch=-1)
        with pytest.raises(ValueError):
            FaultEvent("delay", delay_s=-0.1)

    def test_as_dict_round_trip(self):
        event = FaultEvent("stuck_at", at_dispatch=3, model="m",
                           sa0_rate=0.2)
        d = event.as_dict()
        assert d["kind"] == "stuck_at" and d["at_dispatch"] == 3
        assert FaultEvent(**d) == event

"""Variation-aware fine-tuning tests."""

import numpy as np
import pytest

from repro.core import (ADMMConfig, CrossbarShape, FORMSConfig, FORMSPipeline,
                        RobustTuneConfig, is_polarized, robust_finetune)
from repro.nn import (Adam, Conv2d, Flatten, Linear, ReLU, Sequential,
                      compressible_layers, evaluate, fit, set_init_seed)
from repro.nn.data import make_synthetic
from repro.reram.variation import clone_model, variation_study


@pytest.fixture(scope="module")
def optimized_small():
    train, test = make_synthetic("r", 4, 1, 8, 160, 64, seed=41)
    set_init_seed(41)
    model = Sequential(Conv2d(1, 8, 3, padding=1), ReLU(),
                       Flatten(), Linear(8 * 8 * 8, 4))
    fit(model, train, Adam(model.parameters(), 1e-3), epochs=4, batch_size=16)
    admm = ADMMConfig(iterations=1, epochs_per_iteration=1, retrain_epochs=1)
    config = FORMSConfig(fragment_size=4, crossbar=CrossbarShape(16, 16),
                         filter_keep=0.75, shape_keep=0.75, do_quantize=False,
                         prune_admm=admm, polarize_admm=admm, quantize_admm=admm)
    FORMSPipeline(config).optimize(model, train, test, seed=41)
    return model, config, train, test


class TestRobustTuneConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RobustTuneConfig(sigma=-1.0)
        with pytest.raises(ValueError):
            RobustTuneConfig(epochs=-1)


class TestRobustFinetune:
    def test_preserves_structure_and_signs(self, optimized_small):
        from repro.core.pruning import structured_mask

        model, config, train, test = optimized_small
        tuned = clone_model(model)
        masks_before = {name: structured_mask(layer.weight.data,
                                              config.geometry_for(layer))
                        for name, layer in compressible_layers(tuned)}
        robust_finetune(tuned, config, train,
                        RobustTuneConfig(sigma=0.15, epochs=2), seed=1)
        for name, layer in compressible_layers(tuned):
            geometry = config.geometry_for(layer)
            # fragments stay single-signed ...
            assert is_polarized(layer.weight.data.astype(np.float64), geometry)
            # ... and the pruned rows/columns stay dead (weights zeroed only
            # by polarization may legally regrow with the fragment's sign).
            outside = ~masks_before[name]
            assert (layer.weight.data[outside] == 0.0).all(), \
                f"structurally pruned weights regrew in {name}"

    def test_zero_epochs_noop(self, optimized_small):
        model, config, train, _ = optimized_small
        tuned = clone_model(model)
        before = tuned.parameters()[0].data.copy()
        robust_finetune(tuned, config, train, RobustTuneConfig(epochs=0))
        np.testing.assert_array_equal(tuned.parameters()[0].data, before)

    def test_keeps_clean_accuracy_usable(self, optimized_small):
        model, config, train, test = optimized_small
        tuned = robust_finetune(clone_model(model), config, train,
                                RobustTuneConfig(sigma=0.15, epochs=2), seed=2)
        baseline = evaluate(model, test).accuracy
        tuned_acc = evaluate(tuned, test).accuracy
        assert tuned_acc > baseline - 0.15

    def test_improves_variation_robustness(self, optimized_small):
        """The headline: noise-injected fine-tuning reduces the mean accuracy
        degradation under deployment-time device variation."""
        model, config, train, test = optimized_small
        tuned = robust_finetune(clone_model(model), config, train,
                                RobustTuneConfig(sigma=0.25, epochs=3), seed=3)
        before = variation_study(model, config, test, sigma=0.25, runs=6,
                                 scheme="forms", seed=9)
        after = variation_study(tuned, config, test, sigma=0.25, runs=6,
                                scheme="forms", seed=9)
        # Tuned model's noisy-die accuracy should not be worse, with a small
        # tolerance for finite-die sampling noise.
        assert after.mean_accuracy >= before.mean_accuracy - 0.02

"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.nn import (DataLoader, Dataset, load_dataset, make_synthetic,
                      synthetic_cifar10, synthetic_cifar100,
                      synthetic_imagenet, synthetic_mnist)


class TestMakeSynthetic:
    def test_deterministic(self):
        a, _ = make_synthetic("x", 4, 3, 8, 32, 16, seed=5)
        b, _ = make_synthetic("x", 4, 3, 8, 32, 16, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a, _ = make_synthetic("x", 4, 3, 8, 32, 16, seed=5)
        b, _ = make_synthetic("x", 4, 3, 8, 32, 16, seed=6)
        assert not np.array_equal(a.images, b.images)

    def test_shapes_and_dtypes(self):
        train, test = make_synthetic("x", 5, 3, 12, 40, 20, seed=0)
        assert train.images.shape == (40, 3, 12, 12)
        assert train.images.dtype == np.float32
        assert train.labels.dtype == np.int64
        assert len(test) == 20

    def test_class_balance(self):
        train, _ = make_synthetic("x", 4, 1, 8, 80, 16, seed=0)
        counts = np.bincount(train.labels, minlength=4)
        assert counts.min() == counts.max() == 20

    def test_train_test_disjoint_noise(self):
        train, test = make_synthetic("x", 3, 1, 8, 30, 30, seed=0)
        assert not np.array_equal(train.images[:10], test.images[:10])

    def test_min_classes(self):
        with pytest.raises(ValueError):
            make_synthetic("x", 1, 1, 8, 10, 10)

    def test_learnable_signal(self):
        # Same-class images correlate more with their prototype than
        # cross-class ones do: nearest-prototype classification beats chance.
        train, test = make_synthetic("x", 4, 1, 12, 160, 80, seed=3, noise=0.5)
        prototypes = np.stack([train.images[train.labels == c].mean(axis=0)
                               for c in range(4)])
        flat_p = prototypes.reshape(4, -1)
        flat_x = test.images.reshape(len(test), -1)
        pred = np.argmax(flat_x @ flat_p.T, axis=1)
        assert (pred == test.labels).mean() > 0.5


class TestDataset:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros((3, 1, 2, 2)), np.zeros(2, dtype=np.int64), 2)

    def test_subset_balanced(self):
        train, _ = make_synthetic("x", 4, 1, 8, 80, 16, seed=0)
        sub = train.subset(40)
        assert len(sub) == 40
        counts = np.bincount(sub.labels, minlength=4)
        assert counts.max() == counts.min() == 10  # interleaved labels

    def test_properties(self):
        train, _ = make_synthetic("x", 3, 2, 10, 12, 6, seed=0)
        assert train.channels == 2
        assert train.image_size == 10


class TestDataLoader:
    def test_batches_cover_dataset(self):
        train, _ = make_synthetic("x", 3, 1, 8, 50, 10, seed=0)
        loader = DataLoader(train, batch_size=16, shuffle=False)
        total = sum(len(y) for _, y in loader)
        assert total == 50
        assert len(loader) == 4

    def test_shuffle_deterministic_per_epoch(self):
        train, _ = make_synthetic("x", 3, 1, 8, 32, 10, seed=0)
        l1 = DataLoader(train, batch_size=8, shuffle=True, seed=9)
        l2 = DataLoader(train, batch_size=8, shuffle=True, seed=9)
        b1 = next(iter(l1))[1]
        b2 = next(iter(l2))[1]
        np.testing.assert_array_equal(b1, b2)

    def test_shuffle_varies_across_epochs(self):
        train, _ = make_synthetic("x", 3, 1, 8, 64, 10, seed=0)
        loader = DataLoader(train, batch_size=64, shuffle=True, seed=0)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)


class TestNamedBuilders:
    @pytest.mark.parametrize("builder,channels,classes", [
        (synthetic_mnist, 1, 10),
        (synthetic_cifar10, 3, 10),
        (synthetic_cifar100, 3, 20),
        (synthetic_imagenet, 3, 20),
    ])
    def test_structure(self, builder, channels, classes):
        train, test = builder(train_size=16, test_size=8)
        assert train.channels == channels
        assert train.num_classes == classes

    def test_load_dataset(self):
        train, _ = load_dataset("mnist", train_size=8, test_size=4)
        assert train.name == "mnist"

    def test_load_dataset_unknown(self):
        with pytest.raises(KeyError):
            load_dataset("svhn")

"""Batched request-queue serving over the parallel inference runtime.

The "traffic" layer of the stack (the ROADMAP's step from batch benchmark
to serving): callers submit **single images**; the server coalesces
concurrent submissions into batches under a configurable latency budget
and dispatches them through :func:`repro.runtime.infer_tiles` on one
shared :class:`~repro.runtime.WorkerPool` — one tile per request, so a
batched request stays **bit-identical** to a standalone single-image call
at any batch composition and worker count, read noise included.

Components
----------
* :class:`RequestQueue` / :class:`Batcher` — thread-safe FIFO plus the
  deadline-driven coalescing loop (``max_batch`` / ``max_wait_s``, the
  deadline anchored on the oldest waiting request).
* :class:`InferenceServer` — the facade: ``submit`` / ``submit_async`` /
  ``submit_many``, graceful draining ``shutdown``, and
  ``from_model(...)`` which lowers a float model through
  :func:`repro.reram.build_insitu_network` with a shared
  :class:`~repro.reram.DieCache`.
* :class:`ServerStats` / :class:`RequestStats` — the operational view
  (p50/p95 latency, queue depth, batch mix, occupancy) and the
  per-request receipt (queue wait, the batch it rode in, and the exact
  per-request slice of the shared engines' merged ``EngineStats``).

``benchmarks/bench_serving.py`` drives this layer with open-loop Poisson
traffic and records throughput/latency curves into ``BENCH_engine.json``;
``python -m repro serve`` runs a self-checking demo.
"""

from .queue import Batcher, PendingRequest, QueueClosed, RequestQueue
from .server import InferenceServer
from .stats import RequestStats, ServedResult, ServerStats

__all__ = [
    "Batcher", "InferenceServer", "PendingRequest", "QueueClosed",
    "RequestQueue", "RequestStats", "ServedResult", "ServerStats",
]

"""Bit-serial engine with physical non-idealities in the signal path.

:class:`NonidealEngine` extends the exact :class:`InSituLayerEngine` with the
device/circuit effects of :mod:`repro.reram.nonideal`, applied where the
physics puts them:

* **stuck-at faults** hit the cell codes at programming time (before the
  conductance plane is written);
* **IR drop + nonlinear cell I-V** perturb the analog column currents of
  every bit-serial cycle — evaluated per fragment with the first-order
  network model (the fragment's m rows and its column wiring are the
  sub-array's electrical extent), with every (bit-plane, fragment) job of a
  kernel batch solved in one vectorized pass;
* **read noise** adds to the sensed current at the sample-and-hold.

With every knob off the engine is bit-exact (inherits the anchor property);
each knob degrades the output in a measurable, attributable way — the
methodology behind the paper's Table VI extended to the full signal path.

The physics plugs into the parent's fused bit-plane kernel through the
single :meth:`~InSituLayerEngine._job_currents` override point, so both the
fused fast path and the cycle-by-cycle reference path
(:meth:`~InSituLayerEngine.matvec_int_reference`) run the same analog model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .converters import ADCSpec
from .device import ReRAMDevice
from .engine import DieCache, InSituLayerEngine
from .mapping import MappedLayer
from .nonideal import CellIV, FaultModel, ReadNoise, WireModel, first_order_currents


class NonidealEngine(InSituLayerEngine):
    """The in-situ engine with faults, IR drop, cell nonlinearity and noise.

    Parameters beyond :class:`InSituLayerEngine`:

    fault_model:
        Stuck-at fault injector applied to every code plane at programming
        time; the realized fault fraction is recorded in ``fault_fraction``.
    wire, cell_iv:
        Wire parasitics and cell I-V curve for the per-fragment IR-drop
        model.  Both must be given to enable the analog-network path;
        ``cell_iv`` may be linear (superposition applies *within* one
        fragment conversion — across fragments FORMS converts separately,
        which is exactly the granularity advantage).
    read_noise:
        Additive Gaussian current noise at the sample-and-hold.  Kernel
        and reference paths draw it through per-job keyed substreams
        (:meth:`~repro.reram.nonideal.ReadNoise.apply_jobs`), so noisy
        results are bit-identical across execution paths and worker
        counts.
    kernel_max_elements:
        Per-engine kernel chunk budget (see
        :class:`~repro.reram.engine.InSituLayerEngine`).
    auto_tabulate:
        Swap a nonlinear ``cell_iv`` for its interpolation table
        (:meth:`~repro.reram.nonideal.CellIV.tabulated`) — bit-exact
        within ADC quantization; off by default because NumPy's SIMD
        ``np.sinh`` measures faster (``cell_iv_sinh_table`` in the perf
        suite).
    """

    def __init__(self, mapped: MappedLayer, device: ReRAMDevice,
                 adc: Optional[ADCSpec] = None, activation_bits: int = 16,
                 fault_model: Optional[FaultModel] = None,
                 wire: Optional[WireModel] = None,
                 cell_iv: Optional[CellIV] = None,
                 read_noise: Optional[ReadNoise] = None,
                 die_cache: Optional[DieCache] = None,
                 kernel_max_elements: Optional[int] = None,
                 auto_tabulate: bool = False):
        if (wire is None) != (cell_iv is None):
            raise ValueError("wire and cell_iv must be supplied together")
        self.fault_fraction = 0.0
        if fault_model is not None:
            faulty_planes = {}
            total = faulted = 0
            for plane, codes in mapped.code_planes.items():
                mask = fault_model.sample(codes.shape)
                faulty_planes[plane] = FaultModel.apply_to_codes(
                    codes, mask, device.spec.levels)
                total += mask.size
                faulted += int((mask != 0).sum())
            mapped = MappedLayer(scheme=mapped.scheme, geometry=mapped.geometry,
                                 spec=mapped.spec, code_planes=faulty_planes,
                                 signs=mapped.signs, offset=mapped.offset)
            self.fault_fraction = faulted / total if total else 0.0
        super().__init__(mapped, device, adc=adc,
                         activation_bits=activation_bits, die_cache=die_cache,
                         kernel_max_elements=kernel_max_elements)
        self.wire = wire
        # ``auto_tabulate`` swaps the sinh cell curve for its precomputed
        # interpolation table (CellIV.tabulated) — bit-exact within ADC
        # quantization, asserted against the closed form in the tests.  It
        # defaults off because NumPy >= 2's SIMD-vectorized np.sinh beats
        # any multi-pass gather on current hardware (measured in the perf
        # suite); the knob exists for platforms with slow transcendentals.
        if (auto_tabulate and cell_iv is not None and not cell_iv.is_linear
                and cell_iv.table_points == 0):
            cell_iv = cell_iv.tabulated()
        self.cell_iv = cell_iv
        self.read_noise = read_noise

    # ------------------------------------------------------------------
    def _analog_model_active(self) -> bool:
        return self.wire is not None or self.read_noise is not None

    def _conversion_noise_active(self) -> bool:
        return self.read_noise is not None

    def _job_memory_factor(self, m: int) -> int:
        # first_order_currents materializes ~6 (m, cols*slices, positions)
        # intermediates per job; read-noise-only engines use the plain read.
        return 6 * m if self.wire is not None else 1

    def _job_currents(self, conductance: np.ndarray, drive: np.ndarray,
                      noise_keys=None) -> np.ndarray:
        """Column currents for one job batch, with the configured physics.

        ``conductance``: (jobs, m, cols, slices); ``drive``: (jobs, m,
        positions).  Returns ``(jobs, positions, cols, slices)`` like the
        parent's convention.  Each job is one fragment read (the fragment's
        m rows and its column wiring are the electrical extent), so the
        IR-drop network is solved per job — batched over the whole jobs
        axis in a single :func:`first_order_currents` call.

        ``noise_keys`` (one identity tuple per job, supplied by both the
        fused kernel and the reference loop) routes read noise through
        deterministic per-job substreams, making noisy results independent
        of job packing, evaluation order and worker count.
        """
        spec = self.device.spec
        if self.wire is None:
            currents = super()._job_currents(conductance, drive)
        else:
            jobs, m, cols, slices = conductance.shape
            flat = conductance.reshape(jobs, m, cols * slices)
            out = first_order_currents(flat, spec.read_voltage * drive,
                                       self.wire, cell_iv=self.cell_iv)
            currents = out.reshape(jobs, cols, slices, -1).transpose(0, 3, 1, 2)
        if self.read_noise is not None:
            if noise_keys is not None:
                currents = self.read_noise.apply_jobs(currents, noise_keys)
            else:
                currents = self.read_noise.apply(currents)
        return currents

    # With wire/noise off, _job_currents reduces to the parent's ideal read,
    # so the exact integer shortcut tiers remain valid (see
    # InSituLayerEngine._signal_path_ideal).
    _job_currents._ideal_when_inactive = True


def output_error(engine: InSituLayerEngine, reference: InSituLayerEngine,
                 x_int: np.ndarray) -> float:
    """Relative L1 error of ``engine`` against a reference engine's output."""
    noisy = engine.matvec_int(x_int).astype(np.float64)
    exact = reference.matvec_int(x_int).astype(np.float64)
    denom = np.abs(exact).sum()
    return float(np.abs(noisy - exact).sum() / denom) if denom else 0.0

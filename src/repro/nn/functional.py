"""Neural-network operators with autograd support.

Convolution is implemented through the classic im2col/col2im lowering, which
is also exactly how the FORMS hardware consumes a convolution: the 2-D weight
matrix produced by :func:`im2col` lowering (one column per filter, one row per
filter-shape position) is the matrix that is cut into fragments and mapped
onto ReRAM crossbar sub-arrays (paper Figs. 2/3/5).  Keeping the same lowering
in software and in the hardware model means the fragment geometry in
:mod:`repro.core.fragments` applies unchanged to both.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, _push, unbroadcast


# ---------------------------------------------------------------------------
# im2col / col2im lowering
# ---------------------------------------------------------------------------

def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size: input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}")
    return out


def _im2col_indices(x_shape: Tuple[int, int, int, int], kh: int, kw: int,
                    stride: int, padding: int):
    """Index arrays mapping a padded image to its im2col matrix."""
    _, channels, height, width = x_shape
    out_h = conv_output_size(height, kh, stride, padding)
    out_w = conv_output_size(width, kw, stride, padding)

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


def im2col(x: np.ndarray, kh: int, kw: int, stride: int = 1, padding: int = 0) -> np.ndarray:
    """Lower image batch ``(N, C, H, W)`` to columns ``(C*kh*kw, N*OH*OW)``.

    Row order is C-major over (channel, kernel-row, kernel-col), matching the
    filter-shape rows of the paper's 2-D weight format (Fig. 2).

    Implemented with :func:`numpy.lib.stride_tricks.sliding_window_view`: the
    window gather is a zero-copy view and the only copy is the final reshape
    into column layout, instead of the fancy-indexing gather (which
    materializes an extra ``(N, C*kh*kw, OH*OW)`` intermediate).
    """
    out_h = conv_output_size(x.shape[2], kh, stride, padding)
    out_w = conv_output_size(x.shape[3], kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]    # (N, C, OH, OW, kh, kw)
    channels = x.shape[1]
    return windows.transpose(1, 4, 5, 2, 3, 0).reshape(
        channels * kh * kw, out_h * out_w * x.shape[0])


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kh: int, kw: int,
           stride: int = 1, padding: int = 0) -> np.ndarray:
    """Scatter-add columns back to image space (adjoint of :func:`im2col`)."""
    batch, channels, height, width = x_shape
    padded = np.zeros((batch, channels, height + 2 * padding, width + 2 * padding),
                      dtype=cols.dtype)
    k, i, j, out_h, out_w = _im2col_indices(x_shape, kh, kw, stride, padding)
    cols_reshaped = cols.reshape(channels * kh * kw, -1, batch).transpose(2, 0, 1)
    np.add.at(padded, (slice(None), k, i, j), cols_reshaped)
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


# ---------------------------------------------------------------------------
# Layers as autograd ops
# ---------------------------------------------------------------------------

def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution.

    ``x``: (N, C, H, W); ``weight``: (OC, C, KH, KW); ``bias``: (OC,) or None.
    """
    batch, channels, height, width = x.shape
    out_channels, in_channels, kh, kw = weight.shape
    if channels != in_channels:
        raise ValueError(f"input has {channels} channels but weight expects {in_channels}")
    out_h = conv_output_size(height, kh, stride, padding)
    out_w = conv_output_size(width, kw, stride, padding)

    cols = im2col(x.data, kh, kw, stride, padding)          # (C*KH*KW, N*OH*OW)
    w2 = weight.data.reshape(out_channels, -1)              # (OC, C*KH*KW)
    out = w2 @ cols                                         # (OC, N*OH*OW)
    if bias is not None:
        out = out + bias.data.reshape(-1, 1)
    out = out.reshape(out_channels, out_h, out_w, batch).transpose(3, 0, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad2 = grad.transpose(1, 2, 3, 0).reshape(out_channels, -1)
        if bias is not None and bias.requires_grad:
            _push(bias, grad2.sum(axis=1))
        if weight.requires_grad:
            _push(weight, (grad2 @ cols.T).reshape(weight.shape))
        if x.requires_grad:
            dcols = w2.T @ grad2
            _push(x, col2im(dcols, x.shape, kh, kw, stride, padding))

    return Tensor._make(out, parents, "conv2d", backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight``: (out, in)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over square windows."""
    stride = stride or kernel
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, 0)
    out_w = conv_output_size(width, kernel, stride, 0)

    # Treat each channel plane independently via im2col on a (N*C, 1, H, W) view.
    reshaped = x.data.reshape(batch * channels, 1, height, width)
    cols = im2col(reshaped, kernel, kernel, stride, 0)      # (k*k, N*C*OH*OW)
    arg = np.argmax(cols, axis=0)
    out = cols[arg, np.arange(cols.shape[1])]
    out = out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    out = out.reshape(batch, channels, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(batch * channels, out_h, out_w).transpose(1, 2, 0).reshape(-1)
        dcols = np.zeros_like(cols)
        dcols[arg, np.arange(cols.shape[1])] = g
        dx = col2im(dcols, (batch * channels, 1, height, width), kernel, kernel, stride, 0)
        _push(x, dx.reshape(x.shape))

    return Tensor._make(out, (x,), "max_pool2d", backward)


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over square windows."""
    stride = stride or kernel
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, 0)
    out_w = conv_output_size(width, kernel, stride, 0)

    reshaped = x.data.reshape(batch * channels, 1, height, width)
    cols = im2col(reshaped, kernel, kernel, stride, 0)
    out = cols.mean(axis=0)
    out = out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    out = out.reshape(batch, channels, out_h, out_w)
    window = kernel * kernel

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(batch * channels, out_h, out_w).transpose(1, 2, 0).reshape(-1)
        dcols = np.broadcast_to(g / window, (window, g.size)).copy()
        dx = col2im(dcols, (batch * channels, 1, height, width), kernel, kernel, stride, 0)
        _push(x, dx.reshape(x.shape))

    return Tensor._make(out, (x,), "avg_pool2d", backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions, returning (N, C)."""
    return x.mean(axis=(2, 3))


def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray, running_var: np.ndarray,
               training: bool, momentum: float = 0.1, eps: float = 1e-5) -> Tensor:
    """Batch normalization over (N, C, H, W) or (N, C) input.

    ``running_mean``/``running_var`` are plain numpy buffers updated in place
    while ``training`` is true (PyTorch semantics).
    """
    spatial = x.ndim == 4
    axes = (0, 2, 3) if spatial else (0,)
    shape = (1, -1, 1, 1) if spatial else (1, -1)

    if training:
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        count = x.size // x.shape[1]
        unbiased = var.data * count / max(count - 1, 1)
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean.data.reshape(-1)
        running_var *= (1.0 - momentum)
        running_var += momentum * unbiased.reshape(-1)
        x_hat = (x - mean) / (var + eps).sqrt()
    else:
        mean = Tensor(running_mean.reshape(shape))
        var = Tensor(running_var.reshape(shape))
        x_hat = (x - mean) / (var + eps).sqrt()

    return x_hat * gamma.reshape(shape) + beta.reshape(shape)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: scales kept activations by 1/(1-p) during training."""
    if not training or p <= 0.0:
        return x
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(mask)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))  # constant: no grad path needed
    shifted = x - shift
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, K) and integer ``targets`` (N,)."""
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError("targets must be a 1-D array of class indices")
    logp = log_softmax(logits, axis=1)
    picked = logp[np.arange(logits.shape[0]), targets]
    return -(picked.mean())


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy of raw logits against integer labels."""
    return float((logits.argmax(axis=1) == np.asarray(targets)).mean())


def topk_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy (paper reports top-5 for ImageNet)."""
    k = min(k, logits.shape[1])
    top = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    return float(np.any(top == np.asarray(targets)[:, None], axis=1).mean())

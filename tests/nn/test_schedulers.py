"""Learning-rate scheduler tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (SGD, ConstantLR, CosineAnnealingLR, ExponentialLR,
                      Linear, MultiStepLR, WarmupLR)


def make_optimizer(lr=0.1):
    return SGD(Linear(4, 2).parameters(), lr=lr)


class TestMultiStepLR:
    def test_decays_at_milestones(self):
        opt = make_optimizer(0.1)
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.1)
        rates = []
        for _ in range(5):
            sched.step()
            rates.append(opt.lr)
        np.testing.assert_allclose(rates, [0.1, 0.01, 0.01, 0.001, 0.001])

    def test_unsorted_milestones_accepted(self):
        opt = make_optimizer()
        sched = MultiStepLR(opt, milestones=[4, 2])
        assert sched.milestones == [2, 4]

    def test_validation(self):
        opt = make_optimizer()
        with pytest.raises(ValueError):
            MultiStepLR(opt, milestones=[])
        with pytest.raises(ValueError):
            MultiStepLR(opt, milestones=[0])
        with pytest.raises(ValueError):
            MultiStepLR(opt, milestones=[2, 2])
        with pytest.raises(ValueError):
            MultiStepLR(opt, milestones=[2], gamma=0.0)


class TestExponentialLR:
    def test_geometric_decay(self):
        opt = make_optimizer(1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        assert sched.preview(4) == [1.0, 0.5, 0.25, 0.125]

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialLR(make_optimizer(), gamma=0.0)


class TestCosineAnnealingLR:
    def test_endpoints(self):
        opt = make_optimizer(0.2)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.02)
        assert sched.lr_at(0) == pytest.approx(0.2)
        assert sched.lr_at(10) == pytest.approx(0.02)
        assert sched.lr_at(50) == pytest.approx(0.02)   # stays at the floor

    def test_halfway_is_mean(self):
        opt = make_optimizer(0.2)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        assert sched.lr_at(5) == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        sched = CosineAnnealingLR(make_optimizer(1.0), t_max=20)
        rates = sched.preview(20)
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_optimizer(), t_max=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_optimizer(0.1), t_max=5, eta_min=0.5)


class TestWarmupLR:
    def test_ramps_then_delegates(self):
        opt = make_optimizer(0.1)
        inner = ConstantLR(opt)
        sched = WarmupLR(inner, warmup_epochs=4)
        rates = sched.preview(6)
        assert rates[0] == pytest.approx(0.1 / 5)
        assert rates[3] == pytest.approx(0.1 * 4 / 5)
        assert rates[4] == pytest.approx(0.1)
        assert rates[5] == pytest.approx(0.1)

    def test_warmup_then_cosine(self):
        opt = make_optimizer(0.1)
        sched = WarmupLR(CosineAnnealingLR(opt, t_max=10), warmup_epochs=2)
        # After warmup, the cosine schedule starts from its own epoch 0.
        assert sched.lr_at(2) == pytest.approx(0.1)
        assert sched.lr_at(12) == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupLR(ConstantLR(make_optimizer()), warmup_epochs=0)


class TestSchedulerMechanics:
    def test_step_updates_optimizer(self):
        opt = make_optimizer(1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.5)
        assert sched.epoch == 1

    def test_preview_does_not_mutate(self):
        opt = make_optimizer(1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.preview(10)
        assert opt.lr == 1.0
        assert sched.epoch == 0

    def test_preview_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(make_optimizer()).preview(0)

    @given(st.floats(min_value=1e-5, max_value=1.0),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_rates_always_positive_and_bounded(self, base_lr, t_max):
        opt = make_optimizer(base_lr)
        sched = WarmupLR(CosineAnnealingLR(opt, t_max=t_max,
                                           eta_min=base_lr * 0.01),
                         warmup_epochs=3)
        for rate in sched.preview(t_max + 5):
            assert 0 < rate <= base_lr + 1e-12

"""Input zero-skipping: effective bits, effective input cycles, and the
shift-register skip logic (paper Sec. IV-B, Figs. 7-9).

Inputs are fed to a crossbar bit-serially, one bit per cycle.  Most
activations are small, so their high-order bits are zero; once *every* input
of a fragment has exhausted its nonzero bits, the remaining cycles contribute
nothing and can be skipped.  Definitions from the paper:

* **effective bits** of an input = its bit count after stripping the most
  significant zeros (``0000_1011`` -> 4... i.e. ``int.bit_length``);
* **effective input cycles (EIC)** of a fragment = the minimum cycles needed
  to feed all of its inputs = the maximum effective bits among them.

Smaller fragments have fewer inputs, hence a lower maximum — this is why
zero-skipping is "a unique opportunity for small sub-arrays".

:class:`ZeroSkipLogic` additionally models the circuit of Fig. 9 cycle by
cycle (parallel-in/serial-out shift registers, per-register NOR, fragment-wide
AND) and is property-tested to agree exactly with the analytic EIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np


def effective_bits(values: np.ndarray) -> np.ndarray:
    """Per-element effective bit count (0 for value 0).

    Equivalent to ``int.bit_length`` vectorized over a non-negative integer
    array.
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError("effective_bits expects an integer array")
    if (values < 0).any():
        raise ValueError("effective_bits expects non-negative inputs (post-ReLU activations)")
    out = np.zeros(values.shape, dtype=np.int64)
    nonzero = values > 0
    out[nonzero] = np.floor(np.log2(values[nonzero])).astype(np.int64) + 1
    return out


def fragment_eic(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """EIC along ``axis``: max effective bits among the fragment's inputs.

    A fragment whose inputs are all zero needs 1 cycle in hardware (the skip
    logic still spends the cycle that detects emptiness), so the result is
    clamped to at least 1.
    """
    bits = effective_bits(values)
    return np.maximum(bits.max(axis=axis), 1)


def eic_matrix(input_matrix: np.ndarray, fragment_size: int) -> np.ndarray:
    """EIC per (fragment, output-position) for an im2col input matrix.

    ``input_matrix`` has shape ``(rows, positions)`` — the same rows the
    layer's weight matrix is cut into.  Rows are chunked into fragments of
    ``fragment_size`` (last chunk padded with zeros, which never raise EIC).
    Returns shape ``(n_fragments, positions)``.
    """
    if input_matrix.ndim != 2:
        raise ValueError("expected a 2-D im2col input matrix (rows, positions)")
    rows, positions = input_matrix.shape
    n_frag = -(-rows // fragment_size)
    padded_rows = n_frag * fragment_size
    if padded_rows != rows:
        pad = np.zeros((padded_rows - rows, positions), dtype=input_matrix.dtype)
        input_matrix = np.vstack([input_matrix, pad])
    stacked = input_matrix.reshape(n_frag, fragment_size, positions)
    return fragment_eic(stacked, axis=1)


@dataclass
class EICStats:
    """Distribution summary of effective input cycles (paper Fig. 8)."""

    fragment_size: int
    total_bits: int
    histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return sum(self.histogram.values())

    @property
    def average(self) -> float:
        if not self.histogram:
            return 0.0
        weighted = sum(eic * n for eic, n in self.histogram.items())
        return weighted / self.count

    @property
    def saved_fraction(self) -> float:
        """Fraction of input cycles skipped relative to feeding all bits."""
        return 1.0 - self.average / self.total_bits

    def bucket_percentages(self, buckets: Sequence = (1, (2, 13), 14, 15, 16)) -> Dict[str, float]:
        """Percentage of fragments per EIC bucket, Fig. 8(a) style.

        Buckets are single values or inclusive ``(lo, hi)`` ranges.
        """
        result: Dict[str, float] = {}
        total = max(self.count, 1)
        for bucket in buckets:
            if isinstance(bucket, tuple):
                lo, hi = bucket
                label = f"{lo}~{hi}"
                n = sum(c for eic, c in self.histogram.items() if lo <= eic <= hi)
            else:
                label = str(bucket)
                n = self.histogram.get(bucket, 0)
            result[label] = 100.0 * n / total
        return result

    @classmethod
    def from_eic_values(cls, eics: np.ndarray, fragment_size: int,
                        total_bits: int) -> "EICStats":
        values, counts = np.unique(np.asarray(eics, dtype=np.int64), return_counts=True)
        return cls(fragment_size, total_bits,
                   {int(v): int(c) for v, c in zip(values, counts)})

    def merge(self, other: "EICStats") -> "EICStats":
        if (other.fragment_size, other.total_bits) != (self.fragment_size, self.total_bits):
            raise ValueError("cannot merge stats with different fragment size / bit width")
        merged = dict(self.histogram)
        for eic, n in other.histogram.items():
            merged[eic] = merged.get(eic, 0) + n
        return EICStats(self.fragment_size, self.total_bits, merged)


def layer_eic_stats(input_matrix: np.ndarray, fragment_size: int,
                    total_bits: int) -> EICStats:
    """EIC statistics of one layer given its integer im2col input matrix."""
    eics = eic_matrix(input_matrix, fragment_size)
    eics = np.minimum(eics, total_bits)
    return EICStats.from_eic_values(eics.reshape(-1), fragment_size, total_bits)


class ZeroSkipLogic:
    """Cycle-level model of the zero-skipping circuit (paper Fig. 9).

    Each of the fragment's inputs sits in a parallel-in/serial-out shift
    register.  Every cycle the LSBs are driven to the DACs and the registers
    shift right.  A NOR over each register's remaining content feeds a
    fragment-wide AND; when the AND raises (all registers empty), shifting
    stops and the remaining cycles are skipped.
    """

    def __init__(self, total_bits: int):
        if total_bits < 1:
            raise ValueError("total_bits must be >= 1")
        self.total_bits = total_bits

    def run(self, inputs: Sequence[int]) -> "SkipTrace":
        """Feed one fragment's inputs; return the cycle-by-cycle trace."""
        registers = [int(v) for v in inputs]
        limit = (1 << self.total_bits) - 1
        for value in registers:
            if value < 0 or value > limit:
                raise ValueError(f"input {value} outside {self.total_bits}-bit range")
        bits_fed: List[List[int]] = []
        cycles = 0
        while cycles < self.total_bits:
            # Drive current LSBs to the DAC inputs.
            bits_fed.append([value & 1 for value in registers])
            registers = [value >> 1 for value in registers]
            cycles += 1
            # NOR per register (1 when register content is all zero), ANDed.
            if all(value == 0 for value in registers):
                break
        return SkipTrace(cycles=cycles, total_bits=self.total_bits, bits_fed=bits_fed)


@dataclass
class SkipTrace:
    """Result of one :class:`ZeroSkipLogic` run."""

    cycles: int
    total_bits: int
    bits_fed: List[List[int]]

    @property
    def skipped_cycles(self) -> int:
        return self.total_bits - self.cycles

    def reconstruct(self) -> List[int]:
        """Rebuild the input values from the bits that were actually fed.

        Skipped cycles carry only zero bits, so the reconstruction must equal
        the original inputs — the circuit never skips information.
        """
        n = len(self.bits_fed[0]) if self.bits_fed else 0
        values = [0] * n
        for cycle, bits in enumerate(self.bits_fed):
            for i, bit in enumerate(bits):
                values[i] |= bit << cycle
        return values


def average_eic_over_layers(per_layer: Dict[str, EICStats]) -> float:
    """Fragment-count-weighted average EIC across layers (Fig. 8(b) "all-layers avg")."""
    total = sum(stats.count for stats in per_layer.values())
    if total == 0:
        return 0.0
    return sum(stats.average * stats.count for stats in per_layer.values()) / total

"""Hardware walkthrough: one layer, three mapping schemes, one noisy die.

Demonstrates the signed-weight problem the paper opens with, on simulated
hardware:

* the same polarized integer weights mapped via **FORMS** (magnitude cells +
  1R sign indicator), **ISAAC offset** (bias + digital 1-count correction)
  and **PRIME dual** (two crossbars) all compute the *identical* ideal
  result — they differ only in crossbar count and noise coupling;
* the zero-skipping shift-register logic (paper Fig. 9) cycle by cycle;
* device variation hits the ISAAC offset encoding hardest (the stored bias
  rides through noisy cells), reproducing the robustness argument of [29].

Run:  python examples/hardware_walkthrough.py
"""

import numpy as np

from repro.analysis import render_table
from repro.core import (FragmentGeometry, QuantizationSpec, ZeroSkipLogic,
                        compute_signs, crossbars_for_matrix, project_polarization)
from repro.core.compression import CrossbarShape
from repro.reram import (DeviceSpec, ReRAMDevice, build_engine,
                         effective_levels, infer_signs, map_layer)


def make_polarized_layer(rng, shape=(16, 8, 3, 3), m=8, qmax=127):
    geometry = FragmentGeometry(shape, m, "w")
    weights = rng.normal(size=shape)
    signs = compute_signs(weights, geometry)
    weights = project_polarization(weights, geometry, signs)
    levels = np.clip(np.rint(weights * qmax / np.abs(weights).max()),
                     -qmax, qmax).astype(np.int64)
    return geometry.matrix(levels), geometry


def main() -> None:
    rng = np.random.default_rng(7)
    spec = QuantizationSpec(weight_bits=8, cell_bits=2)
    levels, geometry = make_polarized_layer(rng)
    x = rng.integers(0, 2 ** 10, size=(geometry.rows, 32))
    expected = levels.T @ x

    # ------------------------------------------------------------------
    # 1. Three schemes, one answer, different costs.
    # ------------------------------------------------------------------
    crossbar = CrossbarShape(128, 128)
    rows = []
    for scheme in ("forms", "isaac_offset", "dual"):
        signs = infer_signs(levels, geometry) if scheme == "forms" else None
        engine = build_engine(levels, geometry, spec,
                              ReRAMDevice(DeviceSpec(), 0.0),
                              scheme=scheme, signs=signs, activation_bits=10)
        out = engine.matvec_int(x)
        count_scheme = "dual" if scheme == "dual" else "forms"
        xbars = crossbars_for_matrix(geometry.rows, geometry.cols, crossbar,
                                     spec.cells_per_weight, count_scheme)
        rows.append([scheme, bool(np.array_equal(out, expected)), xbars,
                     "sign indicator" if scheme == "forms"
                     else ("offset circuit" if scheme == "isaac_offset" else "-")])
    print(render_table(["scheme", "exact result", "crossbars", "extra hardware"],
                       rows, title="Signed weights: three mappings, one answer"))
    print()

    # ------------------------------------------------------------------
    # 2. Zero-skipping circuit, cycle by cycle (paper Figs. 7 and 9).
    # ------------------------------------------------------------------
    inputs = [0b101011, 0b1001011, 0b110, 0b110100]  # the paper's Fig. 7 fragment
    trace = ZeroSkipLogic(total_bits=16).run(inputs)
    print(f"Fig. 7 fragment inputs: {[bin(v) for v in inputs]}")
    print(f"cycles used: {trace.cycles} of 16 "
          f"({trace.skipped_cycles} skipped; paper says EIC = 7)")
    print(f"reconstruction lossless: {trace.reconstruct() == inputs}\n")

    # ------------------------------------------------------------------
    # 3. Variation robustness: the offset encoding amplifies device noise.
    # ------------------------------------------------------------------
    rows = []
    for scheme in ("forms", "isaac_offset", "dual"):
        signs = infer_signs(levels, geometry) if scheme == "forms" else None
        mapped = map_layer(levels, geometry, spec, scheme, signs=signs)
        errors = []
        for die in range(10):
            device = ReRAMDevice(DeviceSpec(), variation_sigma=0.1, seed=die)
            noisy = effective_levels(mapped, device)
            errors.append(np.abs(noisy - levels).mean())
        rows.append([scheme, float(np.mean(errors))])
    print(render_table(["scheme", "mean |level error| at sigma=0.1"], rows,
                       title="Device variation coupling by mapping scheme",
                       floatfmt=".3f"))
    print("\nFORMS stores bare magnitudes; ISAAC's stored bias (+128 per cell "
          "group) rides through the same noisy cells, so its effective "
          "weights absorb far more variation — the robustness cost the paper "
          "attributes to offset mapping.")


if __name__ == "__main__":
    main()

"""Serving benchmark records and their BENCH_engine.json merge semantics."""

import json

import pytest

from repro.perf import (SERVING_RECORD_KIND, http_record_name,
                        merge_serving_records, multitenant_record_name,
                        run_http_point, run_multitenant_point,
                        run_poisson_point, serving_record_name,
                        write_payload)


def serving_record(name, rate=50.0):
    return {"name": name, "kind": SERVING_RECORD_KIND,
            "results": {"offered_rate_rps": rate}, "meta": {}}


class TestMerge:
    def test_replaces_by_name_and_appends_new(self):
        payload = {"records": [{"name": "mvm", "kind": "paired"},
                               serving_record("serving_poisson_r50", 50.0)]}
        fresh = [serving_record("serving_poisson_r50", 50.0),
                 serving_record("serving_poisson_r200", 200.0)]
        fresh[0]["results"]["throughput_rps"] = 42.0
        merge_serving_records(payload, fresh)
        names = [r["name"] for r in payload["records"]]
        assert names == ["mvm", "serving_poisson_r50", "serving_poisson_r200"]
        assert payload["records"][1]["results"]["throughput_rps"] == 42.0

    def test_write_payload_preserves_serving_records(self, tmp_path):
        """run_perf_suite rewriting BENCH_engine.json must not drop the
        serving curve recorded by bench_serving.py."""
        path = tmp_path / "bench.json"
        existing = {"records": [serving_record("serving_poisson_r50"),
                                {"name": "old_engine", "kind": "paired"}]}
        path.write_text(json.dumps(existing))
        write_payload(path, {"schema": "forms-perf-suite/v1",
                             "records": [{"name": "mvm", "kind": "paired"}]})
        merged = json.loads(path.read_text())
        names = [r["name"] for r in merged["records"]]
        assert names == ["mvm", "serving_poisson_r50"]

    def test_write_payload_new_name_wins_over_preserved(self, tmp_path):
        path = tmp_path / "bench.json"
        stale = serving_record("serving_poisson_r50")
        stale["results"]["throughput_rps"] = 1.0
        path.write_text(json.dumps({"records": [stale]}))
        fresh = serving_record("serving_poisson_r50")
        fresh["results"]["throughput_rps"] = 9.0
        write_payload(path, {"records": [fresh]})
        merged = json.loads(path.read_text())
        assert len(merged["records"]) == 1
        assert merged["records"][0]["results"]["throughput_rps"] == 9.0

    def test_write_payload_refuses_corrupt_existing_file(self, tmp_path):
        """A corrupt BENCH file may hold the only serving trajectory —
        refuse to overwrite rather than silently drop it."""
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="refusing"):
            write_payload(path, {"records": []})
        assert path.read_text() == "{not json"

    def test_record_names(self):
        assert serving_record_name(50.0) == "serving_poisson_r50"
        assert serving_record_name(12.5) == "serving_poisson_r12p5"
        assert multitenant_record_name(400.0) == "serving_multitenant_r400"
        assert multitenant_record_name(12.5) == "serving_multitenant_r12p5"
        assert http_record_name(200.0) == "serving_http_r200"
        assert http_record_name(12.5) == "serving_http_r12p5"

    def test_http_merge_clobbers_no_other_kind(self, tmp_path):
        """The acceptance clause: serving_http_r* records land next to
        engine, poisson and multitenant entries without replacing any,
        and survive an engine-suite rewrite."""
        payload = {"records": [{"name": "mvm", "kind": "paired"},
                               serving_record("serving_poisson_r200"),
                               serving_record("serving_multitenant_r400")]}
        fresh = [serving_record("serving_http_r200", 200.0),
                 serving_record("serving_http_r400", 400.0)]
        merge_serving_records(payload, fresh)
        names = [r["name"] for r in payload["records"]]
        assert names == ["mvm", "serving_poisson_r200",
                         "serving_multitenant_r400",
                         "serving_http_r200", "serving_http_r400"]
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        write_payload(path, {"schema": "forms-perf-suite/v1",
                             "records": [{"name": "mvm", "kind": "paired"}]})
        merged = json.loads(path.read_text())
        assert [r["name"] for r in merged["records"]] == names

    def test_multitenant_merge_clobbers_nothing(self, tmp_path):
        """The satellite guarantee: merging multitenant records must
        leave engine records and the single-tenant serving curve
        untouched, and write_payload must preserve both serving kinds."""
        payload = {"records": [{"name": "mvm", "kind": "paired"},
                               serving_record("serving_poisson_r50"),
                               serving_record("serving_multitenant_r400")]}
        fresh = [serving_record("serving_multitenant_r400", 400.0),
                 serving_record("serving_multitenant_r800", 800.0)]
        fresh[0]["results"]["requests_shed"] = 5
        merge_serving_records(payload, fresh)
        names = [r["name"] for r in payload["records"]]
        assert names == ["mvm", "serving_poisson_r50",
                         "serving_multitenant_r400",
                         "serving_multitenant_r800"]
        assert payload["records"][2]["results"]["requests_shed"] == 5
        # the engine suite rewriting the file keeps both serving curves
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        write_payload(path, {"schema": "forms-perf-suite/v1",
                             "records": [{"name": "mvm", "kind": "paired"}]})
        merged = json.loads(path.read_text())
        assert [r["name"] for r in merged["records"]] == names


class TestPoissonPoint:
    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            run_poisson_point(0.0, requests=4)
        with pytest.raises(ValueError):
            run_poisson_point(-50.0, requests=4)
        with pytest.raises(ValueError):
            run_poisson_point(100.0, requests=0)

    def test_point_record_shape(self):
        record = run_poisson_point(400.0, requests=6, max_batch=4,
                                   workers=2, seed=1)
        assert record["kind"] == SERVING_RECORD_KIND
        assert record["name"] == "serving_poisson_r400"
        results = record["results"]
        assert results["offered_rate_rps"] == 400.0
        assert results["throughput_rps"] > 0.0
        assert results["latency_p95_s"] >= results["latency_p50_s"] > 0.0
        assert results["batches_formed"] >= 2  # 6 requests, max_batch 4
        assert record["meta"]["requests"] == 6
        assert record["meta"]["workers"] == 2
        assert record["meta"]["bit_identical_to_serial"] is True


class TestMultitenantPoint:
    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            run_multitenant_point(0.0, requests=4)
        with pytest.raises(ValueError):
            run_multitenant_point(100.0, requests=0)
        with pytest.raises(ValueError):
            run_multitenant_point(100.0, requests=4,
                                  interactive_fraction=1.5)

    def test_point_record_shape(self):
        record = run_multitenant_point(400.0, requests=10, workers=2,
                                       seed=1)
        assert record["kind"] == SERVING_RECORD_KIND
        assert record["name"] == "serving_multitenant_r400"
        results = record["results"]
        assert results["offered_rate_rps"] == 400.0
        assert (results["requests_completed"]
                + results["requests_shed"]) == 10
        assert set(results["per_class"]) <= {"interactive", "bulk"}
        assert set(results["per_model"]) <= {"fast", "batch"}
        for group in results["per_class"].values():
            assert group["latency_p95_s"] >= group["latency_p50_s"] >= 0.0
        meta = record["meta"]
        assert meta["bit_identical_to_serial"] is True
        assert meta["models"] == ["batch", "fast"]
        assert meta["die_cache"]["misses"] > 0


class TestHttpPoint:
    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            run_http_point(0.0, requests=4)
        with pytest.raises(ValueError):
            run_http_point(100.0, requests=0)

    @pytest.mark.parametrize("binary", [False, True], ids=["json", "b64"])
    def test_point_record_shape(self, binary):
        record = run_http_point(400.0, requests=6, max_batch=4, workers=2,
                                seed=1, binary=binary)
        assert record["kind"] == SERVING_RECORD_KIND
        assert record["name"] == "serving_http_r400"
        results = record["results"]
        assert results["offered_rate_rps"] == 400.0
        assert results["throughput_rps"] > 0.0
        # client round trips bound the server-side window from above
        assert results["rtt_p95_s"] >= results["rtt_p50_s"] > 0.0
        assert results["rtt_p50_s"] >= results["latency_p50_s"] > 0.0
        meta = record["meta"]
        assert meta["transport"] == "http"
        assert meta["encoding"] == ("npy_b64" if binary else "json")
        assert meta["requests"] == 6
        assert meta["workers"] == 2
        assert meta["bit_identical_to_serial"] is True

"""ReRAM device model tests."""

import numpy as np
import pytest

from repro.reram import DeviceSpec, ReRAMDevice, codes_to_digital


class TestDeviceSpec:
    def test_levels(self):
        assert DeviceSpec(cell_bits=2).levels == 4
        assert DeviceSpec(cell_bits=1).levels == 2

    def test_conductance_endpoints(self):
        spec = DeviceSpec()
        assert spec.ideal_conductance(np.array([0]))[0] == pytest.approx(spec.g_min)
        assert spec.ideal_conductance(np.array([spec.levels - 1]))[0] == pytest.approx(spec.g_max)

    def test_conductance_monotone(self):
        spec = DeviceSpec(cell_bits=2)
        g = spec.ideal_conductance(np.arange(4))
        assert (np.diff(g) > 0).all()
        np.testing.assert_allclose(np.diff(g), spec.g_step)

    def test_on_off_ratio(self):
        spec = DeviceSpec(r_on=100e3, r_off=10e6)
        assert spec.on_off_ratio == pytest.approx(100.0)

    def test_code_range_validated(self):
        spec = DeviceSpec(cell_bits=2)
        with pytest.raises(ValueError):
            spec.ideal_conductance(np.array([4]))
        with pytest.raises(ValueError):
            spec.ideal_conductance(np.array([-1]))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(cell_bits=0)
        with pytest.raises(ValueError):
            DeviceSpec(r_on=1e6, r_off=1e5)
        with pytest.raises(ValueError):
            DeviceSpec(read_voltage=0.0)


class TestReRAMDevice:
    def test_ideal_programming(self):
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.0)
        codes = np.array([[0, 1], [2, 3]])
        np.testing.assert_array_equal(device.program(codes),
                                      device.spec.ideal_conductance(codes))

    def test_variation_statistics(self):
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.1, seed=0)
        codes = np.full(20000, 3)
        g = device.program(codes)
        ratio = g / device.spec.ideal_conductance(codes)
        # lognormal(0, 0.1): median 1.0, std of log = 0.1
        np.testing.assert_allclose(np.median(ratio), 1.0, rtol=0.01)
        np.testing.assert_allclose(np.log(ratio).std(), 0.1, rtol=0.05)

    def test_variation_reproducible_by_seed(self):
        codes = np.arange(4)
        a = ReRAMDevice(DeviceSpec(), 0.1, seed=3).program(codes)
        b = ReRAMDevice(DeviceSpec(), 0.1, seed=3).program(codes)
        np.testing.assert_array_equal(a, b)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            ReRAMDevice(DeviceSpec(), variation_sigma=-0.1)

    def test_variation_factors_identity_at_zero(self):
        device = ReRAMDevice(DeviceSpec(), 0.0)
        np.testing.assert_array_equal(device.variation_factors((3, 3)), np.ones((3, 3)))

    def test_read_current_kirchhoff(self):
        device = ReRAMDevice(DeviceSpec(), 0.0)
        g = device.program(np.array([[1, 2], [3, 0]]))
        active = np.array([1.0, 1.0])
        expected = device.spec.read_voltage * g.sum(axis=0)
        np.testing.assert_allclose(device.read_current(g, active), expected)

    def test_read_current_row_masking(self):
        device = ReRAMDevice(DeviceSpec(), 0.0)
        g = device.program(np.array([[3], [3]]))
        one_row = device.read_current(g, np.array([1.0, 0.0]))
        both = device.read_current(g, np.array([1.0, 1.0]))
        np.testing.assert_allclose(both, 2 * one_row)


class TestCodesToDigital:
    def test_inverts_accumulation(self):
        spec = DeviceSpec(cell_bits=2)
        codes = np.array([3, 1, 2, 0])
        active = np.array([1.0, 1.0, 0.0, 1.0])
        g = spec.ideal_conductance(codes)
        current = spec.read_voltage * (g * active).sum()
        digital = codes_to_digital(current, spec, active_count=active.sum())
        assert round(float(digital)) == 3 + 1 + 0  # active codes only

"""Every documented error path of the wire protocol, end to end.

Each malformed/hostile request must come back as the documented status +
structured code (``docs/serving.md``) — and must never wedge the server:
after every error case a well-formed request still succeeds.  Fast fake
networks keep these deterministic; the real-engine numerics live in
``test_http.py``.
"""

import http.client
import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.serving import (ERROR_CODES, AdmissionController, HttpClient,
                           HttpError, HttpFrontend, InferenceServer,
                           ModelRegistry)
from repro.serving.http import decode_array_b64, encode_array

IMAGE = np.arange(4.0)


def toy_network(tensor):
    return Tensor(tensor.data.reshape(tensor.data.shape[0], -1) * 2.0)


@pytest.fixture()
def frontend():
    registry = ModelRegistry(workers=1)
    registry.register_network("toy", toy_network, image_shape=(4,))
    server = InferenceServer(registry=registry)
    fe = HttpFrontend(server, max_body_bytes=64 * 1024).start()
    try:
        yield fe
    finally:
        fe.shutdown()
        server.shutdown()
        registry.close()


@pytest.fixture()
def client(frontend):
    return HttpClient.for_frontend(frontend)


def read_all(raw: socket.socket) -> str:
    chunks = []
    while True:
        chunk = raw.recv(65536)
        if not chunk:
            break
        chunks.append(chunk)
    return b"".join(chunks).decode("utf-8", "replace")


def raw_post(frontend, path, body: bytes, headers=None):
    """A POST bypassing the client's JSON plumbing (for broken bodies)."""
    connection = http.client.HTTPConnection(frontend.host, frontend.port,
                                            timeout=10.0)
    try:
        default = {"Content-Type": "application/json",
                   "Content-Length": str(len(body)), "Connection": "close"}
        default.update(headers or {})
        connection.putrequest("POST", path)
        for name, value in default.items():
            connection.putheader(name, value)
        connection.endheaders()
        if body:
            connection.send(body)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def assert_error(status, payload, want_status, want_code):
    assert status == want_status
    assert payload["error"]["code"] == want_code
    assert want_code in ERROR_CODES
    assert payload["error"]["message"]


def assert_still_serving(client):
    """The non-wedging clause: a good request after every bad one."""
    result = client.infer(IMAGE)
    np.testing.assert_array_equal(result.output, IMAGE * 2.0)


class TestMalformedRequests:
    def test_malformed_json(self, frontend, client):
        status, payload = raw_post(frontend, "/v1/infer", b"{not json!")
        assert_error(status, payload, 400, "malformed_json")
        assert_still_serving(client)

    def test_non_object_body(self, frontend, client):
        status, payload = raw_post(frontend, "/v1/infer", b"[1, 2, 3]")
        assert_error(status, payload, 400, "malformed_json")
        assert_still_serving(client)

    def test_missing_input(self, client):
        status, payload = client.request("POST", "/v1/infer", {"model": "toy"})
        assert_error(status, payload, 400, "invalid_request")
        assert_still_serving(client)

    def test_both_encodings_at_once(self, client):
        status, payload = client.request(
            "POST", "/v1/infer",
            {"input": [1.0], "input_b64": encode_array(IMAGE)})
        assert_error(status, payload, 400, "invalid_request")

    def test_undecodable_b64(self, client):
        status, payload = client.request("POST", "/v1/infer",
                                         {"input_b64": "@@not-base64@@"})
        assert_error(status, payload, 400, "invalid_input")
        assert_still_serving(client)

    def test_non_numeric_input(self, client):
        status, payload = client.request("POST", "/v1/infer",
                                         {"input": ["a", "b"]})
        assert_error(status, payload, 400, "invalid_input")
        assert_still_serving(client)

    def test_bad_deadline(self, client):
        for deadline in (-1.0, 0, "soon", True):
            status, payload = client.request(
                "POST", "/v1/infer", {"input": IMAGE.tolist(),
                                      "deadline_ms": deadline})
            assert_error(status, payload, 400, "invalid_request")
        assert_still_serving(client)


class TestRoutingErrors:
    def test_wrong_shape(self, client):
        status, payload = client.request(
            "POST", "/v1/infer", {"input": np.zeros((3, 3)).tolist()})
        assert_error(status, payload, 400, "invalid_input")
        assert "shape" in payload["error"]["message"]
        assert_still_serving(client)

    def test_unknown_model(self, client):
        with pytest.raises(HttpError) as caught:
            client.infer(IMAGE, model="ghost")
        assert caught.value.status == 404
        assert caught.value.code == "unknown_model"
        assert_still_serving(client)

    def test_unknown_priority(self, client):
        with pytest.raises(HttpError) as caught:
            client.infer(IMAGE, priority="platinum")
        assert caught.value.status == 400
        assert caught.value.code == "unknown_priority"
        assert_still_serving(client)

    def test_unknown_path_and_method(self, client):
        status, payload = client.request("GET", "/v2/infer")
        assert_error(status, payload, 404, "not_found")
        status, payload = client.request("GET", "/v1/infer")
        assert_error(status, payload, 405, "method_not_allowed")
        status, payload = client.request("POST", "/v1/stats",
                                         {"input": IMAGE.tolist()})
        assert_error(status, payload, 405, "method_not_allowed")
        assert_still_serving(client)


class TestBodyBounds:
    def test_oversized_body_refused_unread(self, frontend, client):
        huge = {"input": np.zeros(130 * 1024).tolist()}   # ~> 64 KiB bound
        status, payload = client.request("POST", "/v1/infer", huge)
        assert_error(status, payload, 413, "body_too_large")
        assert payload["error"]["max_body_bytes"] == frontend.max_body_bytes
        assert_still_serving(client)

    def test_missing_content_length(self, frontend, client):
        with socket.create_connection((frontend.host, frontend.port),
                                      timeout=10.0) as raw:
            raw.sendall(b"POST /v1/infer HTTP/1.1\r\n"
                        b"Host: x\r\nConnection: close\r\n\r\n")
            response = read_all(raw)
        assert " 411 " in response.splitlines()[0]
        assert "length_required" in response
        assert_still_serving(client)

    def test_truncated_body(self, frontend, client):
        body = json.dumps({"input": IMAGE.tolist()}).encode()
        with socket.create_connection((frontend.host, frontend.port),
                                      timeout=10.0) as raw:
            raw.sendall(b"POST /v1/infer HTTP/1.1\r\nHost: x\r\n"
                        b"Content-Type: application/json\r\n"
                        + f"Content-Length: {len(body) + 64}\r\n".encode()
                        + b"Connection: close\r\n\r\n" + body)
            raw.shutdown(socket.SHUT_WR)
            response = read_all(raw)
        assert " 400 " in response.splitlines()[0]
        assert "invalid_request" in response
        assert_still_serving(client)


class TestBatchEndpointErrors:
    def test_empty_inputs(self, client):
        status, payload = client.request("POST", "/v1/infer_batch",
                                         {"inputs": []})
        assert_error(status, payload, 400, "invalid_request")

    def test_both_encodings_at_once(self, client):
        status, payload = client.request(
            "POST", "/v1/infer_batch",
            {"inputs": [IMAGE.tolist()],
             "inputs_b64": [encode_array(IMAGE)]})
        assert_error(status, payload, 400, "invalid_request")
        assert_still_serving(client)

    def test_bad_item_mid_batch_drains_earlier_items(self, client):
        """inputs[1] has the wrong shape: the envelope fails with the
        item's index, the already-enqueued inputs[0] is drained (not
        stranded), and the server keeps serving."""
        status, payload = client.request(
            "POST", "/v1/infer_batch",
            {"inputs": [IMAGE.tolist(), np.zeros((2, 2)).tolist()]})
        assert_error(status, payload, 400, "invalid_input")
        assert payload["error"]["index"] == 1
        assert_still_serving(client)

    def test_batch_with_unknown_model(self, client):
        status, payload = client.request(
            "POST", "/v1/infer_batch",
            {"inputs": [IMAGE.tolist()], "model": "ghost"})
        assert_error(status, payload, 404, "unknown_model")
        assert_still_serving(client)


class TestShedOverTheWire:
    def make_slow_frontend(self, *, admission=None, delay=0.35):
        registry = ModelRegistry(workers=1)

        def slow(tensor):
            time.sleep(delay)
            return toy_network(tensor)

        registry.register_network("slow", slow, image_shape=(4,))
        server = InferenceServer(registry=registry, max_batch=1,
                                 max_wait_s=0.0, admission=admission)
        return HttpFrontend(server, owns_server=True).start()

    def test_deadline_shed_carries_receipt(self):
        frontend = self.make_slow_frontend()
        client = HttpClient.for_frontend(frontend)
        try:
            blocker = threading.Thread(target=lambda: client.infer(IMAGE))
            blocker.start()
            time.sleep(0.1)        # the slow batch holds the dispatch loop
            with pytest.raises(HttpError) as caught:
                client.infer(IMAGE, deadline_ms=30.0)
            blocker.join(timeout=5.0)
        finally:
            frontend.shutdown()
        assert caught.value.status == 503
        assert caught.value.code == "shed"
        receipt = caught.value.receipt
        assert receipt["reason"] == "deadline"
        assert receipt["deadline_s"] == pytest.approx(0.03)
        assert receipt["queue_wait_s"] >= 0.0

    def test_admission_refusal_is_immediate(self):
        frontend = self.make_slow_frontend(
            admission=AdmissionController(max_queue_depth=1))
        client = HttpClient.for_frontend(frontend)
        try:
            threads = [threading.Thread(
                target=lambda: client.request(
                    "POST", "/v1/infer", {"input": IMAGE.tolist()}))
                for _ in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(0.15)       # dispatch busy + one queued => depth >= 1
            started = time.monotonic()
            with pytest.raises(HttpError) as caught:
                client.infer(IMAGE)
            refusal_s = time.monotonic() - started
            for thread in threads:
                thread.join(timeout=10.0)
        finally:
            frontend.shutdown()
        assert caught.value.code == "shed"
        assert caught.value.receipt["reason"] == "admission"
        assert refusal_s < 0.2     # refused at intake, not after queueing


class TestMidShutdown:
    def test_request_arriving_mid_drain(self):
        registry = ModelRegistry(workers=1)

        def slow(tensor):
            time.sleep(0.4)
            return toy_network(tensor)

        registry.register_network("slow", slow, image_shape=(4,))
        server = InferenceServer(registry=registry, max_batch=1,
                                 max_wait_s=0.0)
        frontend = HttpFrontend(server, owns_server=True).start()
        client = HttpClient.for_frontend(frontend)
        inflight = {}

        def first():
            inflight["result"] = client.infer(IMAGE)

        worker = threading.Thread(target=first)
        worker.start()
        time.sleep(0.1)
        closer = threading.Thread(target=frontend.shutdown)
        closer.start()
        time.sleep(0.1)
        with pytest.raises(HttpError) as caught:
            client.infer(IMAGE)
        assert caught.value.status == 503
        assert caught.value.code == "shutting_down"
        worker.join(timeout=5.0)
        closer.join(timeout=5.0)
        # the in-flight request drained to a real, exact response
        np.testing.assert_array_equal(inflight["result"].output, IMAGE * 2.0)


def test_docs_cover_every_endpoint_and_error_code():
    """docs/serving.md is the wire-protocol reference: every shipped
    endpoint and every structured error code must appear in it."""
    import pathlib
    guide = (pathlib.Path(__file__).resolve().parents[2]
             / "docs" / "serving.md").read_text(encoding="utf-8")
    for endpoint in ("GET /healthz", "GET /v1/models", "GET /v1/stats",
                     "POST /v1/infer", "POST /v1/infer_batch"):
        assert endpoint in guide, f"docs/serving.md misses {endpoint}"
    for code in ERROR_CODES:
        assert f"`{code}`" in guide, f"docs/serving.md misses code {code}"


def test_npy_roundtrip_is_byte_exact():
    for array in (np.random.default_rng(0).normal(size=(3, 5)),
                  np.arange(6, dtype=np.int32).reshape(2, 3)):
        again = decode_array_b64(encode_array(array))
        assert again.dtype == array.dtype
        np.testing.assert_array_equal(again, array)

"""Property fuzz of the wire codecs: random payloads survive byte-exact.

Pinned-seed random arrays — every numeric dtype the ``.npy`` codec
carries, 1–3 random dims, NaN / ±inf / −0.0 injected into the float
cases — must round-trip **byte-exactly** (``tobytes()`` equality, dtype
and shape included) through:

* the codec pair itself (``encode_array`` / ``decode_array_b64``, and
  the JSON list path for the wire's canonical float64), and
* the full wire: ``POST /v1/infer`` against an echo network behind
  *both* front ends — threaded and asyncio — via one shared
  parametrized fixture, so the two transports are proven on the same
  payloads and cannot drift apart.

JSON is the wire's canonical-float64 encoding, so only float64 cases
ride it end to end (that *is* the documented contract); base64 ``.npy``
carries every dtype, exotic NaN payload bits included.
"""

import json

import numpy as np
import pytest

from repro.serving import AsyncFrontend, HttpClient, HttpFrontend, \
    InferenceServer, ModelRegistry
from repro.serving.http import (decode_array_b64, decode_array_json,
                                encode_array)
from repro.nn.tensor import Tensor

#: the pinned fuzz seed: every run fuzzes the same payloads, so a
#: failure is reproducible by case index alone
FUZZ_SEED = 20210614

#: dtypes the .npy codec must carry byte-exactly over the wire
B64_DTYPES = (np.float16, np.float32, np.float64,
              np.int8, np.int16, np.int32, np.int64,
              np.uint8, np.uint16, np.uint64, np.bool_)


def _fuzz_array(rng: np.random.Generator, dtype) -> np.ndarray:
    shape = tuple(int(rng.integers(1, 6))
                  for _ in range(int(rng.integers(1, 4))))
    dtype = np.dtype(dtype)
    if dtype.kind == "f":
        array = rng.normal(scale=10.0 ** rng.integers(-3, 4),
                           size=shape).astype(dtype)
        # salt the float cases with the special values JSON and .npy
        # must both carry: NaN, both infinities, negative zero
        flat = array.reshape(-1)
        for value in (np.nan, np.inf, -np.inf, -0.0):
            flat[rng.integers(0, flat.size)] = value
        return array
    if dtype.kind == "b":
        return rng.integers(0, 2, size=shape).astype(dtype)
    info = np.iinfo(dtype)
    return rng.integers(info.min, info.max, size=shape,
                        dtype=dtype, endpoint=True)


def build_cases():
    rng = np.random.default_rng(FUZZ_SEED)
    cases = []
    for dtype in B64_DTYPES:
        for _ in range(3):
            cases.append(_fuzz_array(rng, dtype))
    # plus non-contiguous and Fortran-order views: the codec promises
    # byte-exactness of the *values*, independent of memory layout
    base = rng.normal(size=(6, 8))
    cases.append(np.asfortranarray(base))
    cases.append(base[::2, ::3])
    cases.append(rng.normal(size=4) + 1j * rng.normal(size=4))   # complex
    return cases


CASES = build_cases()
CASE_IDS = [f"case{i}_{np.dtype(a.dtype).name}{list(a.shape)}"
            for i, a in enumerate(CASES)]


def assert_byte_exact(decoded: np.ndarray, original: np.ndarray):
    assert decoded.dtype == original.dtype
    assert decoded.shape == original.shape
    assert (np.ascontiguousarray(decoded).tobytes()
            == np.ascontiguousarray(original).tobytes())


class TestCodecRoundTrip:
    @pytest.mark.parametrize("array", CASES, ids=CASE_IDS)
    def test_b64_npy_round_trip_byte_exact(self, array):
        assert_byte_exact(decode_array_b64(encode_array(array)), array)

    @pytest.mark.parametrize(
        "array", [a for a in CASES if a.dtype == np.float64
                  and a.dtype.kind == "f"],
        ids=[i for a, i in zip(CASES, CASE_IDS)
             if a.dtype == np.float64 and a.dtype.kind == "f"])
    def test_json_round_trip_float64_byte_exact(self, array):
        """float64 repr round-trips exactly through JSON — NaN, ±inf and
        −0.0 included (Python's json emits and parses the tokens)."""
        wire = json.loads(json.dumps(array.tolist()))
        assert_byte_exact(decode_array_json(wire), array)

    def test_b64_rejects_garbage(self):
        from repro.serving.http import WireFormatError
        with pytest.raises(WireFormatError):
            decode_array_b64("not-base64!!")
        with pytest.raises(WireFormatError):
            decode_array_b64("aGVsbG8=")   # valid base64, not a .npy


# ---------------------------------------------------------------------------
# end to end: the same payloads through both front ends.  One echo model
# per case (request shapes are pinned per model), one shared fixture
# parametrized over the frontend class — the satellite's anti-drift rule.
E2E_CASES = [(i, a) for i, a in enumerate(CASES)
             if a.dtype in (np.float16, np.float32, np.float64,
                            np.int32, np.uint8, np.bool_)]


def _echo(tensor):
    return Tensor(tensor.data)


@pytest.fixture(scope="module", params=[HttpFrontend, AsyncFrontend],
                ids=["threaded", "asyncio"])
def fuzz_frontend(request):
    registry = ModelRegistry(workers=2)
    for index, _ in E2E_CASES:
        registry.register_network(f"echo{index}", _echo)
    server = InferenceServer(registry=registry, max_batch=4,
                             max_wait_s=0.001)
    frontend = request.param(server).start()
    try:
        yield frontend
    finally:
        frontend.shutdown()
        server.shutdown()
        registry.close()


class TestWireFuzzEndToEnd:
    @pytest.mark.parametrize("index,array",
                             E2E_CASES,
                             ids=[f"case{i}" for i, _ in E2E_CASES])
    def test_b64_echo_byte_exact(self, fuzz_frontend, index, array):
        client = HttpClient.for_frontend(fuzz_frontend)
        result = client.infer(array, model=f"echo{index}", binary=True)
        assert_byte_exact(result.output, array)

    @pytest.mark.parametrize(
        "index,array",
        [(i, a) for i, a in E2E_CASES if a.dtype == np.float64],
        ids=[f"case{i}" for i, a in E2E_CASES if a.dtype == np.float64])
    def test_json_echo_float64_value_exact(self, fuzz_frontend, index,
                                           array):
        """The canonical-float64 JSON path: bytes survive end to end,
        NaN/±inf/−0.0 salt included."""
        client = HttpClient.for_frontend(fuzz_frontend)
        result = client.infer(array, model=f"echo{index}", binary=False)
        assert_byte_exact(result.output, array)

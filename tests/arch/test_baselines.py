"""Recorded-baseline registry tests."""

import pytest

from repro.arch import (PAPER_CLAIMS, PAPER_FPS_SPEEDUPS, PAPER_TABLE5,
                        RECORDED_BASELINES)


class TestRecordedBaselines:
    def test_registry_complete(self):
        for name in ("ISAAC", "DaDianNao", "PUMA", "TPU", "WAX", "SIMBA"):
            assert name in RECORDED_BASELINES

    def test_isaac_is_unit(self):
        isaac = RECORDED_BASELINES["ISAAC"]
        assert isaac.gops_per_mm2_rel == 1.0
        assert isaac.gops_per_w_rel == 1.0

    def test_simba_range_display(self):
        simba = RECORDED_BASELINES["SIMBA"]
        assert simba.gops_per_w_display() == "0.08-2.5"
        assert RECORDED_BASELINES["TPU"].gops_per_w_display() == "0.48"

    def test_values_match_paper_table(self):
        for name, rec in RECORDED_BASELINES.items():
            paper = PAPER_TABLE5[name]
            assert rec.gops_per_mm2_rel == paper[0]


class TestPaperReferences:
    def test_fps_speedups_six_stacks(self):
        for key, values in PAPER_FPS_SPEEDUPS.items():
            assert len(values) == 6, key
            assert all(v > 0 for v in values)

    def test_paper_headline_orderings(self):
        """Sanity: the recorded paper numbers themselves satisfy the shapes
        we assert on our measurements."""
        for (net, ds), (pq_isaac, pq_puma, f8, f16, f8_full, f16_full) \
                in PAPER_FPS_SPEEDUPS.items():
            assert pq_puma <= pq_isaac
            assert f8 < pq_isaac                  # no-skip FORMS trails
            assert f8_full > f8 and f16_full > f16  # zero-skip always helps

    def test_claims_registry(self):
        low, high = PAPER_CLAIMS["fps_speedup_over_optimized_isaac"]
        assert low == 1.12 and high == 2.4

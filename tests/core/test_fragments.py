"""Fragment geometry tests: policies, round-trips, padding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FragmentGeometry, geometry_for_layer, row_permutation
from repro.nn import Conv2d, Linear, set_init_seed


class TestRowPermutation:
    def test_w_major_is_identity(self):
        perm = row_permutation(3, 2, 2, "w")
        np.testing.assert_array_equal(perm, np.arange(12))

    def test_h_major_swaps_kh_kw(self):
        # For a (1, 2, 3) filter grid: W-major order is (h0w0,h0w1,h0w2,h1w0...)
        perm = row_permutation(1, 2, 3, "h")
        # H-major: h fastest -> (h0w0, h1w0, h0w1, h1w1, h0w2, h1w2)
        np.testing.assert_array_equal(perm, [0, 3, 1, 4, 2, 5])

    def test_c_major_puts_channels_adjacent(self):
        perm = row_permutation(2, 2, 2, "c")
        # first fragment entries: position (0,0) of channel 0 then channel 1
        assert perm[0] == 0 and perm[1] == 4

    def test_permutations_are_bijections(self):
        for policy in ("w", "h", "c"):
            perm = row_permutation(3, 3, 3, policy)
            assert sorted(perm.tolist()) == list(range(27))

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            row_permutation(1, 1, 1, "z")


class TestGeometry:
    def test_conv_dimensions(self):
        geom = FragmentGeometry((8, 3, 3, 3), fragment_size=4)
        assert geom.rows == 27
        assert geom.cols == 8
        assert geom.fragments_per_column == 7  # ceil(27/4)
        assert geom.num_fragments == 56
        assert geom.padded_rows == 28

    def test_linear_dimensions(self):
        geom = FragmentGeometry((10, 64), fragment_size=8)
        assert geom.rows == 64 and geom.cols == 10
        assert not geom.is_conv

    @pytest.mark.parametrize("policy", ["w", "h", "c"])
    def test_matrix_weight_roundtrip_conv(self, policy, rng):
        weight = rng.normal(size=(6, 4, 3, 3))
        geom = FragmentGeometry(weight.shape, 8, policy)
        np.testing.assert_array_equal(geom.weight(geom.matrix(weight)), weight)

    def test_matrix_weight_roundtrip_linear(self, rng):
        weight = rng.normal(size=(5, 17))
        geom = FragmentGeometry(weight.shape, 4)
        np.testing.assert_array_equal(geom.weight(geom.matrix(weight)), weight)

    def test_matrix_columns_are_filters(self, rng):
        weight = rng.normal(size=(6, 2, 3, 3))
        geom = FragmentGeometry(weight.shape, 4, "w")
        matrix = geom.matrix(weight)
        np.testing.assert_array_equal(matrix[:, 2], weight[2].reshape(-1))

    def test_fragment_stack_roundtrip_with_padding(self, rng):
        weight = rng.normal(size=(3, 3, 3, 3))  # rows=27, not divisible by 4
        geom = FragmentGeometry(weight.shape, 4)
        matrix = geom.matrix(weight)
        stack = geom.fragment_stack(matrix)
        assert stack.shape == (7, 4, 3)
        np.testing.assert_array_equal(stack[-1, -1, :], 0.0)  # zero padding
        np.testing.assert_array_equal(geom.from_fragment_stack(stack), matrix)

    def test_fragment_row_slices_cover_rows(self):
        geom = FragmentGeometry((2, 3, 3, 3), 8)
        covered = sum(s.stop - s.start for _, s in geom.fragment_row_slices())
        assert covered == geom.rows

    def test_input_permutation_matches_matrix_order(self, rng):
        weight = rng.normal(size=(4, 3, 3, 3))
        x = rng.normal(size=(27, 5))
        for policy in ("w", "h", "c"):
            geom = FragmentGeometry(weight.shape, 4, policy)
            matrix = geom.matrix(weight)
            perm = geom.input_permutation()
            ordered = x if perm is None else x[perm]
            # policy re-orders rows of weights and inputs together:
            # the product must be invariant.
            base = geom.matrix(weight)
            np.testing.assert_allclose(matrix.T @ ordered,
                                       weight.reshape(4, -1) @ x, rtol=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            FragmentGeometry((4, 3, 3, 3), 0)
        with pytest.raises(ValueError):
            FragmentGeometry((4, 3, 3), 4)
        with pytest.raises(ValueError):
            FragmentGeometry((4, 3, 3, 3), 4, "q")
        geom = FragmentGeometry((4, 3, 3, 3), 4)
        with pytest.raises(ValueError):
            geom.matrix(np.zeros((4, 3, 3, 2)))
        with pytest.raises(ValueError):
            geom.weight(np.zeros((5, 4)))
        with pytest.raises(ValueError):
            geom.fragment_stack(np.zeros((5, 4)))
        with pytest.raises(ValueError):
            geom.from_fragment_stack(np.zeros((1, 2, 3)))

    def test_geometry_for_layer(self):
        set_init_seed(0)
        conv = Conv2d(3, 8, 3)
        geom = geometry_for_layer(conv, 8, "c")
        assert geom.weight_shape == (8, 3, 3, 3)
        lin = Linear(12, 5)
        assert geometry_for_layer(lin, 4).rows == 12

    def test_describe(self):
        geom = FragmentGeometry((4, 3, 3, 3), 8, "c")
        text = geom.describe()
        assert "conv" in text and "m=8" in text


@given(st.integers(1, 4), st.integers(1, 3), st.integers(1, 3),
       st.integers(2, 8), st.sampled_from(["w", "h", "c"]),
       st.integers(1, 9))
@settings(max_examples=30, deadline=None)
def test_roundtrip_property(oc, c, k, cols_extra, policy, m):
    """matrix->weight and stack->matrix are exact inverses for any geometry."""
    shape = (oc + cols_extra, c, k, k)
    rng = np.random.default_rng(oc * 100 + c * 10 + k)
    weight = rng.normal(size=shape)
    geom = FragmentGeometry(shape, m, policy)
    matrix = geom.matrix(weight)
    np.testing.assert_array_equal(geom.weight(matrix), weight)
    np.testing.assert_array_equal(
        geom.from_fragment_stack(geom.fragment_stack(matrix)), matrix)

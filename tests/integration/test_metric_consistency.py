"""Consistency between the trainer's metrics and the metrics module.

Two independent implementations exist for historical reasons — the trainer's
loop-level ``evaluate``/``evaluate_topk`` and the array-level
:mod:`repro.nn.metrics` — so the suite pins them to each other: any drift in
one shows up here.
"""

import numpy as np
import pytest

from repro.nn import (Tensor, classification_report, evaluate, evaluate_topk,
                      no_grad, predictions_from_logits, topk_accuracy)
from repro.nn import functional as F


@pytest.fixture(scope="module")
def lenet_with_logits(trained_lenet, mnist_small):
    _, test_set = mnist_small
    trained_lenet.eval()
    with no_grad():
        logits = trained_lenet(Tensor(test_set.images)).data
    trained_lenet.train()
    return trained_lenet, test_set, logits


class TestTopK:
    def test_trainer_topk_matches_metrics(self, lenet_with_logits):
        model, test_set, logits = lenet_with_logits
        for k in (1, 3, 5):
            trainer_value = evaluate_topk(model, test_set, k=k)
            metrics_value = topk_accuracy(logits, test_set.labels, k=k)
            assert trainer_value == pytest.approx(metrics_value, abs=1e-9)

    def test_functional_topk_matches_metrics(self, lenet_with_logits):
        _, test_set, logits = lenet_with_logits
        functional_value = F.topk_accuracy(logits, test_set.labels, k=5)
        metrics_value = topk_accuracy(logits, test_set.labels, k=5)
        assert functional_value == pytest.approx(metrics_value, abs=1e-9)


class TestTop1:
    def test_evaluate_matches_classification_report(self, lenet_with_logits):
        model, test_set, logits = lenet_with_logits
        trainer_accuracy = evaluate(model, test_set).accuracy
        report = classification_report(
            test_set.labels, predictions_from_logits(logits),
            num_classes=test_set.num_classes)
        assert trainer_accuracy == pytest.approx(report.accuracy, abs=1e-9)

    def test_report_support_covers_dataset(self, lenet_with_logits):
        _, test_set, logits = lenet_with_logits
        report = classification_report(
            test_set.labels, predictions_from_logits(logits),
            num_classes=test_set.num_classes)
        assert report.support.sum() == len(test_set)

    def test_recall_weighted_by_support_is_accuracy(self, lenet_with_logits):
        _, test_set, logits = lenet_with_logits
        report = classification_report(
            test_set.labels, predictions_from_logits(logits),
            num_classes=test_set.num_classes)
        weighted = float((report.recall * report.support).sum()
                         / report.support.sum())
        assert weighted == pytest.approx(report.accuracy, abs=1e-12)

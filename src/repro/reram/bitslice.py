"""Bit-slicing of integer weights across multi-level ReRAM cells.

An 8-bit weight magnitude on 2-bit cells occupies four adjacent cells in the
same crossbar row (paper Sec. IV-A: "each fragment will still have m rows,
but 4 columns instead of 1").  Slices are stored little-endian: slice k holds
bits ``[k*cell_bits, (k+1)*cell_bits)`` and carries weight ``2**(k*cell_bits)``
in the shift-and-add recombination.
"""

from __future__ import annotations

import numpy as np


def num_slices(weight_bits: int, cell_bits: int) -> int:
    """Cells per weight magnitude (ceil division)."""
    if weight_bits < 1 or cell_bits < 1:
        raise ValueError("bit widths must be >= 1")
    return -(-weight_bits // cell_bits)


def bit_slice(values: np.ndarray, cell_bits: int, slices: int) -> np.ndarray:
    """Slice non-negative integers into per-cell codes.

    Returns shape ``values.shape + (slices,)`` with codes in
    ``[0, 2**cell_bits)``, little-endian.
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError("bit_slice expects integer values")
    if values.size and values.min() < 0:
        raise ValueError("bit_slice expects non-negative magnitudes")
    limit = 1 << (cell_bits * slices)
    if values.size and values.max() >= limit:
        raise ValueError(f"values exceed {slices} slices of {cell_bits} bits")
    mask = (1 << cell_bits) - 1
    out = np.empty(values.shape + (slices,), dtype=np.int64)
    shifted = values.astype(np.int64)
    for k in range(slices):
        out[..., k] = shifted & mask
        shifted = shifted >> cell_bits
    return out


def bit_unslice(codes: np.ndarray, cell_bits: int) -> np.ndarray:
    """Recombine per-cell codes back into integers (inverse of bit_slice)."""
    codes = np.asarray(codes)
    slices = codes.shape[-1]
    weights = (1 << (cell_bits * np.arange(slices))).astype(np.int64)
    return (codes.astype(np.int64) * weights).sum(axis=-1)


def slice_weights(place_values: int, cell_bits: int) -> np.ndarray:
    """Shift-and-add place values ``2**(k*cell_bits)`` for ``place_values`` slices."""
    return (1 << (cell_bits * np.arange(place_values))).astype(np.int64)

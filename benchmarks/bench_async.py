#!/usr/bin/env python
"""Connection-scale benchmark: the asyncio front end under open sockets.

Drives the :class:`repro.serving.AsyncFrontend` with hundreds of
*simultaneously open* keep-alive connections — every socket is open
before the first request departs (barrier rendezvous, the server-side
``peak_connections`` gauge is asserted against the target) — then fires
one ``POST /v1/infer`` per connection on an open-loop Poisson schedule.
Records one ``serving_async_r*`` record per offered rate into
``BENCH_engine.json`` (kind ``"serving"``, merged: engine,
``serving_poisson_*``, ``serving_multitenant_*`` and ``serving_http_*``
records are preserved; schema in ``benchmarks/README.md``).

The point of the fifth curve: ``serving_http_r*`` spends one client
*thread* per in-flight request, which caps the concurrency the threaded
front end can even be offered.  This curve holds the full connection
count resident on one event loop — the number that makes the async
front end worth having — while keeping the suite's contract: every
decoded response bit-identical to the serial single-image forward, and
every failure an explicit shed receipt.

Usage::

    PYTHONPATH=src python benchmarks/bench_async.py --smoke      # < 30 s
    PYTHONPATH=src python benchmarks/bench_async.py              # 500 conns
    PYTHONPATH=src python benchmarks/bench_async.py \\
        --rates 400 800 --connections 600 -o /tmp/async.json

Exits non-zero if any assertion fails (bit-identity, peak connections,
undocumented failure) or fewer than two points were recorded.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf import merge_records_into_file, run_async_point  # noqa: E402
from repro.reram import DieCache                                 # noqa: E402

#: offered arrival rates (requests/s) per mode — the full curve overlaps
#: the http curve at 400 rps so the two transports pair up there
SMOKE_RATES = (200.0, 400.0)
FULL_RATES = (200.0, 400.0, 800.0)

#: simultaneously open connections per mode; the full target is the
#: ROADMAP's "hundreds of connections" scale claim
SMOKE_CONNECTIONS = 128
FULL_CONNECTIONS = 500


def format_point(record: dict) -> str:
    results, meta = record["results"], record["meta"]
    return (f"{record['name']:22s} {results['peak_connections']:4d} conns "
            f"open, offered {results['offered_rate_rps']:6.0f} rps -> "
            f"served {results['throughput_rps']:6.1f} rps, "
            f"rtt p50 {results['rtt_p50_s'] * 1e3:7.2f} ms, "
            f"p95 {results['rtt_p95_s'] * 1e3:7.2f} ms, "
            f"{results['requests_shed']} shed, "
            f"mean batch {results['mean_batch_size']:.2f} "
            f"(w={meta['workers']}, {meta['encoding']})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: two rate points, 128 connections")
    parser.add_argument("--rates", type=float, nargs="+", default=None,
                        help="offered arrival rates in requests/s "
                             "(default: two smoke / three full points)")
    parser.add_argument("--connections", type=int, default=None,
                        help="simultaneously open sockets per point "
                             "(default 128 smoke / 500 full)")
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-pool size (default: FORMS_WORKERS or "
                             "CPU count)")
    parser.add_argument("--binary", action="store_true",
                        help="base64 .npy payloads instead of JSON arrays")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_engine.json",
                        help="BENCH json to merge records into (default: "
                             "BENCH_engine.json at the repo root)")
    args = parser.parse_args(argv)

    rates = args.rates if args.rates is not None else (
        list(SMOKE_RATES) if args.smoke else list(FULL_RATES))
    connections = args.connections if args.connections is not None else (
        SMOKE_CONNECTIONS if args.smoke else FULL_CONNECTIONS)
    if len(rates) < 2:
        print("ERROR: need at least two arrival-rate points for a curve",
              file=sys.stderr)
        return 1

    records = []
    die_cache = DieCache()   # shared: rate points rebuild identical engines
    for rate in rates:
        record = run_async_point(
            rate, connections, max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms, workers=args.workers,
            seed=args.seed, binary=args.binary, die_cache=die_cache)
        print(format_point(record))
        records.append(record)

    try:
        merge_records_into_file(args.output, records)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    print(f"[{len(records)} async serving records merged into {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

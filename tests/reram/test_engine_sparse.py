"""Sparse CSR job scheduler equivalence and accounting.

``matvec_int`` now schedules the activation block's nonzero structure
(per-fragment live-bits x live-positions grids, with a telescoped
no-clip shortcut per task); these tests pin it bit-exact against both the
retained dense bit-plane kernel (``matvec_int_dense``) and the
cycle-by-cycle oracle (``matvec_int_reference``) across mapping schemes,
tiers, edge-case inputs and worker counts — plus the keyed read-noise
substreams that make even noisy engines bit-exact across paths, the
kernel-budget knob, and the tabulated sinh cell curve.
"""

import numpy as np
import pytest

import repro.reram.engine as engine_mod
from repro.core import FragmentGeometry, QuantizationSpec
from repro.core.polarization import compute_signs, project_polarization
from repro.perf.suite import make_post_relu_inputs
from repro.reram import (ADCSpec, DeviceSpec, ReRAMDevice, build_engine,
                         fused_kernel_max_elements,
                         set_fused_kernel_max_elements)
from repro.reram.mapping import infer_signs, map_layer
from repro.reram.nonideal import CellIV, ReadNoise, WireModel
from repro.reram.nonideal_engine import NonidealEngine
from repro.runtime import WorkerPool

SCHEMES = ("forms", "isaac_offset", "dual")
QSPEC = QuantizationSpec(8, 2)


def polarized_case(shape, m, seed=0, qmax=127):
    rng = np.random.default_rng(seed)
    geom = FragmentGeometry(shape, m)
    w = rng.normal(size=shape)
    signs = compute_signs(w, geom)
    w = project_polarization(w, geom, signs)
    levels = np.clip(np.rint(w * qmax / (np.abs(w).max() + 1e-9)),
                     -qmax, qmax).astype(np.int64)
    return geom.matrix(levels), geom


def ideal_device():
    return ReRAMDevice(DeviceSpec(), variation_sigma=0.0)


def sparse_block(geom, m, positions=24, bits=12, seed=3):
    return make_post_relu_inputs(geom, positions=positions, bits=bits,
                                 fragment_size=m, seed=seed)


def force_sparse(engine):
    """Disable the hybrid small-task fallback so the CSR path always runs."""
    engine.sparse_min_task_elements = 0
    return engine


class TestSparseEqualsReference:
    """Bit-exactness of the CSR scheduler vs dense kernel and oracle."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("adc_bits", [None, 3])
    def test_post_relu_block(self, scheme, adc_bits):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=1)
        x = sparse_block(geom, 4)
        adc = ADCSpec(bits=adc_bits) if adc_bits else None
        engine = force_sparse(build_engine(levels, geom, QSPEC,
                                           ideal_device(), scheme=scheme,
                                           adc=adc, activation_bits=12))
        out = engine.matvec_int(x)
        np.testing.assert_array_equal(out, engine.matvec_int_dense(x))
        np.testing.assert_array_equal(out, engine.matvec_int_reference(x))

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_analog_variation_tier(self, scheme):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=2)
        x = sparse_block(geom, 4)
        device = ReRAMDevice(DeviceSpec(), variation_sigma=0.1, seed=5)
        engine = force_sparse(build_engine(levels, geom, QSPEC, device,
                                           scheme=scheme,
                                           activation_bits=12))
        out = engine.matvec_int(x)
        np.testing.assert_array_equal(out, engine.matvec_int_dense(x))
        np.testing.assert_array_equal(out, engine.matvec_int_reference(x))

    def test_irdrop_tier(self):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=4)
        x = sparse_block(geom, 4)
        mapped = map_layer(levels, geom, QSPEC, scheme="forms",
                           signs=infer_signs(levels, geom))
        engine = force_sparse(NonidealEngine(
            mapped, ideal_device(), activation_bits=12,
            wire=WireModel(r_wire_ohm=10.0),
            cell_iv=CellIV(nonlinearity=2.5)))
        out = engine.matvec_int(x)
        np.testing.assert_array_equal(out, engine.matvec_int_dense(x))
        np.testing.assert_array_equal(out, engine.matvec_int_reference(x))

    def test_all_zero_input(self):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=6)
        engine = build_engine(levels, geom, QSPEC, ideal_device(),
                              activation_bits=8)
        x = np.zeros((geom.rows, 5), dtype=np.int64)
        np.testing.assert_array_equal(engine.matvec_int(x),
                                      np.zeros((geom.cols, 5)))
        np.testing.assert_array_equal(engine.matvec_int(x),
                                      engine.matvec_int_reference(x))
        assert engine.stats.cycles_fed == 0

    def test_single_nonzero_input(self):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=7)
        engine = force_sparse(build_engine(levels, geom, QSPEC,
                                           ideal_device(), adc=ADCSpec(bits=3),
                                           activation_bits=10))
        x = np.zeros((geom.rows, 6), dtype=np.int64)
        x[geom.rows - 1, 3] = 0b1011010101
        out = engine.matvec_int(x)
        np.testing.assert_array_equal(out, engine.matvec_int_reference(x))
        assert out[:, [0, 1, 2, 4, 5]].any() == False  # noqa: E712
        assert engine.stats.pairs_skipped > 0

    def test_1d_input(self):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=8)
        engine = force_sparse(build_engine(levels, geom, QSPEC,
                                           ideal_device(),
                                           activation_bits=8))
        x = np.zeros(geom.rows, dtype=np.int64)
        x[::3] = 200
        np.testing.assert_array_equal(engine.matvec_int(x),
                                      engine.matvec_int_reference(x))

    def test_hybrid_fallback_matches(self):
        """The small-task dense fallback is a pure dispatch decision."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=9)
        x = sparse_block(geom, 4, positions=3)
        always = force_sparse(build_engine(levels, geom, QSPEC,
                                           ideal_device(), adc=ADCSpec(bits=3),
                                           activation_bits=12))
        hybrid = build_engine(levels, geom, QSPEC, ideal_device(),
                              adc=ADCSpec(bits=3), activation_bits=12)
        hybrid.sparse_min_task_elements = 1 << 30   # always falls back
        np.testing.assert_array_equal(always.matvec_int(x),
                                      hybrid.matvec_int(x))

    def test_chunked_kernel_identical(self, monkeypatch):
        """The chunk budget is a pure memory knob on the sparse path too."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=10)
        x = sparse_block(geom, 4)
        engine = force_sparse(build_engine(levels, geom, QSPEC,
                                           ideal_device(), adc=ADCSpec(bits=3),
                                           activation_bits=12))
        expected = engine.matvec_int(x)
        monkeypatch.setattr(engine_mod, "FUSED_KERNEL_MAX_ELEMENTS", 1)
        np.testing.assert_array_equal(engine.matvec_int(x), expected)


class TestWorkerInvariance:
    """Pooled in-layer fan-out: identical bits and stats at any width."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_integer_tier(self, workers):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=11)
        x = sparse_block(geom, 4)
        engine = force_sparse(build_engine(levels, geom, QSPEC,
                                           ideal_device(), adc=ADCSpec(bits=3),
                                           activation_bits=12))
        serial = engine.matvec_int(x)
        serial_stats = (engine.stats.conversions, engine.stats.saturated,
                        engine.stats.pairs_scheduled)
        with WorkerPool(workers) as pool:
            pooled_engine = force_sparse(build_engine(
                levels, geom, QSPEC, ideal_device(), adc=ADCSpec(bits=3),
                activation_bits=12))
            pooled = pooled_engine.matvec_int(x, pool=pool)
        np.testing.assert_array_equal(pooled, serial)
        assert (pooled_engine.stats.conversions,
                pooled_engine.stats.saturated,
                pooled_engine.stats.pairs_scheduled) == serial_stats

    @pytest.mark.parametrize("workers", [1, 4])
    def test_noisy_engine(self, workers):
        """Read noise rides keyed substreams: worker-count invariant."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=12)
        x = sparse_block(geom, 4, positions=9)
        mapped = map_layer(levels, geom, QSPEC, scheme="forms",
                           signs=infer_signs(levels, geom))
        spec = DeviceSpec()

        def noisy_engine():
            noise = ReadNoise.for_fragment(4, spec.g_max, spec.read_voltage,
                                           relative_sigma=0.2, seed=13)
            engine = NonidealEngine(mapped, ReRAMDevice(spec, 0.0),
                                    activation_bits=12, read_noise=noise)
            engine.kernel_max_elements = 64  # force many chunks
            return engine

        serial = noisy_engine().matvec_int(x)
        with WorkerPool(workers) as pool:
            pooled = noisy_engine().matvec_int(x, pool=pool)
        np.testing.assert_array_equal(pooled, serial)

    def test_engine_pool_attribute(self):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=14)
        x = sparse_block(geom, 4)
        engine = force_sparse(build_engine(levels, geom, QSPEC,
                                           ideal_device(), adc=ADCSpec(bits=3),
                                           activation_bits=12))
        expected = engine.matvec_int(x)
        with WorkerPool(3) as pool:
            engine.pool = pool
            np.testing.assert_array_equal(engine.matvec_int(x), expected)
        engine.pool = None


class TestNoiseKeyedSubstreams:
    def test_noisy_fused_equals_reference_bitwise(self):
        """The new anchor: per-job keyed noise makes even noisy engines
        bit-exact between the production kernel and the reference loop."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=15)
        x = sparse_block(geom, 4, positions=7)
        mapped = map_layer(levels, geom, QSPEC, scheme="forms",
                           signs=infer_signs(levels, geom))
        spec = DeviceSpec()

        def engine():
            noise = ReadNoise.for_fragment(4, spec.g_max, spec.read_voltage,
                                           relative_sigma=0.3, seed=16)
            return NonidealEngine(mapped, ReRAMDevice(spec, 0.0),
                                  activation_bits=12, read_noise=noise)

        np.testing.assert_array_equal(engine().matvec_int(x),
                                      engine().matvec_int_reference(x))

    def test_noise_differs_across_input_blocks(self):
        """Keys include the input digest: different blocks, different noise."""
        spec = DeviceSpec()
        noise = ReadNoise.for_fragment(4, spec.g_max, spec.read_voltage,
                                       relative_sigma=0.3, seed=17)
        currents = np.zeros((2, 3, 2, 2))
        a = noise.apply_jobs(currents, [(1, 0, 0, 0), (1, 0, 1, 0)])
        b = noise.apply_jobs(currents, [(2, 0, 0, 0), (2, 0, 1, 0)])
        assert not np.array_equal(a, b)
        # ... and identical keys reproduce identical draws.
        c = noise.apply_jobs(currents, [(1, 0, 0, 0), (1, 0, 1, 0)])
        np.testing.assert_array_equal(a, c)

    def test_key_count_mismatch_raises(self):
        noise = ReadNoise(relative_sigma=0.1, full_scale_a=1.0, seed=1)
        with pytest.raises(ValueError):
            noise.apply_jobs(np.zeros((3, 2)), [(0,)])


class TestStatsAccounting:
    def test_conversions_match_reference_on_sparse_block(self):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=18)
        x = sparse_block(geom, 4)
        sparse = force_sparse(build_engine(levels, geom, QSPEC,
                                           ideal_device(), adc=ADCSpec(bits=3),
                                           activation_bits=12))
        ref = build_engine(levels, geom, QSPEC, ideal_device(),
                           adc=ADCSpec(bits=3), activation_bits=12)
        sparse.matvec_int(x)
        ref.matvec_int_reference(x)
        assert sparse.stats.conversions == ref.stats.conversions
        assert sparse.stats.saturated == ref.stats.saturated
        assert sparse.stats.cycles_fed == ref.stats.cycles_fed

    def test_pair_accounting_consistent(self):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=19)
        x = sparse_block(geom, 4)
        engine = force_sparse(build_engine(levels, geom, QSPEC,
                                           ideal_device(), adc=ADCSpec(bits=3),
                                           activation_bits=12))
        engine.matvec_int(x)
        stats = engine.stats
        total_pairs = stats.pairs_scheduled + stats.pairs_skipped
        n_planes = len(engine._plane_terms)
        assert total_pairs == stats.cycles_fed * x.shape[1] * n_planes * \
            geom.fragments_per_column
        assert 0.0 < stats.pair_skip_fraction < 1.0
        assert stats.pair_skip_fraction >= stats.skip_fraction
        # alias kept for older callers
        assert stats.jobs_computed == stats.jobs_scheduled

    def test_merge_is_thread_safe(self):
        import threading
        from repro.reram import EngineStats
        total = EngineStats()
        part = EngineStats()
        part.conversions = 1
        part.pairs_scheduled = 2

        def hammer():
            for _ in range(2000):
                total.merge(part)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert total.conversions == 8000
        assert total.pairs_scheduled == 16000


class TestKernelBudgetKnob:
    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(engine_mod.FUSED_KERNEL_ENV, "12345")
        assert fused_kernel_max_elements() == 12345
        monkeypatch.setenv(engine_mod.FUSED_KERNEL_ENV, "0")
        with pytest.raises(ValueError):
            fused_kernel_max_elements()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(engine_mod.FUSED_KERNEL_ENV, "12345")
        set_fused_kernel_max_elements(777)
        try:
            assert fused_kernel_max_elements() == 777
        finally:
            set_fused_kernel_max_elements(None)
        assert fused_kernel_max_elements() == 12345

    def test_per_engine_budget_wins(self, monkeypatch):
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=20)
        engine = build_engine(levels, geom, QSPEC, ideal_device(),
                              kernel_max_elements=99)
        monkeypatch.setenv(engine_mod.FUSED_KERNEL_ENV, "12345")
        assert engine._kernel_budget() == 99

    def test_autotune_gated_by_env(self, monkeypatch):
        monkeypatch.delenv(engine_mod.FUSED_KERNEL_ENV, raising=False)
        monkeypatch.setattr(engine_mod, "_kernel_autotuned", None)
        monkeypatch.setenv(engine_mod.FUSED_KERNEL_AUTOTUNE_ENV, "1")
        chosen = fused_kernel_max_elements()
        assert chosen >= 1
        # cached: the second resolution does not re-run the sweep
        assert fused_kernel_max_elements() == chosen
        monkeypatch.delenv(engine_mod.FUSED_KERNEL_AUTOTUNE_ENV)
        assert fused_kernel_max_elements() == \
            engine_mod.FUSED_KERNEL_MAX_ELEMENTS

    def test_config_field_reaches_engines(self):
        from repro.core import FORMSConfig
        from repro.perf.suite import _post_relu_network
        from repro.reram.inference import build_insitu_network
        model, config, _ = _post_relu_network()
        config.fused_kernel_max_elements = 4321
        _, engines = build_insitu_network(model, config, ideal_device())
        assert all(e.kernel_max_elements == 4321 for e in engines.values())

    def test_autotune_returns_candidate(self, monkeypatch):
        # Explicit candidates are honored even when the env-resolution
        # cache is already populated (the cache lives in
        # fused_kernel_max_elements, not in the autotuner).
        monkeypatch.setattr(engine_mod, "_kernel_autotuned", 1 << 18)
        candidates = (1 << 14, 1 << 15)
        chosen = engine_mod.autotune_fused_kernel_max_elements(
            candidates=candidates, repeats=1)
        assert chosen in candidates


class TestSinhTable:
    def test_table_matches_closed_form_within_tolerance(self):
        closed = CellIV(nonlinearity=2.0)
        table = closed.tabulated()
        rng = np.random.default_rng(21)
        g = rng.uniform(1e-7, 1e-5, size=20000)
        dv = rng.uniform(-0.45, 0.45, size=g.shape)   # inside table range
        err = np.abs(table.current(g, dv) - closed.current(g, dv))
        # far below one ADC LSB of current (g_step * v_read ~ 1e-6 A)
        assert err.max() < 1e-10

    def test_out_of_range_falls_back_to_closed_form(self):
        closed = CellIV(nonlinearity=2.0)
        table = closed.tabulated()
        dv = np.array([2.0 * closed.v_read * closed.table_range])
        np.testing.assert_allclose(table.current(np.array([1e-5]), dv),
                                   closed.current(np.array([1e-5]), dv))

    def test_engine_digitized_outputs_bit_exact(self):
        """Within ADC quantization the table changes nothing — bit-exact."""
        levels, geom = polarized_case((4, 2, 3, 3), 4, seed=22)
        x = sparse_block(geom, 4, positions=10)
        mapped = map_layer(levels, geom, QSPEC, scheme="forms",
                           signs=infer_signs(levels, geom))
        wire = WireModel(r_wire_ohm=5.0)

        def engine(auto_tabulate):
            return NonidealEngine(mapped, ideal_device(), activation_bits=12,
                                  wire=wire, cell_iv=CellIV(nonlinearity=2.0),
                                  auto_tabulate=auto_tabulate)

        tabulated = engine(True)
        assert tabulated.cell_iv.table_points > 0
        np.testing.assert_array_equal(tabulated.matvec_int(x),
                                      engine(False).matvec_int(x))

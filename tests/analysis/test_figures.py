"""Text figure rendering tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.figures import (bar_chart, grouped_bar_chart, histogram,
                                    line_chart, sparkline)


class TestBarChart:
    def test_contains_labels_and_values(self):
        chart = bar_chart(["ISAAC", "FORMS-8"], [1.0, 36.02], title="Table V")
        assert "ISAAC" in chart and "FORMS-8" in chart
        assert "36.02" in chart
        assert "Table V" in chart

    def test_max_value_fills_width(self):
        chart = bar_chart(["a", "b"], [5.0, 10.0], width=20)
        lines = chart.splitlines()
        assert "#" * 20 in lines[1]
        assert "#" * 10 in lines[0]
        assert "#" * 11 not in lines[0]

    def test_zero_value_has_empty_bar(self):
        chart = bar_chart(["z", "x"], [0.0, 1.0], width=10)
        assert chart.splitlines()[0].count("#") == 0

    def test_all_zero_values(self):
        chart = bar_chart(["a"], [0.0])
        assert "#" not in chart

    def test_deterministic(self):
        args = (["a", "b"], [1.0, 2.0])
        assert bar_chart(*args) == bar_chart(*args)

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [float("nan")])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_bar_lengths_monotone_in_value(self, values):
        labels = [f"v{i}" for i in range(len(values))]
        lines = bar_chart(labels, values, width=40).splitlines()
        lengths = [line.count("#") for line in lines]
        order = np.argsort(values)
        sorted_lengths = [lengths[i] for i in order]
        assert sorted_lengths == sorted(sorted_lengths)


class TestGroupedBarChart:
    def test_structure(self):
        chart = grouped_bar_chart(
            ["VGG16", "ResNet18"],
            {"ISAAC": [7.5, 11.2], "FORMS-8": [59.3, 53.2]},
            title="Fig. 13")
        assert "VGG16:" in chart and "ResNet18:" in chart
        assert chart.count("ISAAC") == 2
        assert "Fig. 13" in chart

    def test_shared_scale(self):
        chart = grouped_bar_chart(["g"], {"small": [1.0], "big": [2.0]},
                                  width=30)
        lines = [l for l in chart.splitlines() if "|" in l]
        assert lines[1].count("#") == 30
        assert lines[0].count("#") == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["g"], {})
        with pytest.raises(ValueError):
            grouped_bar_chart(["g"], {"s": [1.0, 2.0]})


class TestLineChart:
    def test_contains_axis_and_legend(self):
        chart = line_chart([4, 8, 16], {"VGG16": [77.0, 76.8, 76.5]},
                           title="Fig. 6")
        assert "Fig. 6" in chart
        assert "legend" in chart
        assert "77.0" in chart and "76.5" in chart
        assert "4" in chart and "16" in chart

    def test_multiple_series_distinct_markers(self):
        chart = line_chart([1, 2], {"a": [0.0, 1.0], "b": [1.0, 0.0]})
        assert "*" in chart and "o" in chart

    def test_extremes_hit_first_and_last_rows(self):
        chart = line_chart([0, 1], {"s": [0.0, 10.0]}, height=5, width=10)
        rows = [l for l in chart.splitlines() if "|" in l]
        assert "*" in rows[0]    # max on the top row
        assert "*" in rows[-1]   # min on the bottom row

    def test_flat_series_supported(self):
        chart = line_chart([0, 1, 2], {"flat": [5.0, 5.0, 5.0]})
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {})
        with pytest.raises(ValueError):
            line_chart([1], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1.0, float("inf")]})
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1.0, 2.0]}, height=1)


class TestHistogram:
    def test_percentages_sum_to_hundred(self):
        rng = np.random.default_rng(0)
        chart = histogram(rng.normal(size=500), bins=8)
        totals = [float(line.rsplit(" ", 1)[-1])
                  for line in chart.splitlines() if "|" in line]
        assert sum(totals) == pytest.approx(100.0, abs=0.5)

    def test_bin_count(self):
        chart = histogram([1, 2, 3, 4], bins=4)
        assert sum(1 for line in chart.splitlines() if "|" in line) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([])
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_input_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4])
        glyphs = " .:-=+*#%@"
        positions = [glyphs.index(c) for c in line]
        assert positions == sorted(positions)

    def test_constant_input(self):
        assert len(set(sparkline([2, 2, 2]))) == 1

"""Request queue and deadline-driven batch coalescing.

The serving front end's two moving parts:

* :class:`RequestQueue` — a thread-safe FIFO of pending requests with one
  batching primitive, :meth:`RequestQueue.get_batch`: block for the first
  request, then keep collecting until either ``max_batch`` requests are in
  hand or the *oldest* request has waited ``max_wait_s`` since it was
  enqueued.  Anchoring the deadline on the oldest request's enqueue time
  (not on when the batcher woke up) makes ``max_wait_s`` a real latency
  budget: no request sits in the queue longer than ``max_wait_s`` waiting
  for batch mates.
* :class:`Batcher` — the dispatch loop.  One daemon thread drains the
  queue batch by batch, hands each batch to a dispatch callback, and — on
  a dispatch error — fails every request in the batch so no caller hangs.

Both are independent of what a "request" is beyond carrying ``enqueue_t``
and ``future`` attributes; :mod:`repro.serving.server` provides the
concrete request type and the dispatch callback.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np


class QueueClosed(RuntimeError):
    """Raised by :meth:`RequestQueue.put` after :meth:`RequestQueue.close`."""


@dataclass
class PendingRequest:
    """One enqueued image waiting to ride a batch."""

    request_id: int
    image: np.ndarray
    enqueue_t: float = field(default_factory=time.monotonic)
    future: Future = field(default_factory=Future)


class RequestQueue:
    """Thread-safe FIFO with deadline-driven batch extraction."""

    def __init__(self):
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False

    @property
    def depth(self) -> int:
        """Requests currently waiting (a gauge, racy by nature)."""
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def put(self, item) -> None:
        with self._cond:
            if self._closed:
                raise QueueClosed("request queue is closed")
            self._items.append(item)
            self._cond.notify()

    def close(self) -> None:
        """Refuse new :meth:`put` calls; queued items remain drainable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def get_batch(self, max_batch: int, max_wait_s: float) -> Optional[List]:
        """Extract the next coalesced batch (or ``None`` when drained).

        Blocks until at least one item is available, then collects up to
        ``max_batch`` items, waiting out the remainder of the *oldest*
        item's ``max_wait_s`` latency budget for more to arrive.  Returns
        ``None`` only when the queue is closed **and** empty — the
        batcher's termination signal.
        """
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                self._cond.wait()
            batch = [self._items.popleft()]
            deadline = getattr(batch[0], "enqueue_t",
                               time.monotonic()) + max_wait_s
            while len(batch) < max_batch:
                while self._items and len(batch) < max_batch:
                    batch.append(self._items.popleft())
                if len(batch) >= max_batch or self._closed:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            return batch


class Batcher:
    """The dispatch loop: queue -> coalesced batches -> ``dispatch``.

    ``dispatch(batch)`` receives the list of requests of one batch and is
    responsible for resolving each request's ``future``.  If it raises
    instead, the batcher fails every *unresolved* future in the batch with
    that exception — a dispatch error never strands a caller — and keeps
    serving subsequent batches.

    Two queue shapes are accepted: this module's FIFO
    :class:`RequestQueue`, whose ``get_batch(max_batch, max_wait_s)``
    is driven with the batcher's own coalescing knobs, and an SLA queue
    (:class:`repro.serving.scheduler.SlaQueue`, recognised by its
    ``policy`` attribute), whose zero-argument ``get_batch`` carries the
    per-class knobs itself — the FIFO server is then just the batcher
    over the degenerate single-class policy.
    """

    def __init__(self, queue, dispatch: Callable[[List], None],
                 *, max_batch: int = 8, max_wait_s: float = 0.002):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.queue = queue
        self.dispatch = dispatch
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        # the SLA queue's batching knobs live in its policy, per class
        self._policy_driven = hasattr(queue, "policy")
        self._thread: Optional[threading.Thread] = None

    def _next_batch(self) -> Optional[List]:
        if self._policy_driven:
            return self.queue.get_batch()
        return self.queue.get_batch(self.max_batch, self.max_wait_s)

    def run(self) -> None:
        """Serve until the queue is closed and drained."""
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            try:
                self.dispatch(batch)
            except BaseException as exc:  # noqa: BLE001 — forwarded to callers
                for request in batch:
                    if not request.future.done():
                        try:
                            request.future.set_exception(exc)
                        except InvalidStateError:
                            pass  # cancelled between check and set: the
                            # loop (and the batcher thread) must survive

    def start(self) -> threading.Thread:
        """Run the loop on a daemon thread; returns the thread for join."""
        if self._thread is not None:
            raise RuntimeError("batcher already started")
        self._thread = threading.Thread(target=self.run,
                                        name="forms-batcher", daemon=True)
        self._thread.start()
        return self._thread

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def is_alive(self) -> bool:
        """Whether the dispatch loop is still running (False if never
        started)."""
        return self._thread is not None and self._thread.is_alive()

"""Process-backend internals: spawn workers, plane-aware pickling, shipping.

The :class:`~repro.runtime.WorkerPool` process backend lives here.  Three
pieces make it both cheap and bit-exact:

* **Plane-aware pickling** — task payloads run through a pickler whose
  ``persistent_id`` swaps large ``np.ndarray`` objects for
  :class:`~repro.runtime.shared.SharedPlaneHandle` tokens registered on
  the pool's :class:`~repro.runtime.shared.SharedPlanePool`; workers
  resolve tokens back to zero-copy read-only views.  Small arrays ride
  inline — a segment costs more than it saves below ~64 KiB.
* **Shipping** — an object used by *every* task (the in-situ model and its
  engines) is pickled once, the pickle bytes themselves parked in shared
  memory, and workers unpickle it once per process into a token-keyed
  cache.  N tiles cost one deserialization per worker, not N.
* **Spawn-safe workers** — the executor always uses the ``spawn`` start
  method, so no lock, RNG state or thread survives into a worker by
  fork accident; each worker initializes its own flag + per-process
  :class:`~repro.reram.DieCache` (engines re-program identical bits from
  their deterministic seeds — a lock is never pickled).

Bit-exactness across the process boundary is inherited, not re-proven:
engines' outputs depend only on their programmed planes and inputs (both
shipped byte-exact), and :class:`repro.reram.nonideal.ReadNoise` keys its
substreams on (base seed, input digest, plane, bit, fragment) — values
that travel through the pickle unchanged — so noisy runs produce the
same bits in a worker process as on a thread.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .shared import (SharedPlaneHandle, SharedPlanePool, attach_bytes,
                     attach_plane)

#: set by the worker initializer; the re-entrancy contract keys off it
#: (a nested process-backend map inside a worker runs inline, never
#: double-spawns).
_IN_WORKER_PROCESS = False

#: lazily-created per-process die cache (one per worker process — and one
#: in the parent, which is just another process as far as the cache goes).
_DIE_CACHE = None

#: worker-side cache of shipped objects: token -> deserialized object.
_SHIPMENTS: Dict[str, Any] = {}


def in_worker_process() -> bool:
    """True inside a process-backend worker (spawned by :func:`_worker_init`)."""
    return _IN_WORKER_PROCESS


def worker_die_cache():
    """This process's own :class:`~repro.reram.DieCache` (created on demand).

    Process workers never share a cache object with the parent — they
    share *bits*: deterministic (seeded) devices re-program identical
    planes from ``SeedSequence([seed, codes digest])``, so a per-process
    cache reproduces the parent's dies without a pickled lock.
    """
    global _DIE_CACHE
    if _DIE_CACHE is None:
        from ..reram import DieCache
        _DIE_CACHE = DieCache()
    return _DIE_CACHE


def _worker_init() -> None:
    """Runs once in every spawned worker before it takes tasks."""
    global _IN_WORKER_PROCESS
    _IN_WORKER_PROCESS = True
    worker_die_cache()


# ----------------------------------------------------------------------
# Plane-aware pickling
# ----------------------------------------------------------------------
class _PlanePickler(pickle.Pickler):
    """Swaps large arrays for shared-memory handles while pickling."""

    def __init__(self, buffer, pool: Optional[SharedPlanePool]):
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._pool = pool

    def persistent_id(self, obj):
        if self._pool is not None and type(obj) is np.ndarray:
            return self._pool.export(obj)  # None => pickle inline
        return None


class _PlaneUnpickler(pickle.Unpickler):
    def persistent_load(self, pid):
        if isinstance(pid, SharedPlaneHandle):
            return attach_plane(pid)
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dumps_planes(obj, pool: Optional[SharedPlanePool]) -> bytes:
    """Pickle ``obj`` with large arrays externalized onto ``pool``."""
    buffer = io.BytesIO()
    _PlanePickler(buffer, pool).dump(obj)
    return buffer.getvalue()


def loads_planes(data) -> Any:
    """Inverse of :func:`dumps_planes`; handles resolve to attached views."""
    return _PlaneUnpickler(io.BytesIO(data)).load()


def invoke_payload(payload: bytes):
    """The task trampoline submitted to the executor: ``fn(item)``."""
    fn, item = loads_planes(payload)
    return fn(item)


# ----------------------------------------------------------------------
# Shipping: pickle-once objects shared by every task
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shipment:
    """Names a shipped object: worker-cache token + pickle-bytes segment."""

    token: str
    payload: SharedPlaneHandle


def load_shipment(shipment: Shipment) -> Any:
    """Resolve a shipment in this process (deserialized once, then cached)."""
    cached = _SHIPMENTS.get(shipment.token)
    if cached is None:
        cached = loads_planes(attach_bytes(shipment.payload))
        _SHIPMENTS[shipment.token] = cached
    return cached


def clear_shipments() -> None:
    """Drop this process's shipment cache (test hook)."""
    _SHIPMENTS.clear()


# ----------------------------------------------------------------------
# Executor construction
# ----------------------------------------------------------------------
def make_process_executor(workers: int):
    """A spawn-context :class:`ProcessPoolExecutor` with the worker init.

    ``spawn`` (never ``fork``) is load-bearing: the engines, caches and
    stats objects all carry :class:`threading.Lock` fields, and a forked
    child could inherit one mid-acquire.  Spawned workers start from a
    clean interpreter and receive state only through the plane-aware
    pickle layer, which recreates every lock fresh.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=multiprocessing.get_context("spawn"),
        initializer=_worker_init)


def process_backend_available() -> Tuple[bool, str]:
    """Whether ``backend="process"`` can run here (else: reason to fall back)."""
    from .shared import shared_memory_available

    if in_worker_process():
        return False, "already inside a process-backend worker"
    return shared_memory_available()

"""HTTP serving benchmark: the open-loop Poisson curve, over the wire.

:mod:`repro.perf.serving` measures the in-process serving stack —
arrivals call ``submit_async`` directly, so its latency numbers stop at
the queue.  This module measures the same open-loop Poisson scenario
through the :class:`~repro.serving.http.HttpFrontend`: every arrival is
a real ``POST /v1/infer`` over a socket on its own client thread, so the
recorded latency is end to end — connect, serialize, parse, queue,
schedule, dispatch, respond — the number the ROADMAP's "heavy traffic"
budget actually means.

Records are the fourth named curve in ``BENCH_engine.json``
(``serving_http_r*``; they share the ``"serving"`` record kind and the
:func:`repro.perf.serving.merge_serving_records` merge path, so engine,
``serving_poisson_*`` and ``serving_multitenant_*`` entries are
preserved).  Results carry both views of each point: the client-side
round-trip percentiles (wire included) and the server-side snapshot
(queue + dispatch only), so the transport's cost is directly readable as
the difference against the paired ``serving_poisson_*`` record at the
same offered rate.

Every point asserts — before anything is recorded — that each decoded
HTTP output is **bit-identical** to a direct serial single-image forward
through the same network: the transport must be numerics-invisible (the
suite's rule; ``tests/serving/test_http.py`` extends the assertion to
read noise and in-process ``submit`` equality).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .serving import SERVING_RECORD_KIND

#: meta tag distinguishing wire-driven records from in-process ones
HTTP_TRANSPORT = "http"


def http_record_name(rate_rps: float) -> str:
    rate = f"{rate_rps:g}".replace(".", "p")
    return f"serving_http_r{rate}"


def replay_http_open_loop(client, plan: Sequence[Tuple[np.ndarray, Dict]],
                          arrival_offsets: Sequence[float],
                          join_timeout_s: Optional[float] = None
                          ) -> Tuple[List[Dict], float]:
    """Fire one open-loop arrival schedule of ``POST /v1/infer`` calls.

    ``plan`` is one ``(image, infer_kwargs)`` pair per request;
    ``arrival_offsets[i]`` is request *i*'s arrival time relative to the
    replay start.  Each request runs on its own thread and is issued on
    schedule regardless of earlier completions — the open-loop rule: a
    slow server shows up as queueing delay, not as a throttled offered
    rate.  Returns ``(outcomes, open_loop_s)`` where each outcome is
    ``{"latency_s", "result", "error"}`` in request order (``result`` a
    :class:`~repro.serving.http.WireResult`; ``error`` an unraised
    :class:`~repro.serving.http.HttpError` for protocol-level failures
    or the raw exception for transport-level ones — connection reset,
    timeout; exactly one of the two fields is ``None``).

    With ``join_timeout_s`` the join is *bounded*: a load thread still
    running once the shared budget (counted from the last scheduled
    arrival) runs out raises ``AssertionError`` — the chaos points'
    "zero hung requests" proof, where an unbounded join would turn a
    hang into a hung benchmark.
    """
    if len(plan) != len(arrival_offsets):
        raise ValueError("plan and arrival_offsets must align")
    outcomes: List[Optional[Dict]] = [None] * len(plan)
    start = time.monotonic()

    def fire(index: int, image: np.ndarray, kwargs: Dict,
             offset: float) -> None:
        delay = start + offset - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        sent = time.monotonic()
        result = error = None
        try:
            result = client.infer(image, **kwargs)
        except Exception as exc:   # noqa: BLE001 — a dead load thread
            error = exc            # must report, not silently drop, the
            #                        request (the consumers decide whether
            #                        a given error fails the whole run)
        outcomes[index] = {"latency_s": time.monotonic() - sent,
                           "result": result, "error": error}

    threads = [threading.Thread(target=fire, args=(i, image, kwargs, offset),
                                name=f"forms-http-load-{i}", daemon=True)
               for i, ((image, kwargs), offset)
               in enumerate(zip(plan, arrival_offsets))]
    for thread in threads:
        thread.start()
    if join_timeout_s is None:
        for thread in threads:
            thread.join()
    else:
        deadline = (start + (arrival_offsets[-1] if len(arrival_offsets)
                             else 0.0) + join_timeout_s)
        for i, thread in enumerate(threads):
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                raise AssertionError(
                    f"request {i} hung: no response or error within "
                    f"{join_timeout_s:.0f}s of the last arrival")
    return outcomes, time.monotonic() - start   # type: ignore[return-value]


def drive_http_poisson(rate_rps: float, requests: int, *,
                       max_batch: int = 8, max_wait_ms: float = 2.0,
                       workers: Optional[int] = None, seed: int = 0,
                       activation_bits: int = 12, binary: bool = False,
                       die_cache=None) -> Dict:
    """Serve one open-loop Poisson process over HTTP and verify numerics.

    The wire twin of :func:`repro.perf.serving.drive_poisson`: the same
    FORMS-shaped demo network, the same arrival statistics (same seed
    discipline), but every request crosses a real socket through a fresh
    :class:`~repro.serving.HttpFrontend` on an ephemeral port.  Every
    decoded output is asserted bit-identical to a direct serial
    single-image forward.  ``binary`` selects the base64-``.npy`` payload
    encoding over nested JSON arrays (both are byte-exact on the wire).

    Returns ``{"results", "latencies_s", "snapshot", "open_loop_s",
    "workers", "port"}`` — ``latencies_s`` are the client-side round
    trips, ``snapshot`` the server-side stats.
    """
    from ..runtime import run_network_serial
    from ..serving import HttpClient, HttpFrontend
    from ..serving.demo import build_demo_server
    from .serving import poisson_arrival_offsets

    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    # the same server build_demo_server(models=1) stands up for the CLI
    # demos — one construction site, so the bench and the demos cannot
    # drift onto different networks
    server, traffic = build_demo_server(
        1, max_batch=max_batch, max_wait_ms=max_wait_ms, workers=workers,
        seed=seed, activation_bits=activation_bits, die_cache=die_cache)
    images = traffic["images"]
    rng = np.random.default_rng(seed)
    image_idx = rng.integers(0, images.shape[0], size=requests)
    arrival_offsets = poisson_arrival_offsets(rng, rate_rps, requests)
    plan = [(images[i], {"binary": binary}) for i in image_idx]

    with server:
        with HttpFrontend(server) as frontend:
            client = HttpClient.for_frontend(frontend)
            outcomes, open_loop_s = replay_http_open_loop(
                client, plan, arrival_offsets)
            port = frontend.port
        snapshot = server.server_stats()
        resolved_workers = server.pool.workers
        serial = run_network_serial(server.model, images, tile_size=1)

    # the single-model FIFO server never sheds: any error fails the point
    for i, outcome in enumerate(outcomes):
        if outcome["error"] is not None:
            raise AssertionError(
                f"request {i} failed over the wire: {outcome['error']}")
        if not np.array_equal(outcome["result"].output,
                              serial[image_idx[i]]):
            raise AssertionError(
                f"request {i}: decoded HTTP output != serial single-image "
                "forward — the transport leaked into the numerics")
    return {
        "results": [outcome["result"] for outcome in outcomes],
        "latencies_s": [outcome["latency_s"] for outcome in outcomes],
        "snapshot": snapshot,
        "open_loop_s": open_loop_s,
        "workers": resolved_workers,
        "port": port,
    }


def run_http_point(rate_rps: float, requests: int = 32, *,
                   max_batch: int = 8, max_wait_ms: float = 2.0,
                   workers: Optional[int] = None, seed: int = 0,
                   activation_bits: int = 12, binary: bool = False,
                   die_cache=None) -> Dict:
    """Measure one HTTP arrival-rate point and return its record.

    Drives :func:`drive_http_poisson` (bit-identity asserted there) and
    packages both latency views as one ``"serving"`` record named
    ``serving_http_r<rate>`` (schema in ``benchmarks/README.md``):
    ``rtt_*`` fields are client-side round trips (transport included),
    ``latency_*`` fields the server-side enqueue-to-completion window —
    their gap is the wire's cost at that load.
    """
    driven = drive_http_poisson(rate_rps, requests, max_batch=max_batch,
                                max_wait_ms=max_wait_ms, workers=workers,
                                seed=seed, activation_bits=activation_bits,
                                binary=binary, die_cache=die_cache)
    snapshot = driven["snapshot"]
    rtts = np.asarray(driven["latencies_s"], dtype=np.float64)
    batch_sizes = [result.stats["batch_size"] for result in driven["results"]]
    return {
        "name": http_record_name(rate_rps),
        "kind": SERVING_RECORD_KIND,
        "results": {
            "offered_rate_rps": rate_rps,
            "throughput_rps": requests / driven["open_loop_s"],
            "rtt_p50_s": float(np.percentile(rtts, 50)),
            "rtt_p95_s": float(np.percentile(rtts, 95)),
            "rtt_max_s": float(rtts.max()),
            "latency_p50_s": snapshot["latency_p50_s"],
            "latency_p95_s": snapshot["latency_p95_s"],
            "latency_max_s": snapshot["latency_max_s"],
            "transport_overhead_p50_s": float(
                np.percentile(rtts, 50) - snapshot["latency_p50_s"]),
            "queue_wait_mean_s": snapshot["queue_wait_mean_s"],
            "queue_wait_p95_s": snapshot["queue_wait_p95_s"],
            "batches_formed": snapshot["batches_formed"],
            "mean_batch_size": snapshot["mean_batch_size"],
            "max_batch_size": snapshot["max_batch_size"],
            "occupancy": snapshot["occupancy"],
        },
        "meta": {
            "transport": HTTP_TRANSPORT,
            "encoding": "npy_b64" if binary else "json",
            "requests": requests,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "workers": driven["workers"],
            "seed": seed,
            "activation_bits": activation_bits,
            "mean_request_batch_size": float(np.mean(batch_sizes)),
            "bit_identical_to_serial": True,
        },
    }

"""Importable, picklable pool tasks for the cross-backend contract tests.

The process backend can only run tasks it can pickle by reference, which
rules out the closures test code would naturally write inline.  This
module is the stable home for the small module-level functions the
differential suite (``tests/runtime/test_process_backend.py`` and
friends) fans out — and doubles as the template for writing process-safe
sweep evaluators: take the item as the first argument, bind the rest
with :func:`functools.partial`.
"""

from __future__ import annotations

import os
import time

from .executor import parallel_map


def square(value):
    return value * value


def pid_square(value):
    """The worker-placement probe: which process computed this item?"""
    return os.getpid(), value * value


def sleep_echo(value, delay: float = 0.0):
    """Bind ``delay`` with partial to hold workers busy (placement tests)."""
    time.sleep(delay)
    return value


def pid_sleep_echo(value, delay: float = 0.0):
    """Like :func:`sleep_echo` but tagged with the worker pid — long enough
    delays force the executor to spread items over every worker process."""
    time.sleep(delay)
    return os.getpid(), value


def fail_on(value, trigger):
    """Raise on the trigger item — the eager-error propagation probe."""
    if value == trigger:
        raise ValueError(f"probe failure on {value!r}")
    return value


def interrupt_on(value, trigger):
    """Raise KeyboardInterrupt on the trigger item (Ctrl-C propagation)."""
    if value == trigger:
        raise KeyboardInterrupt
    return value


def nested_square_map(value):
    """Issue a nested process-backend map from inside a worker.

    The re-entrancy contract says this must run inline in the issuing
    worker — no grandchild processes, no deadlock on pool capacity.
    Returns ``(worker pid, nested results)`` so the test can prove the
    nested map never left the worker.
    """
    nested = parallel_map(square, [value, value + 1, value + 2],
                          workers=4, backend="process")
    return os.getpid(), nested


def worker_cache_info(_value):
    """Identity of this process's die cache: ``(pid, id, entries)``."""
    from .process import worker_die_cache

    cache = worker_die_cache()
    return os.getpid(), id(cache), len(cache)


def program_via_worker_cache(task):
    """Program ``codes`` on ``device`` through the per-process die cache.

    Returns ``(pid, plane)`` — the differential test asserts the plane is
    bit-identical to the parent's, proving per-process caches reproduce
    the same dies without sharing state (or a pickled lock).
    """
    device, codes = task
    from .process import worker_die_cache

    plane = worker_die_cache().get_or_program(device, codes)
    return os.getpid(), plane


def run_engine_mvm(task):
    """One engine MVM as a pool task: ``task = (engine, x_int)``.

    The fuzz oracle fans MVM position-tiles out with this on every
    backend; the engine pickles whole (planes externalized to shared
    memory above the size threshold) and computes in the worker.
    """
    engine, x_int = task
    return engine.matvec_int(x_int)

"""Whole-replica chaos: SIGKILL subprocess replicas under live traffic.

The heavyweight end of the cluster suite (real ``python -m repro serve``
subprocesses behind a real router socket): a replica dies mid-request
and the caller never notices — every completed answer bit-identical to
the parent's serial forward, every failure a documented receipt, every
request resolved in bounded time, and the restarted replica rejoins.
Request counts are kept small; ``benchmarks/bench_cluster.py --smoke``
runs the same contract at load.
"""

import numpy as np

from repro.perf.cluster import ALLOWED_ERROR_CODES, drive_cluster_chaos
from repro.serving.cluster import ClusterHarness


class TestSubprocessCluster:
    def test_boot_serve_kill_restart(self):
        """The harness lifecycle by hand: spawn, serve through the
        router, SIGKILL a replica, keep serving, restart, rejoin."""
        from repro.perf.multitenant import FAST_MODEL
        from repro.runtime import run_network_serial
        from repro.serving.demo import build_demo_server

        server, traffic = build_demo_server(2, workers=1, seed=0,
                                            deadline_ms=None)
        image = traffic["images"][0]
        serial = run_network_serial(server.registry.get(FAST_MODEL).network,
                                    image[None], tile_size=1)[0]
        server.shutdown()

        with ClusterHarness(2, seed=0, probe_interval_s=0.1) as harness:
            client = harness.client(timeout=60.0)
            before = client.infer(image, model=FAST_MODEL)
            np.testing.assert_array_equal(before.output, serial)

            victim = harness.directory.placement(FAST_MODEL)[0]
            harness.kill(victim)
            after = client.infer(image, model=FAST_MODEL)   # failover
            np.testing.assert_array_equal(after.output, serial)

            harness.restart(victim)
            assert harness.directory.probe_once()[victim] == "up"
            again = client.infer(image, model=FAST_MODEL)
            np.testing.assert_array_equal(again.output, serial)

    def test_drive_cluster_chaos_contract(self):
        """One driven point: the bit-identity / documented-receipts /
        zero-hung / rejoin contract is asserted inside the driver; here
        we check the artifacts it hands back."""
        driven = drive_cluster_chaos(200.0, 8, replicas=2, kills=1,
                                     restart=True, seed=0)
        assert driven["completed"] >= 1
        assert driven["completed"] + sum(driven["shed_codes"].values()) == 8
        assert set(driven["shed_codes"]) <= set(ALLOWED_ERROR_CODES)
        actions = [entry["action"] for entry in driven["kill_log"]]
        assert actions == ["kill", "restart"]
        assert driven["cluster"]["router"]["attempts"] >= 8
        states = driven["cluster"]["directory"]["replicas"]
        assert all(info["state"] == "up" for info in states.values())

"""Performance instrumentation and the engine perf-tracking suite.

Two layers:

* :mod:`repro.perf.instrument` — reusable wall-clock timing
  (:func:`time_callable`) and engine conversion-count metering
  (:class:`EngineMeter`) with no dependency on what is being measured;
* :mod:`repro.perf.suite` — the micro-benchmark definitions behind
  ``benchmarks/run_perf_suite.py``, which records the fused-engine speedup
  trajectory to ``BENCH_engine.json`` at the repo root so every subsequent
  performance PR has a baseline to beat;
* :mod:`repro.perf.serving` — the serving-layer record kind: open-loop
  Poisson throughput/latency points measured by
  ``benchmarks/bench_serving.py`` and merged into the same
  ``BENCH_engine.json`` (all recorders preserve each other's records);
* :mod:`repro.perf.multitenant` — the multi-tenant extension of the
  serving records: two tenants with opposed SLAs contending for one
  worker pool (``benchmarks/bench_multitenant.py``), per-class and
  per-model latency percentiles plus shed accounting;
* :mod:`repro.perf.http` — the same open-loop Poisson traffic measured
  *over the wire* through the :class:`~repro.serving.HttpFrontend`
  (``benchmarks/bench_http.py``): client-side round-trip percentiles
  next to the server-side snapshot, so transport cost is readable
  against the in-process ``serving_poisson_*`` curve;
* :mod:`repro.perf.aio` — connection scale on the asyncio front end
  (``benchmarks/bench_async.py``): hundreds of simultaneously open
  keep-alive sockets (barrier rendezvous, ``peak_connections`` asserted
  server-side) firing open-loop Poisson requests through one event
  loop, with the bit-identity / documented-receipts contract per point;
* :mod:`repro.perf.chaos` — the ``"chaos"`` record kind: mixed-tenant
  Poisson traffic under scripted die faults
  (``benchmarks/bench_chaos.py``) — stuck-at injection, checksum
  detection, quarantine + online re-program, bounded batch retry — with
  the bit-identity / zero-hung-futures contract asserted per point;
* :mod:`repro.perf.cluster` — the ``"cluster"`` record kind: open-loop
  traffic through the :class:`~repro.serving.ClusterRouter` while
  subprocess replicas are SIGKILLed and restarted mid-run
  (``benchmarks/bench_cluster.py``) — failover/hedge accounting with
  the same bit-identity / zero-hung / documented-receipts contract
  asserted per point;
* :mod:`repro.perf.obs` — the ``"obs"`` record kind: the cost of the
  default-armed observability bundle (``benchmarks/bench_obs.py``) —
  the same Poisson point driven with instruments on vs off, interleaved
  and min-estimated, gated against the 5% mean dispatch-service-time
  budget with the armed-vs-disabled outputs compared byte-for-byte.
"""

from .aio import (ASYNC_TRANSPORT, async_record_name,
                  drive_async_connections, run_async_point)
from .chaos import (CHAOS_RECORD_KIND, chaos_record_name,
                    default_chaos_events, drive_chaos, run_chaos_point)
from .cluster import (CLUSTER_RECORD_KIND, cluster_record_name,
                      drive_cluster_chaos, run_cluster_point)
from .http import (HTTP_TRANSPORT, drive_http_poisson, http_record_name,
                   replay_http_open_loop, run_http_point)
from .instrument import EngineMeter, TimingResult, time_callable
from .multitenant import (drive_mixed_traffic, multitenant_record_name,
                          run_multitenant_point, tenant_models)
from .obs import (OBS_OVERHEAD_BUDGET_PCT, OBS_RECORD_KIND, obs_record_name,
                  run_obs_point)
from .serving import (SERVING_RECORD_KIND, drive_poisson,
                      merge_records_into_file, merge_serving_records,
                      poisson_arrival_offsets, run_poisson_point,
                      serving_record_name)
from .suite import (BENCH_SCHEMA, default_suite, run_suite, write_payload)

__all__ = [
    "TimingResult", "time_callable", "EngineMeter",
    "BENCH_SCHEMA", "default_suite", "run_suite", "write_payload",
    "SERVING_RECORD_KIND", "drive_poisson", "merge_records_into_file",
    "merge_serving_records", "poisson_arrival_offsets", "run_poisson_point",
    "serving_record_name",
    "drive_mixed_traffic", "multitenant_record_name",
    "run_multitenant_point", "tenant_models",
    "HTTP_TRANSPORT", "drive_http_poisson", "http_record_name",
    "replay_http_open_loop", "run_http_point",
    "ASYNC_TRANSPORT", "async_record_name", "drive_async_connections",
    "run_async_point",
    "CHAOS_RECORD_KIND", "chaos_record_name", "default_chaos_events",
    "drive_chaos", "run_chaos_point",
    "CLUSTER_RECORD_KIND", "cluster_record_name", "drive_cluster_chaos",
    "run_cluster_point",
    "OBS_OVERHEAD_BUDGET_PCT", "OBS_RECORD_KIND", "obs_record_name",
    "run_obs_point",
]

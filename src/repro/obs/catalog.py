"""The metric catalog: every instrument the default wiring registers.

One declarative table, three consumers:

* the serving/router wiring registers instruments *from* it
  (:func:`instrument`), so a metric cannot exist without a catalog row;
* ``scripts/check_docs.py`` introspects it and fails the check set if
  any name is missing from ``docs/observability.md`` — the exported
  surface and its documentation cannot drift;
* ``docs/observability.md`` is generated to match it (name / type /
  labels / help).

Counter rows are live-incremented at their record sites or advanced to
a monotone source total by a scrape hook; gauge rows are refreshed by
scrape hooks from the snapshots the stack already computes; histogram
rows observe on the hot path.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .metrics import (BATCH_SIZE_BUCKETS, ENGINE_BUCKETS_S,
                      LATENCY_BUCKETS_S, MetricsRegistry)


def _spec(name: str, kind: str, labels: Tuple[str, ...], help_text: str,
          buckets: Sequence[float] = ()) -> Dict:
    return {"name": name, "kind": kind, "labels": labels,
            "help": help_text, "buckets": tuple(buckets)}


#: every metric name the default server + router wiring exports
METRIC_CATALOG: Tuple[Dict, ...] = (
    # -- server: request lifecycle (live counters/histograms) -----------
    _spec("forms_requests_completed_total", "counter", ("model", "class"),
          "Requests served to completion, by tenant model and SLA class."),
    _spec("forms_requests_shed_total", "counter",
          ("model", "class", "reason"),
          "Requests refused with a shed receipt, by shed reason."),
    _spec("forms_requests_failed_total", "counter", (),
          "Requests that failed with an unexpected error."),
    _spec("forms_requests_recovered_total", "counter", (),
          "Requests completed only after an online die-fault recovery."),
    _spec("forms_faults_detected_total", "counter", (),
          "Die faults detected by the checksum guards."),
    _spec("forms_fault_recoveries_total", "counter", (),
          "Online die re-program recoveries completed."),
    _spec("forms_batches_total", "counter", (),
          "Batches dispatched to the worker pool."),
    _spec("forms_batch_size", "histogram", (),
          "Requests coalesced per dispatched batch (the batch mix).",
          BATCH_SIZE_BUCKETS),
    _spec("forms_request_latency_seconds", "histogram", ("model", "class"),
          "End-to-end request latency: enqueue to completion.",
          LATENCY_BUCKETS_S),
    _spec("forms_queue_wait_seconds", "histogram", ("class",),
          "Queue wait: enqueue to batch dispatch.", LATENCY_BUCKETS_S),
    # -- server: scrape-time gauges from the stack's own snapshots ------
    _spec("forms_queue_depth", "gauge", (),
          "Requests waiting in the SLA queue right now."),
    _spec("forms_occupancy", "gauge", (),
          "Dispatch-loop busy fraction over the stats window."),
    _spec("forms_die_health", "gauge", ("state",),
          "Dies per health state (healthy / quarantined / reprogramming)."),
    _spec("forms_engine_counter", "gauge", ("model", "counter"),
          "Per-model EngineStats totals summed over layers (conversions, "
          "macs, cycles_fed, jobs/pairs scheduled and skipped)."),
    # -- engine profiling (opt-in) --------------------------------------
    _spec("forms_engine_profile_seconds", "histogram",
          ("model", "layer", "tier"),
          "Opt-in per-MVM wall time of matvec_int, by dispatch tier "
          "(exact / integer / analog / dense / dense_noise).",
          ENGINE_BUCKETS_S),
    # -- async front end ------------------------------------------------
    _spec("forms_async_connections", "gauge", (),
          "Sockets open on the asyncio front end right now."),
    _spec("forms_async_inflight_bytes", "gauge", (),
          "Request-body bytes resident in the asyncio front end right now."),
    _spec("forms_streams_total", "counter", ("outcome",),
          "SSE streams opened on POST /v1/infer_batch?stream=1, by "
          "terminal outcome (completed / aborted)."),
    _spec("forms_stream_events_total", "counter", ("type",),
          "Server-sent events emitted on the streaming path, by event "
          "type (result / shed / done)."),
    # -- cluster router -------------------------------------------------
    _spec("forms_router_events_total", "counter", ("event",),
          "Router lifecycle totals: requests, attempts, failovers, "
          "hedges_fired, hedges_won, unavailable, batch_items, "
          "batch_items_unavailable."),
    _spec("forms_router_replicas", "gauge", ("state",),
          "Cluster replicas per health state (up / suspect / down)."),
)

_BY_NAME: Dict[str, Dict] = {spec["name"]: spec for spec in METRIC_CATALOG}


def metric_names() -> Tuple[str, ...]:
    """Every catalogued metric name (the check_docs rule-7 surface)."""
    return tuple(spec["name"] for spec in METRIC_CATALOG)


def instrument(metrics: MetricsRegistry, name: str):
    """Register (idempotently) and return the catalogued family."""
    spec = _BY_NAME.get(name)
    if spec is None:
        raise KeyError(f"metric {name!r} is not in METRIC_CATALOG — add a "
                       "catalog row (and docs/observability.md entry) first")
    if spec["kind"] == "counter":
        return metrics.counter(name, spec["help"], labels=spec["labels"])
    if spec["kind"] == "gauge":
        return metrics.gauge(name, spec["help"], labels=spec["labels"])
    return metrics.histogram(name, spec["help"], labels=spec["labels"],
                             buckets=spec["buckets"])

"""Energy accounting tests."""

import pytest

from repro.arch import (LayerWorkload, NetworkWorkload, forms_config,
                        inference_energy, isaac16_config,
                        zero_skip_energy_saving)
from repro.core.zero_skip import EICStats


def make_workload(eic_avg=10):
    layers = []
    for i in range(3):
        layer = LayerWorkload(f"l{i}", "conv", rows=256, cols=64,
                              live_rows=256, live_cols=64,
                              positions_per_image=64)
        for m in (4, 8, 16):
            layer.eic_stats[m] = EICStats(m, 16, {eic_avg: 10})
        layers.append(layer)
    return NetworkWorkload("net", "data", layers)


class TestInferenceEnergy:
    def test_breakdown_positive(self):
        breakdown = inference_energy(make_workload(), isaac16_config(tiles=2))
        assert breakdown.analog_j > 0
        assert breakdown.digital_j > 0
        assert breakdown.static_j > 0
        assert breakdown.total_j == pytest.approx(
            breakdown.analog_j + breakdown.digital_j + breakdown.static_j)

    def test_zero_skip_lowers_analog_energy(self):
        workload = make_workload(eic_avg=8)
        with_skip = inference_energy(workload, forms_config(8, pruned=False,
                                                            zero_skip=True, tiles=2))
        without = inference_energy(workload, forms_config(8, pruned=False,
                                                          zero_skip=False, tiles=2))
        assert with_skip.analog_j < without.analog_j

    def test_noc_energy_included(self):
        breakdown = inference_energy(make_workload(), isaac16_config(tiles=2),
                                     noc_energy_j=1e-6)
        assert breakdown.noc_j == 1e-6
        assert breakdown.total_j >= 1e-6

    def test_as_dict(self):
        breakdown = inference_energy(make_workload(), isaac16_config(tiles=2))
        d = breakdown.as_dict()
        assert set(d) == {"analog_j", "digital_j", "static_j", "noc_j", "total_j"}


class TestZeroSkipSaving:
    def test_matches_eic_ratio(self):
        workload = make_workload(eic_avg=8)
        config = forms_config(8, pruned=False, zero_skip=True)
        assert zero_skip_energy_saving(workload, config) == pytest.approx(0.5)

    def test_zero_for_coarse_or_disabled(self):
        workload = make_workload(eic_avg=8)
        assert zero_skip_energy_saving(workload, isaac16_config()) == 0.0
        config = forms_config(8, pruned=False, zero_skip=False)
        assert zero_skip_energy_saving(workload, config) == 0.0

"""Table rendering tests."""

import pytest

from repro.analysis import render_kv, render_table


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["name", "value"], [["a", 1], ["longer", 2.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(set(len(l) for l in lines[2:])) <= 2  # consistent widths

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert out.splitlines()[1] == "========"

    def test_float_formatting(self):
        out = render_table(["v"], [[3.14159]], floatfmt=".2f")
        assert "3.14" in out and "3.1416" not in out

    def test_none_and_bool(self):
        out = render_table(["a", "b"], [[None, True]])
        assert "-" in out and "yes" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_integers_not_float_formatted(self):
        out = render_table(["n"], [[128]], floatfmt=".2f")
        assert "128" in out and "128.00" not in out


class TestRenderKV:
    def test_pairs(self):
        out = render_kv("Summary", [("acc", 0.95), ("count", 3)])
        assert "Summary" in out
        assert "acc: 0.950" in out
        assert "count: 3" in out

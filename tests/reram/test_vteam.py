"""VTEAM memristor dynamics tests (paper ref [71])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reram import DeviceSpec
from repro.reram.vteam import (ProgramResult, ProgramScheme, VTEAMCell,
                               VTEAMParams, device_spec_from_vteam,
                               program_codes, program_level, write_latency_s)


class TestVTEAMParams:
    def test_defaults_valid(self):
        params = VTEAMParams()
        assert params.v_on < 0 < params.v_off
        assert params.k_off > 0 > params.k_on

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            VTEAMParams(v_on=0.5)
        with pytest.raises(ValueError):
            VTEAMParams(v_off=-0.5)

    def test_rate_sign_validation(self):
        with pytest.raises(ValueError):
            VTEAMParams(k_off=-1.0)
        with pytest.raises(ValueError):
            VTEAMParams(k_on=1.0)

    def test_resistance_validation(self):
        with pytest.raises(ValueError):
            VTEAMParams(r_on=1e6, r_off=1e5)

    def test_resistance_endpoints(self):
        params = VTEAMParams()
        assert params.resistance(0.0) == pytest.approx(params.r_on)
        assert params.resistance(1.0) == pytest.approx(params.r_off)

    def test_resistance_monotone_in_state(self):
        params = VTEAMParams()
        states = np.linspace(0, 1, 11)
        assert (np.diff(params.resistance(states)) > 0).all()

    def test_state_conductance_round_trip(self):
        params = VTEAMParams()
        states = np.linspace(0, 1, 7)
        recovered = params.state_for_conductance(params.conductance(states))
        np.testing.assert_allclose(recovered, states, atol=1e-12)

    def test_windows_vanish_at_bounds(self):
        params = VTEAMParams()
        assert params.window_off(1.0) == pytest.approx(0.0)
        assert params.window_on(0.0) == pytest.approx(0.0)
        assert params.window_off(0.0) == pytest.approx(1.0)
        assert params.window_on(1.0) == pytest.approx(1.0)


class TestThresholdBehaviour:
    def test_no_motion_inside_window(self):
        params = VTEAMParams()
        x = np.array([0.2, 0.5, 0.8])
        for v in (0.0, 0.3, -0.3, params.v_off, params.v_on):
            np.testing.assert_array_equal(params.dxdt(x, v), 0.0)

    def test_reset_direction(self):
        params = VTEAMParams()
        assert (params.dxdt(np.array([0.5]), 2.0) > 0).all()

    def test_set_direction(self):
        params = VTEAMParams()
        assert (params.dxdt(np.array([0.5]), -2.0) < 0).all()

    def test_read_is_nondestructive(self):
        cell = VTEAMCell(state=0.5)
        before = cell.state.copy()
        for _ in range(1000):
            cell.step(0.3, 1e-9)
        np.testing.assert_array_equal(cell.state, before)

    def test_read_current_guard(self):
        cell = VTEAMCell(state=0.5)
        with pytest.raises(ValueError):
            cell.read_current(read_voltage=2.0)

    def test_read_current_value(self):
        cell = VTEAMCell(state=0.0)
        expected = 0.3 / cell.params.r_on
        assert float(cell.read_current(0.3)) == pytest.approx(expected)


class TestCellDynamics:
    def test_reset_pulse_raises_resistance(self):
        cell = VTEAMCell(state=0.0)
        r0 = float(cell.resistance)
        cell.apply_pulse(2.0, 100e-9)
        assert float(cell.resistance) > r0

    def test_set_pulse_lowers_resistance(self):
        cell = VTEAMCell(state=1.0)
        r0 = float(cell.resistance)
        cell.apply_pulse(-2.0, 100e-9)
        assert float(cell.resistance) < r0

    def test_state_stays_bounded_under_huge_pulse(self):
        cell = VTEAMCell(state=0.5)
        cell.apply_pulse(10.0, 1.0, steps=64)
        assert 0.0 <= float(cell.state) <= 1.0
        cell.apply_pulse(-10.0, 1.0, steps=64)
        assert 0.0 <= float(cell.state) <= 1.0

    def test_asymptotic_approach_to_bound(self):
        # The window slows motion near the bound: two equal RESET pulses move
        # the state less the second time.
        cell = VTEAMCell(state=0.0)
        cell.apply_pulse(2.0, 20e-9)
        first = float(cell.state)
        cell.apply_pulse(2.0, 20e-9)
        second = float(cell.state) - first
        assert 0 < second < first

    def test_higher_voltage_moves_faster(self):
        slow = VTEAMCell(state=0.0)
        fast = VTEAMCell(state=0.0)
        slow.apply_pulse(1.0, 10e-9)
        fast.apply_pulse(2.0, 10e-9)
        assert float(fast.state) > float(slow.state)

    def test_array_state_broadcast(self):
        cell = VTEAMCell(state=np.zeros((3, 2)))
        cell.apply_pulse(2.0, 10e-9)
        assert cell.state.shape == (3, 2)
        assert (cell.state > 0).all()

    def test_step_validation(self):
        cell = VTEAMCell()
        with pytest.raises(ValueError):
            cell.step(1.0, 0.0)
        with pytest.raises(ValueError):
            cell.apply_pulse(1.0, -1e-9)
        with pytest.raises(ValueError):
            cell.apply_pulse(1.0, 1e-9, steps=0)

    @given(st.floats(min_value=-5.0, max_value=5.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_resistance_always_in_range(self, voltage, x0):
        cell = VTEAMCell(state=x0)
        cell.apply_pulse(voltage, 1e-7) if voltage != 0 else None
        r = float(cell.resistance)
        assert cell.params.r_on <= r <= cell.params.r_off


class TestProgramAndVerify:
    def test_scheme_validation(self):
        with pytest.raises(ValueError):
            ProgramScheme(set_voltage=1.0)
        with pytest.raises(ValueError):
            ProgramScheme(reset_voltage=-1.0)
        with pytest.raises(ValueError):
            ProgramScheme(min_pulse_width_s=1e-6, pulse_width_s=1e-9)
        with pytest.raises(ValueError):
            ProgramScheme(tolerance=0.0)

    def test_target_range_guard(self):
        cell = VTEAMCell()
        with pytest.raises(ValueError):
            program_level(cell, 1.0)   # 1 S is far above g_max

    @pytest.mark.parametrize("code", [0, 1, 2, 3])
    def test_converges_to_each_2bit_level(self, code):
        params = VTEAMParams()
        spec = device_spec_from_vteam(params, cell_bits=2)
        target = float(spec.ideal_conductance(np.array([code]))[0])
        cell = VTEAMCell(params, state=1.0)
        result = program_level(cell, target)
        assert result.converged
        tol = ProgramScheme().tolerance * (spec.g_max - spec.g_min)
        assert result.error <= tol

    def test_program_from_either_end(self):
        params = VTEAMParams()
        spec = device_spec_from_vteam(params, cell_bits=2)
        target = float(spec.ideal_conductance(np.array([2]))[0])
        from_off = program_level(VTEAMCell(params, state=1.0), target)
        from_on = program_level(VTEAMCell(params, state=0.0), target)
        assert from_off.converged and from_on.converged

    def test_already_at_target_needs_no_pulses(self):
        params = VTEAMParams()
        g = float(params.conductance(0.5))
        cell = VTEAMCell(params, state=0.5)
        result = program_level(cell, g)
        assert result.converged
        assert result.pulses == 0

    def test_program_codes_matches_device_spec(self):
        params = VTEAMParams()
        codes = np.array([[0, 3], [1, 2]])
        achieved, pulses = program_codes(codes, params, cell_bits=2)
        spec = device_spec_from_vteam(params, cell_bits=2)
        ideal = spec.ideal_conductance(codes)
        tol = ProgramScheme().tolerance * (spec.g_max - spec.g_min)
        assert (np.abs(achieved - ideal) <= tol).all()
        assert pulses.shape == codes.shape
        assert (pulses >= 0).all()

    def test_write_latency(self):
        scheme = ProgramScheme(pulse_width_s=50e-9)
        latency = write_latency_s(np.array([[3, 10], [7, 1]]), scheme,
                                  verify_time_s=10e-9)
        assert latency == pytest.approx(10 * 60e-9)
        assert write_latency_s(np.array([]), scheme) == 0.0
        with pytest.raises(ValueError):
            write_latency_s(np.array([1]), scheme, verify_time_s=-1.0)


class TestWriteEnergy:
    def test_energy_accumulates_with_pulses(self):
        cell = VTEAMCell(state=0.5)
        assert cell.energy_j == 0.0
        cell.apply_pulse(2.0, 50e-9)
        first = cell.energy_j
        cell.apply_pulse(2.0, 50e-9)
        assert 0 < first < cell.energy_j

    def test_energy_scales_with_voltage_squared(self):
        # At fixed conductance (state pinned at the bound by the window),
        # doubling the voltage quadruples Joule heating.
        low = VTEAMCell(state=1.0)     # RESET pulses cannot move x further
        high = VTEAMCell(state=1.0)
        low.apply_pulse(1.0, 10e-9)
        high.apply_pulse(2.0, 10e-9)
        assert high.energy_j == pytest.approx(4.0 * low.energy_j, rel=1e-6)

    def test_read_energy_far_below_write_energy(self):
        reader = VTEAMCell(state=0.5)
        writer = VTEAMCell(state=0.5)
        reader.step(0.3, 50e-9)
        writer.apply_pulse(2.0, 50e-9)
        assert reader.energy_j < writer.energy_j / 10

    def test_program_result_carries_energy(self):
        params = VTEAMParams()
        spec = device_spec_from_vteam(params, cell_bits=2)
        target = float(spec.ideal_conductance(np.array([2]))[0])
        result = program_level(VTEAMCell(params, state=1.0), target)
        assert result.energy_j > 0.0
        # already-at-target programming spends nothing
        g = float(params.conductance(0.5))
        free = program_level(VTEAMCell(params, state=0.5), g)
        assert free.energy_j == 0.0


class TestDeviceSpecBridge:
    def test_spec_inherits_resistances(self):
        params = VTEAMParams(r_on=50e3, r_off=5e6)
        spec = device_spec_from_vteam(params, cell_bits=2)
        assert spec.g_max == pytest.approx(1.0 / 50e3)
        assert spec.g_min == pytest.approx(1.0 / 5e6)
        assert isinstance(spec, DeviceSpec)

    def test_default_read_voltage_inside_window(self):
        params = VTEAMParams()
        spec = device_spec_from_vteam(params)
        assert params.v_on < spec.read_voltage < params.v_off

    def test_explicit_read_voltage_guard(self):
        with pytest.raises(ValueError):
            device_spec_from_vteam(VTEAMParams(), read_voltage=1.0)

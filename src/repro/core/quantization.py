"""ReRAM-customized weight quantization (paper Sec. III-C).

Weights are quantized to a symmetric uniform grid whose bit width is a
multiple of the ReRAM cell resolution, so each weight maps exactly onto
``weight_bits / cell_bits`` cells (e.g. four 2-bit cells per 8-bit weight).
Quantization is introduced *during training* through the ADMM projection
rather than forced post-hoc at mapping time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class QuantizationSpec:
    """Uniform symmetric quantization grid.

    ``weight_bits`` counts sign + magnitude; the magnitude grid has
    ``2**(weight_bits-1) - 1`` positive levels.  ``cell_bits`` is the ReRAM
    cell resolution (2 in the paper's chosen design point).
    """

    weight_bits: int = 8
    cell_bits: int = 2

    def __post_init__(self):
        if self.weight_bits < 2:
            raise ValueError("weight_bits must be >= 2")
        if self.cell_bits < 1:
            raise ValueError("cell_bits must be >= 1")
        if self.weight_bits % self.cell_bits != 0:
            raise ValueError(
                f"weight_bits ({self.weight_bits}) must be a multiple of "
                f"cell_bits ({self.cell_bits}) to fully utilize ReRAM resolution")

    @property
    def qmax(self) -> int:
        """Largest magnitude level."""
        return 2 ** (self.weight_bits - 1) - 1

    @property
    def cells_per_weight(self) -> int:
        """ReRAM cells per weight magnitude (paper: 4 cells for 8-bit)."""
        return self.weight_bits // self.cell_bits


def layer_scale(weight: np.ndarray, spec: QuantizationSpec,
                percentile: float = 100.0) -> float:
    """Per-layer scale mapping the quantization grid onto the weight range.

    ``percentile`` < 100 clips outliers (a standard QAT refinement); the
    default reproduces plain max-abs scaling.
    """
    magnitudes = np.abs(weight[weight != 0.0])
    if magnitudes.size == 0:
        return 1.0
    bound = float(np.percentile(magnitudes, percentile))
    if bound <= 0.0:
        return 1.0
    return bound / spec.qmax


def quantize(weight: np.ndarray, spec: QuantizationSpec, scale: float) -> np.ndarray:
    """Project onto the quantization grid (nearest level, saturating)."""
    if scale <= 0.0:
        raise ValueError("scale must be positive")
    levels = np.clip(np.rint(weight / scale), -spec.qmax, spec.qmax)
    return (levels * scale).astype(weight.dtype)


def quantize_to_int(weight: np.ndarray, spec: QuantizationSpec,
                    scale: float) -> np.ndarray:
    """Integer levels in ``[-qmax, qmax]`` (what actually lands on hardware)."""
    if scale <= 0.0:
        raise ValueError("scale must be positive")
    return np.clip(np.rint(weight / scale), -spec.qmax, spec.qmax).astype(np.int64)


def dequantize(levels: np.ndarray, scale: float) -> np.ndarray:
    """Map integer levels back to real weights."""
    return levels.astype(np.float64) * scale


def project_quantization(weight: np.ndarray, spec: QuantizationSpec,
                         scale: float = 0.0) -> Tuple[np.ndarray, float]:
    """ADMM projection onto the quantized set Q_i.

    When ``scale`` is 0 a fresh max-abs scale is fitted first; passing the
    previous scale keeps the grid stable across ADMM iterations.
    Returns ``(projected_weight, scale)``.
    """
    if scale <= 0.0:
        scale = layer_scale(weight, spec)
    return quantize(weight, spec, scale), scale


def quantization_error(weight: np.ndarray, spec: QuantizationSpec,
                       scale: float) -> float:
    """RMS error between a weight tensor and its projection."""
    q = quantize(weight, spec, scale)
    return float(np.sqrt(np.mean((weight - q) ** 2)))


def is_quantized(weight: np.ndarray, spec: QuantizationSpec, scale: float,
                 atol: float = 1e-6) -> bool:
    """True when every weight sits on the quantization grid."""
    return bool(np.allclose(weight, quantize(weight, spec, scale), atol=atol))


def activation_to_int(x: np.ndarray, bits: int, scale: float = 0.0) -> Tuple[np.ndarray, float]:
    """Quantize activations to unsigned ``bits``-bit integers.

    FORMS feeds 16-bit (or 8-bit) activations bit-serially; ReLU guarantees
    non-negativity, so the grid is unsigned.  Returns ``(ints, scale)``.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    x = np.maximum(x, 0.0)
    qmax = 2 ** bits - 1
    if scale <= 0.0:
        top = float(x.max())
        scale = top / qmax if top > 0.0 else 1.0
    ints = np.clip(np.rint(x / scale), 0, qmax).astype(np.int64)
    return ints, scale

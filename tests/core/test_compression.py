"""Crossbar counting and compression report tests."""

import numpy as np
import pytest

from repro.core import (CrossbarShape, FORMSConfig, QuantizationSpec,
                        crossbars_for_matrix, model_compression_report)
from repro.core.compression import SCHEME_COPIES, CompressionReport, LayerCompression
from repro.nn import Conv2d, Flatten, Linear, ReLU, Sequential, set_init_seed


class TestCrossbarsForMatrix:
    def test_exact_fit(self):
        xbar = CrossbarShape(128, 128)
        # 128 rows, 32 filters at 4 cells each = 128 columns -> 1 crossbar
        assert crossbars_for_matrix(128, 32, xbar, 4, "forms") == 1

    def test_ceiling_rows(self):
        xbar = CrossbarShape(128, 128)
        assert crossbars_for_matrix(129, 32, xbar, 4, "forms") == 2

    def test_ceiling_cols(self):
        xbar = CrossbarShape(128, 128)
        assert crossbars_for_matrix(128, 33, xbar, 4, "forms") == 2

    def test_dual_doubles(self):
        xbar = CrossbarShape(128, 128)
        base = crossbars_for_matrix(100, 10, xbar, 4, "forms")
        assert crossbars_for_matrix(100, 10, xbar, 4, "dual") == 2 * base
        assert crossbars_for_matrix(100, 10, xbar, 4, "splitting") == 2 * base

    def test_isaac_offset_single_copy(self):
        xbar = CrossbarShape(128, 128)
        assert (crossbars_for_matrix(10, 10, xbar, 4, "isaac_offset")
                == crossbars_for_matrix(10, 10, xbar, 4, "forms"))

    def test_more_cells_more_crossbars(self):
        xbar = CrossbarShape(128, 128)
        at8bit = crossbars_for_matrix(128, 128, xbar, 4, "forms")
        at32bit = crossbars_for_matrix(128, 128, xbar, 16, "forms")
        assert at32bit == 4 * at8bit

    def test_validation(self):
        xbar = CrossbarShape(128, 128)
        with pytest.raises(ValueError):
            crossbars_for_matrix(0, 1, xbar, 4)
        with pytest.raises(ValueError):
            crossbars_for_matrix(1, 1, xbar, 0)
        with pytest.raises(KeyError):
            crossbars_for_matrix(1, 1, xbar, 4, "unknown")
        with pytest.raises(ValueError):
            CrossbarShape(0, 128)


class TestReportMath:
    def _report(self):
        report = CompressionReport(baseline_bits=32, weight_bits=8, fragment_size=8)
        report.layers.append(LayerCompression(
            name="conv", rows=100, cols=50, live_rows=50, live_cols=25,
            baseline_crossbars=80, forms_crossbars=4))
        return report

    def test_layer_properties(self):
        layer = self._report().layers[0]
        assert layer.prune_ratio == 4.0
        assert layer.crossbar_reduction == 20.0

    def test_totals_and_factors(self):
        report = self._report()
        assert report.total_baseline_crossbars == 80
        assert report.crossbar_reduction == 20.0
        assert report.quantization_factor == 4.0
        assert report.polarization_factor == 2.0
        assert report.analytic_reduction() == 4.0 * 4.0 * 2.0

    def test_summary_keys(self):
        summary = self._report().summary()
        for key in ("prune_ratio", "crossbar_reduction", "analytic_reduction"):
            assert key in summary


class TestModelReport:
    def test_dense_model_decomposition(self):
        set_init_seed(9)
        model = Sequential(Conv2d(4, 8, 3, padding=1), ReLU(),
                           Flatten(), Linear(8 * 4, 6))
        spec = QuantizationSpec(8, 2)
        report = model_compression_report(model, 8, "w", spec,
                                          crossbar=CrossbarShape(16, 16))
        # Dense model: measured reduction equals quant x polarization
        # up to crossbar-ceiling effects.
        assert report.prune_ratio == 1.0
        assert report.crossbar_reduction >= report.quantization_factor
        assert report.crossbar_reduction <= report.analytic_reduction() * 2

    def test_reduction_grows_with_pruning(self):
        set_init_seed(9)
        model = Sequential(Conv2d(4, 8, 3, padding=1), Flatten(), Linear(8 * 4, 6))
        conv = model[0]
        dense = model_compression_report(model, 8, "w", QuantizationSpec(8, 2),
                                         crossbar=CrossbarShape(16, 16))
        conv.weight.data[:, 2:] = 0.0  # shape-prune half the rows
        pruned = model_compression_report(model, 8, "w", QuantizationSpec(8, 2),
                                          crossbar=CrossbarShape(16, 16))
        assert pruned.crossbar_reduction >= dense.crossbar_reduction

    def test_scheme_copies_constants(self):
        assert SCHEME_COPIES["forms"] == 1
        assert SCHEME_COPIES["dual"] == 2
        assert SCHEME_COPIES["splitting"] == 2

"""Live die-fault recovery through the serving stack, end to end.

The acceptance contract: a stuck-at fault flipped onto a live die
mid-traffic is detected by the checksum guards, the die is quarantined
and re-programmed through the shared die cache, the batch retries, and
every completed request is **bit-identical to the pre-fault serial
forward** while carrying an explicit recovery receipt.  A fault that
outlives the retry budget sheds the batch with ``fault_recovery``
receipts — never a silent wrong answer, never a hung future — and
``shutdown`` racing a recovery drains cleanly instead of deadlocking.
"""

import threading
import time

import numpy as np
import pytest

from repro.perf.suite import _post_relu_network
from repro.reram import ADCSpec, DeviceSpec, ReRAMDevice, paper_adc_bits
from repro.reram.faults import FaultEvent, FaultInjector
from repro.runtime import run_network_serial
from repro.serving import (DIE_HEALTHY, DIE_QUARANTINED, InferenceServer,
                           RequestShed, SHED_FAULT_RECOVERY)

RESULT_TIMEOUT_S = 30.0   # bounded waits: a timeout IS a hung future


@pytest.fixture(scope="module")
def network_case():
    model, config, images = _post_relu_network()
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    return model, config, images, device, adc


def make_server(network_case, **kwargs):
    model, config, images, device, adc = network_case
    kwargs.setdefault("detect_faults", True)
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait_s", 0.01)
    return InferenceServer.from_model(model, config, device, adc=adc,
                                      activation_bits=12, **kwargs)


def stuck_at(at_dispatch=0, **kwargs):
    kwargs.setdefault("sa0_rate", 0.05)
    kwargs.setdefault("sa1_rate", 0.02)
    return FaultEvent("stuck_at", at_dispatch=at_dispatch, **kwargs)


class TestRecoveryEndToEnd:
    def test_recovered_requests_bit_identical_with_receipts(
            self, network_case):
        images = network_case[2]
        injector = FaultInjector([stuck_at(at_dispatch=0)], seed=5)
        with make_server(network_case, fault_injector=injector) as server:
            serial = run_network_serial(server.model, images, tile_size=1)
            futures = [server.submit_async(images[i % images.shape[0]])
                       for i in range(8)]
            results = [f.result(timeout=RESULT_TIMEOUT_S) for f in futures]
            snapshot = server.server_stats()
            health = server.die_health.snapshot()

        assert snapshot["faults_detected"] >= 1
        assert snapshot["fault_recoveries"] >= 1
        assert snapshot["requests_recovered"] >= 1
        assert injector.pending == []
        recovered = [r for r in results if r.stats.recovery is not None]
        assert recovered, "the first dispatch rode the injected fault"
        for result in recovered:
            rec = result.stats.recovery
            assert rec["retries"] >= 1
            assert rec["detected_planes"] == ["main"] or rec["detected_planes"]
            assert rec["reprogram"]["via_die_cache"] is True
            assert sum(rec["stuck_cells"].values()) > 0
        # the whole point: recovery restored the exact pre-fault die
        for i, result in enumerate(results):
            np.testing.assert_array_equal(
                result.output, serial[i % images.shape[0]])
        # recovery completed: every die back to healthy, round trip counted
        assert all(state == DIE_HEALTHY
                   for state in health["dies"].values())
        assert health["recoveries"] >= 1
        transitions = [(e["from"], e["to"]) for e in health["events"]]
        assert ("healthy", "quarantined") in transitions
        assert ("reprogramming", "healthy") in transitions

    def test_receipt_serializes(self, network_case):
        images = network_case[2]
        injector = FaultInjector([stuck_at(at_dispatch=0)], seed=5)
        with make_server(network_case, fault_injector=injector) as server:
            result = server.submit_async(images[0]).result(
                timeout=RESULT_TIMEOUT_S)
        import json
        payload = result.stats.as_dict()
        assert payload["recovery"] is not None
        json.dumps(payload)   # receipts travel over the wire

    def test_retry_budget_exhaustion_sheds_with_receipts(self,
                                                         network_case):
        """max_fault_retries=0: the fault is detected, never recovered —
        every request sheds explicitly, no future hangs."""
        images = network_case[2]
        injector = FaultInjector([stuck_at(at_dispatch=0)], seed=5)
        with make_server(network_case, fault_injector=injector,
                         max_fault_retries=0) as server:
            futures = [server.submit_async(images[0]) for _ in range(3)]
            receipts = []
            for future in futures:
                with pytest.raises(RequestShed) as info:
                    future.result(timeout=RESULT_TIMEOUT_S)
                receipts.append(info.value.receipt)
            snapshot = server.server_stats()
            health = server.die_health.snapshot()
        assert all(r.reason == SHED_FAULT_RECOVERY for r in receipts)
        assert snapshot["shed_by_reason"][SHED_FAULT_RECOVERY] == 3
        assert snapshot["faults_detected"] >= 1
        assert snapshot["fault_recoveries"] == 0
        # the die stays quarantined: recovery could not hold
        assert DIE_QUARANTINED in health["dies"].values()

    def test_clean_traffic_records_no_fault_activity(self, network_case):
        images = network_case[2]
        with make_server(network_case) as server:
            serial = run_network_serial(server.model, images, tile_size=1)
            result = server.submit_async(images[0]).result(
                timeout=RESULT_TIMEOUT_S)
            snapshot = server.server_stats()
        np.testing.assert_array_equal(result.output, serial[0])
        assert result.stats.recovery is None
        assert snapshot["faults_detected"] == 0
        assert snapshot["fault_recoveries"] == 0

    def test_injector_without_guards_fails_loud_not_wrong(self,
                                                          network_case):
        """detect_faults=False + injected fault: outputs would be wrong,
        so this configuration is on the operator — but nothing hangs and
        the log shows what landed."""
        images = network_case[2]
        injector = FaultInjector([stuck_at(at_dispatch=0)], seed=5)
        with make_server(network_case, detect_faults=False,
                         fault_injector=injector) as server:
            result = server.submit_async(images[0]).result(
                timeout=RESULT_TIMEOUT_S)
        assert result is not None
        assert injector.log()[0]["stuck_cells_total"] > 0

    def test_validation(self, network_case):
        with pytest.raises(ValueError):
            make_server(network_case, max_fault_retries=-1)


class TestShutdownRace:
    def test_shutdown_racing_recovery_never_deadlocks(self, network_case):
        """Satellite: shutdown() while a die re-program is in flight on
        the batcher thread must wait the recovery out (or shed with
        receipts) — every future resolves, join() returns."""
        images = network_case[2]
        injector = FaultInjector([stuck_at(at_dispatch=0)], seed=5)
        server = make_server(network_case, fault_injector=injector)
        try:
            serial = run_network_serial(server.model, images, tile_size=1)
            futures = [server.submit_async(images[i % images.shape[0]])
                       for i in range(6)]
            # shut down from a second thread while the first dispatch is
            # (deterministically) inside the fault-recovery path
            closer = threading.Thread(target=server.shutdown)
            closer.start()
            closer.join(timeout=RESULT_TIMEOUT_S)
            assert not closer.is_alive(), "shutdown deadlocked"
            outcomes = []
            for i, future in enumerate(futures):
                try:
                    outcomes.append(future.result(timeout=RESULT_TIMEOUT_S))
                except RequestShed as exc:
                    # acceptable: drained with an explicit receipt
                    assert exc.receipt.reason
                    outcomes.append(None)
            for i, result in enumerate(outcomes):
                if result is not None:
                    np.testing.assert_array_equal(
                        result.output, serial[i % images.shape[0]])
            assert not server.batcher.is_alive()
        finally:
            server.shutdown()

"""The multi-tenant SLA serving contract, end to end.

Two models registered on one shared ``WorkerPool`` + ``DieCache`` serve
interleaved mixed-class traffic; every served output must be
**bit-identical** to a serial per-model single-image forward — read noise
on and off — and scheduling outcomes (deadline sheds, latency-bound
sheds, admission refusals) must never perturb the bits of surviving
requests.
"""

import time

import numpy as np
import pytest

from repro.perf.multitenant import drive_mixed_traffic, tenant_models
from repro.reram import ADCSpec, DeviceSpec, ReRAMDevice, paper_adc_bits
from repro.reram.nonideal import ReadNoise
from repro.reram.nonideal_engine import NonidealEngine
from repro.runtime import run_network_serial
from repro.serving import (SHED_ADMISSION, SHED_DEADLINE,
                           AdmissionController, InferenceServer,
                           ModelRegistry, PriorityClass, RequestShed,
                           SlaPolicy)

TWO_CLASS = SlaPolicy((PriorityClass("hi", max_batch=2, max_wait_s=0.001),
                       PriorityClass("lo", max_batch=4, max_wait_s=0.004)))


@pytest.fixture(scope="module")
def tenants():
    models, config, images = tenant_models(seed=0)
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    return models, config, images, device, adc


def make_registry(tenants, *, noise=False, workers=2):
    models, config, _, device, adc = tenants
    build = dict(adc=adc, activation_bits=12)
    if noise:
        spec = DeviceSpec()
        build.update(engine_cls=NonidealEngine,
                     read_noise=ReadNoise.for_fragment(
                         config.fragment_size, spec.g_max, spec.read_voltage,
                         relative_sigma=0.05, seed=3))
    registry = ModelRegistry(workers=workers)
    for name in ("fast", "batch"):
        registry.register(name, models[name], config, device, **build)
    return registry


def serial_per_model(registry, images):
    return {name: run_network_serial(registry.get(name).network, images,
                                     tile_size=1)
            for name in registry.names()}


class TestMixedTrafficBitIdentity:
    @pytest.mark.parametrize("noise", [False, True],
                             ids=["ideal", "read_noise"])
    def test_interleaved_classes_and_models(self, tenants, noise):
        """The acceptance matrix: two tenants, two classes, interleaved
        submissions — every output equals the serial per-model forward."""
        images = tenants[2]
        registry = make_registry(tenants, noise=noise)
        with registry, InferenceServer(registry=registry,
                                       policy=TWO_CLASS) as server:
            futures = []
            for i, image in enumerate(images):
                model = "fast" if i % 2 == 0 else "batch"
                priority = "hi" if i % 3 == 0 else "lo"
                deadline = 30.0 if priority == "hi" else None
                futures.append((model, i, server.submit_async(
                    image, model=model, priority=priority,
                    deadline_s=deadline)))
            results = [(m, i, f.result(timeout=30.0)) for m, i, f in futures]
            serial = serial_per_model(registry, images)
        for model, i, served in results:
            np.testing.assert_array_equal(served.output, serial[model][i])
            assert served.stats.model == model

    def test_batch_is_single_model(self, tenants):
        """Requests of different tenants never share a batch."""
        images = tenants[2]
        registry = make_registry(tenants)
        with registry, InferenceServer(registry=registry,
                                       policy=TWO_CLASS) as server:
            results = []
            for i, image in enumerate(images):
                model = "fast" if i % 2 == 0 else "batch"
                results.append((model, server.submit_async(image,
                                                           model=model)))
            resolved = [(m, f.result(timeout=30.0)) for m, f in results]
        batch_models = {}
        for model, served in resolved:
            batch_models.setdefault(served.stats.batch_id, set()).add(model)
        assert all(len(models) == 1 for models in batch_models.values())

    def test_mixed_driver_with_read_noise(self, tenants):
        """The perf driver's own bit-identity assertion holds under read
        noise (keyed substreams survive the multi-tenant scheduler)."""
        spec = DeviceSpec()
        noise = ReadNoise.for_fragment(8, spec.g_max, spec.read_voltage,
                                       relative_sigma=0.05, seed=3)
        driven = drive_mixed_traffic(300.0, 10, workers=2, seed=1,
                                     read_noise=noise)
        assert sum(r is not None for r in driven["served"]) >= 1


class TestSheddingIsolation:
    def test_deadline_miss_is_shed_never_dispatched(self, tenants):
        """A request whose deadline expires in queue gets the correct
        receipt and never reaches the dispatch path."""
        images = tenants[2]
        registry = make_registry(tenants, workers=1)
        policy = SlaPolicy((PriorityClass("only", max_batch=1,
                                          max_wait_s=0.0),))
        with registry, InferenceServer(registry=registry,
                                       policy=policy) as server:
            blockers = [server.submit_async(images[i % 8], model="batch")
                        for i in range(10)]
            time.sleep(0.02)        # the first dispatch is now in flight
            victim = server.submit_async(images[0], model="fast",
                                         deadline_s=1e-4)
            with pytest.raises(RequestShed) as info:
                victim.result(timeout=30.0)
            receipt = info.value.receipt
            assert receipt.reason == SHED_DEADLINE
            assert receipt.model == "fast"
            assert receipt.deadline_s == 1e-4
            assert receipt.queue_wait_s > 0.0
            served = [f.result(timeout=30.0) for f in blockers]
            snapshot = server.server_stats()
        # never dispatched: every completed receipt belongs to a blocker
        assert snapshot["requests_completed"] == len(blockers)
        assert snapshot["requests_shed"] == 1
        assert snapshot["shed_by_reason"] == {"deadline": 1}
        victim_id = receipt.request_id
        assert all(s.stats.request_id != victim_id for s in served)

    def test_shedding_one_class_never_perturbs_survivors(self, tenants):
        """Aggressively shedding the low class leaves the surviving
        requests' outputs bit-identical to serial forwards (and to a run
        with no shedding at all)."""
        images = tenants[2]
        requests = 20                      # enough backlog on one worker
        shedding = SlaPolicy((
            PriorityClass("hi", max_batch=2, max_wait_s=0.001),
            PriorityClass("lo", max_batch=4, max_wait_s=0.004,
                          shed_after_s=0.008),))

        def run(policy):
            registry = make_registry(tenants, workers=1)
            outcomes = {}
            with registry, InferenceServer(registry=registry,
                                           policy=policy) as server:
                futures = []
                for i in range(requests):
                    model = "fast" if i % 3 == 0 else "batch"
                    priority = "hi" if i % 3 == 0 else "lo"
                    futures.append((model, i, server.submit_async(
                        images[i % images.shape[0]], model=model,
                        priority=priority)))
                for model, i, future in futures:
                    try:
                        outcomes[i] = (model, future.result(timeout=30.0))
                    except RequestShed as exc:
                        outcomes[i] = (model, exc.receipt)
                serial = serial_per_model(registry, images)
            return outcomes, serial

        no_shed, serial = run(TWO_CLASS)
        shed_run, serial2 = run(shedding)
        assert all(hasattr(v[1], "output") for v in no_shed.values())
        survivors = {i: v for i, v in shed_run.items()
                     if hasattr(v[1], "output")}
        assert len(survivors) < requests   # the bound really shed traffic
        # every survivor is bit-identical to the serial forward and to
        # the run where nothing was shed
        for i, (model, served) in survivors.items():
            img = i % images.shape[0]
            np.testing.assert_array_equal(served.output, serial2[model][img])
            unshed_model, unshed = no_shed[i]
            np.testing.assert_array_equal(served.output, unshed.output)
        # the hi class is never shed by the lo class's bound
        for i, (model, outcome) in shed_run.items():
            if not hasattr(outcome, "output"):
                assert outcome.priority_class == "lo"

    def test_admission_refusal_is_immediate_and_isolated(self, tenants):
        images = tenants[2]
        registry = make_registry(tenants, workers=1)
        policy = SlaPolicy((PriorityClass("only", max_batch=1,
                                          max_wait_s=0.0),))
        admission = AdmissionController(max_queue_depth=2)
        with registry, InferenceServer(registry=registry, policy=policy,
                                       admission=admission) as server:
            futures = [server.submit_async(images[i % 8], model="batch")
                       for i in range(10)]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=30.0))
                except RequestShed as exc:
                    outcomes.append(exc.receipt)
            serial = serial_per_model(registry, images)
        refused = [o for o in outcomes if not hasattr(o, "output")]
        served = [(i, o) for i, o in enumerate(outcomes)
                  if hasattr(o, "output")]
        assert refused and served
        assert all(r.reason == SHED_ADMISSION for r in refused)
        assert all(r.queue_wait_s == 0.0 for r in refused)
        for i, result in served:
            np.testing.assert_array_equal(result.output,
                                          serial["batch"][i % 8])


class TestStatsAndLifecycle:
    def test_per_class_and_per_model_stats(self, tenants):
        images = tenants[2]
        registry = make_registry(tenants)
        with registry, InferenceServer(registry=registry,
                                       policy=TWO_CLASS) as server:
            for i, image in enumerate(images[:6]):
                server.submit(image, model="fast" if i % 2 else "batch",
                              priority="hi" if i % 2 else "lo")
            snapshot = server.server_stats()
        assert snapshot["per_class"]["hi"]["completed"] == 3
        assert snapshot["per_class"]["lo"]["completed"] == 3
        assert snapshot["per_model"]["fast"]["completed"] == 3
        assert snapshot["per_model"]["batch"]["completed"] == 3
        assert snapshot["per_class"]["hi"]["latency_p95_s"] > 0.0

    def test_unregister_never_fails_inflight_requests(self, tenants):
        """A request accepted before its tenant is unregistered is still
        served — dispatch uses the entry resolved at submit time."""
        images = tenants[2]
        registry = make_registry(tenants, workers=1)
        policy = SlaPolicy((PriorityClass("only", max_batch=1,
                                          max_wait_s=0.0),))
        with registry, InferenceServer(registry=registry,
                                       policy=policy) as server:
            network = registry.get("fast").network
            blockers = [server.submit_async(images[i % 8], model="batch")
                        for i in range(4)]
            victim = server.submit_async(images[0], model="fast")
            registry.unregister("fast")
            with pytest.raises(KeyError):
                server.submit_async(images[0], model="fast")  # new intake
            result = victim.result(timeout=30.0)
            for blocker in blockers:
                blocker.result(timeout=30.0)
        serial = run_network_serial(network, images[:1], tile_size=1)
        np.testing.assert_array_equal(result.output, serial[0])

    def test_caller_owned_registry_left_open(self, tenants):
        images = tenants[2]
        registry = make_registry(tenants, workers=2)
        with registry:
            with InferenceServer(registry=registry,
                                 policy=TWO_CLASS) as server:
                server.submit(images[0], model="fast")
            # the server is gone; the registry (and its pool) live on
            assert registry.pool.map(lambda x: x * 2, [1, 2]) == [2, 4]
            assert "fast" in registry

    def test_single_model_server_accepts_sla_kwargs(self, tenants):
        """The FIFO special case still understands deadlines: a lone
        request with a generous deadline is served normally."""
        models, config, images, device, adc = tenants
        with InferenceServer.from_model(models["fast"], config, device,
                                        adc=adc, activation_bits=12,
                                        workers=1) as server:
            result = server.submit(images[0], deadline_s=30.0)
            serial = run_network_serial(server.model, images[:1],
                                        tile_size=1)
        np.testing.assert_array_equal(result.output, serial[0])
        assert result.stats.priority_class == "default"
        assert result.stats.deadline_s == 30.0

    def test_registry_and_pool_conflict_rejected(self, tenants):
        registry = make_registry(tenants, workers=1)
        with registry:
            with pytest.raises(ValueError, match="travel with the registry"):
                InferenceServer(registry=registry, workers=4)
        with pytest.raises(ValueError, match="exactly one"):
            InferenceServer()

    def test_unknown_model_and_class_rejected_at_submit(self, tenants):
        images = tenants[2]
        registry = make_registry(tenants, workers=1)
        with registry, InferenceServer(registry=registry,
                                       policy=TWO_CLASS) as server:
            with pytest.raises(KeyError, match="not registered"):
                server.submit_async(images[0], model="ghost")
            with pytest.raises(KeyError, match="unknown priority class"):
                server.submit_async(images[0], model="fast",
                                    priority="platinum")
            with pytest.raises(ValueError, match="deadline_s"):
                server.submit_async(images[0], model="fast", deadline_s=0.0)

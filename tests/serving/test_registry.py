"""ModelRegistry: tenant table, shared pool, cross-model die dedup."""

import numpy as np
import pytest

from repro.perf.multitenant import tenant_models
from repro.reram import (ADCSpec, DeviceSpec, DieCache, ReRAMDevice,
                         paper_adc_bits)
from repro.runtime import WorkerPool, run_network_serial
from repro.serving import ModelRegistry


@pytest.fixture(scope="module")
def tenants():
    models, config, images = tenant_models(seed=0)
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    return models, config, images, device, adc


def register(registry, name, tenants, model_key="fast"):
    models, config, _, device, adc = tenants
    return registry.register(name, models[model_key], config, device,
                             adc=adc, activation_bits=12)


class TestTenantTable:
    def test_register_get_unregister(self, tenants):
        with ModelRegistry(workers=1) as registry:
            entry = register(registry, "a", tenants)
            assert entry.name == "a"
            assert len(entry.engines) > 0
            assert registry.get("a") is entry
            assert registry.get(None) is entry          # sole model
            assert "a" in registry
            assert registry.names() == ["a"]
            assert len(registry) == 1
            assert registry.unregister("a") is entry
            assert "a" not in registry

    def test_duplicate_name_rejected(self, tenants):
        with ModelRegistry(workers=1) as registry:
            register(registry, "a", tenants)
            with pytest.raises(ValueError, match="already registered"):
                register(registry, "a", tenants)

    def test_lookup_errors(self, tenants):
        with ModelRegistry(workers=1) as registry:
            with pytest.raises(KeyError, match="not registered"):
                registry.get("ghost")
            with pytest.raises(KeyError):
                registry.unregister("ghost")
            register(registry, "a", tenants)
            register(registry, "b", tenants, model_key="batch")
            with pytest.raises(ValueError, match="name one explicitly"):
                registry.get(None)                      # ambiguous

    def test_register_network_adopts_callable(self):
        with ModelRegistry(workers=1) as registry:
            entry = registry.register_network("fn", lambda t: t,
                                              image_shape=(2, 3))
            assert registry.get("fn") is entry
            assert entry.engines == {}
            assert entry.image_shape == (2, 3)

    def test_empty_name_rejected(self):
        with ModelRegistry(workers=1) as registry:
            with pytest.raises(ValueError, match="non-empty"):
                registry.register_network("", lambda t: t)


class TestShapesAndWarmup:
    def test_warm_up_pins_shape_and_matches_serial(self, tenants):
        models, config, images, device, adc = tenants
        with ModelRegistry(workers=1) as registry:
            entry = register(registry, "a", tenants)
            out = registry.warm_up("a", images[0])
            assert entry.warmed
            assert entry.image_shape == images[0].shape
            serial = run_network_serial(entry.network, images[:1],
                                        tile_size=1)
            np.testing.assert_array_equal(out, serial[0])

    def test_pin_shape_mismatch_rejected(self, tenants):
        images = tenants[2]
        with ModelRegistry(workers=1) as registry:
            entry = register(registry, "a", tenants)
            registry.pin_shape(entry, images[0].shape)
            with pytest.raises(ValueError, match="does not match"):
                registry.pin_shape(entry, images[0].shape + (1,))

    def test_per_model_shapes_are_independent(self, tenants):
        with ModelRegistry(workers=1) as registry:
            a = register(registry, "a", tenants)
            b = register(registry, "b", tenants, model_key="batch")
            registry.pin_shape(a, (1, 16, 16))
            registry.pin_shape(b, (1, 8, 8))      # other tenant, other shape
            assert a.image_shape != b.image_shape


class TestDieDedup:
    def test_replica_tenant_hits_the_cache(self, tenants):
        """Two tenants over identical weights program dies once — the
        cross-model dedup the registry exists to exercise."""
        with ModelRegistry(workers=1) as registry:
            register(registry, "a", tenants)
            stats = registry.stats()
            misses = stats["die_cache"]["misses"]
            assert stats["die_cache"]["hits"] == 0
            register(registry, "a-replica", tenants)
            stats = registry.stats()
            assert stats["die_cache"]["misses"] == misses     # no new dies
            assert stats["die_cache"]["hits"] > 0
            assert stats["die_cache"]["unique_dies"] < stats["engines_total"]

    def test_distinct_tenants_do_not_alias(self, tenants):
        with ModelRegistry(workers=1) as registry:
            register(registry, "a", tenants)
            misses = registry.stats()["die_cache"]["misses"]
            register(registry, "b", tenants, model_key="batch")
            assert registry.stats()["die_cache"]["misses"] > misses

    def test_shared_cache_across_registries(self, tenants):
        cache = DieCache()
        with ModelRegistry(workers=1, die_cache=cache) as first:
            register(first, "a", tenants)
        misses = cache.misses
        with ModelRegistry(workers=1, die_cache=cache) as second:
            register(second, "a", tenants)
        assert cache.misses == misses
        assert cache.hits >= misses

    def test_stats_shape(self, tenants):
        with ModelRegistry(workers=2) as registry:
            register(registry, "a", tenants)
            stats = registry.stats()
            assert stats["workers"] == 2
            assert stats["models"]["a"]["layers"] == len(
                registry.get("a").engines)
            assert stats["models"]["a"]["warmed"] is False


class TestPoolOwnership:
    def test_borrowed_pool_left_open(self):
        with WorkerPool(2) as pool:
            registry = ModelRegistry(pool=pool)
            registry.register_network("fn", lambda t: t)
            registry.close()
            assert pool.map(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_owned_pool_closed(self):
        registry = ModelRegistry(workers=2)
        assert registry.pool.workers == 2
        registry.close()
        assert registry.pool._executor is None

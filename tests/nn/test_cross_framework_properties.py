"""Cross-cutting property tests tying the substrate layers together.

These verify identities the rest of the repo silently relies on: im2col
lowering agreeing with layer forward passes, fragment geometry commuting with
the polarization input permutation, and the training loop respecting
determinism guarantees.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FragmentGeometry
from repro.nn import Adam, Conv2d, Linear, Tensor, fit, set_init_seed
from repro.nn import functional as F
from repro.nn.data import make_synthetic


class TestConvIm2colIdentity:
    @given(st.integers(1, 3), st.integers(1, 2), st.integers(0, 1))
    @settings(max_examples=15, deadline=None)
    def test_conv_forward_equals_matrix_product(self, out_ch, stride, padding):
        """conv2d(x, W) == H^T @ im2col(x) with H the Fig. 2 weight matrix —
        the identity that lets fragments act on both weights and inputs."""
        rng = np.random.default_rng(out_ch * 10 + stride)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(out_ch + 1, 3, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, stride=stride, padding=padding)
        cols = F.im2col(x, 3, 3, stride, padding)
        matrix = w.reshape(w.shape[0], -1).T       # (rows, filters)
        product = matrix.T @ cols                  # (filters, positions)
        n, oc, oh, ow = out.shape
        restacked = out.data.transpose(1, 2, 3, 0).reshape(oc, -1)
        np.testing.assert_allclose(restacked, product, rtol=1e-5, atol=1e-6)

    @given(st.sampled_from(["w", "h", "c"]), st.integers(1, 8))
    @settings(max_examples=15, deadline=None)
    def test_policy_permutation_preserves_products(self, policy, m):
        """Permuting weight-matrix rows and input rows together is a no-op on
        the layer output — why polarization policies cost no hardware."""
        rng = np.random.default_rng(m)
        w = rng.normal(size=(4, 2, 3, 3))
        geometry = FragmentGeometry(w.shape, m, policy)
        matrix = geometry.matrix(w)
        x = rng.normal(size=(geometry.rows, 5))
        perm = geometry.input_permutation()
        x_ordered = x if perm is None else x[perm]
        np.testing.assert_allclose(matrix.T @ x_ordered,
                                   w.reshape(4, -1) @ x, rtol=1e-8)


class TestDeterminism:
    def test_training_fully_deterministic(self):
        train, _ = make_synthetic("det", 3, 1, 8, 64, 16, seed=3)

        def run():
            set_init_seed(99)
            model = Conv2d(1, 2, 3, padding=1)
            head = Linear(2 * 8 * 8, 3)
            set_init_seed(100)
            full = _TinyNet(model, head)
            fit(full, train, Adam(full.parameters(), 1e-3), epochs=2,
                batch_size=16, seed=5)
            return full.head.weight.data.copy()

        np.testing.assert_array_equal(run(), run())

    def test_dataset_generation_isolated_from_global_state(self):
        np.random.seed(0)
        a, _ = make_synthetic("iso", 3, 1, 8, 16, 8, seed=1)
        np.random.seed(12345)
        b, _ = make_synthetic("iso", 3, 1, 8, 16, 8, seed=1)
        np.testing.assert_array_equal(a.images, b.images)


class _TinyNet:
    """Minimal two-layer module graph used by the determinism test."""

    def __init__(self, conv, head):
        from repro.nn import Module, Sequential, Flatten, ReLU
        self.net = Sequential(conv, ReLU(), Flatten(), head)
        self.head = head

    def __call__(self, x):
        return self.net(x)

    def parameters(self):
        return self.net.parameters()

    def train(self, mode=True):
        return self.net.train(mode)

    def eval(self):
        return self.net.eval()

    @property
    def training(self):
        return self.net.training

"""Bit-serial in-situ computation engine (paper Figs. 5, 11, 12).

:class:`InSituLayerEngine` executes one layer's matrix-vector products the way
the hardware does:

1. activations arrive as unsigned integers; each cycle the DACs drive one bit
   of every input onto the word lines (LSB first);
2. each fragment's column current is sampled, pedestal-corrected and
   digitized by the fragment's ADC;
3. shift-and-add recombines cell slices (x4 for 8-bit weights on 2-bit cells)
   and input bits (x2 per cycle);
4. the accumulation block adds or subtracts the fragment result according to
   the sign-indicator bit (FORMS), applies the offset correction (ISAAC), or
   subtracts the negative-plane result (PRIME dual);
5. fragment results accumulate into the layer output.

With ideal devices and sufficiently wide ADCs the engine reproduces the
integer matmul **exactly** — the anchor correctness property of the simulator
(see ``tests/reram/test_engine.py``).  With device variation or undersized
ADCs, the deviation is the physically meaningful error the paper's Table VI
and our ADC ablation measure.

Simulation strategy
-------------------
The hardware is bit-serial, but the simulator is not: :meth:`matvec_int`
decomposes the whole integer activation block into a ``(bits, n_frag, m,
positions)`` bit-plane tensor up front, drops the (bit-plane, fragment) pairs
that are all zero — the simulator-side image of the zero-skip shift
registers — and evaluates every surviving bit-cycle of every fragment in a
handful of fused ``einsum`` contractions (the dual scheme's positive and
negative planes ride the same contraction).  This is the fragment-level
parallelism the paper claims as throughput, exploited as array-level
parallelism.  The original cycle-by-cycle loop survives as
:meth:`matvec_int_reference`, the forever-testable bit-exactness oracle.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.fragments import FragmentGeometry
from ..core.quantization import QuantizationSpec
from .bitslice import slice_weights
from .converters import ADCSpec, DACSpec, SampleHold, required_adc_bits
from .device import ReRAMDevice
from .mapping import MappedLayer, map_layer

#: per-kernel-call element budget of the fused bit-plane contraction
#: (elements of the ``(jobs, positions, cols, slices)`` current tensor).
#: Chunking along the jobs axis bounds peak memory *and* keeps each
#: einsum -> pedestal -> ADC -> recombine pipeline stage cache-resident;
#: 2**18 elements (2 MiB of float64) measures fastest on the elementwise-
#: bound analog path.  Changing it never changes any result.
FUSED_KERNEL_MAX_ELEMENTS = 1 << 18


class SignIndicator:
    """1R array holding one sign bit per fragment (paper Fig. 5).

    The accumulation block consults it to run its adder in add or subtract
    mode; cost-wise it is a single resistive cell per fragment (Table III's
    0.012 mW / 3.1e-6 mm2 row).
    """

    def __init__(self, signs: np.ndarray):
        signs = np.asarray(signs)
        if not np.isin(signs, (-1.0, 1.0)).all():
            raise ValueError("signs must be +1/-1")
        self.bits = (signs < 0).astype(np.int8)  # 1 encodes negative

    def apply(self, fragment_values: np.ndarray) -> np.ndarray:
        """Negate values of fragments whose sign bit is set.

        ``fragment_values`` shaped ``(n_frag, cols, ...)`` — the leading two
        axes must match the sign array.
        """
        signs = np.where(self.bits == 1, -1, 1).astype(fragment_values.dtype)
        extra = fragment_values.ndim - signs.ndim
        return fragment_values * signs.reshape(signs.shape + (1,) * extra)


@dataclass
class EngineStats:
    """Non-ideality and throughput accounting of one engine run.

    ``conversions`` / ``cycles_fed`` keep the hardware's view: every
    bit-cycle up to the highest live bit is fed and every fed cycle converts
    every fragment column (zero planes included), exactly as the original
    per-bit loop counted them.  ``jobs_computed`` / ``jobs_skipped`` expose
    the simulator's view: how many (bit-plane, fragment) kernel jobs the
    fused engine actually evaluated versus masked out as all-zero.
    """

    conversions: int = 0
    saturated: int = 0
    cycles_fed: int = 0
    jobs_computed: int = 0
    jobs_skipped: int = 0

    @property
    def saturation_fraction(self) -> float:
        return self.saturated / self.conversions if self.conversions else 0.0

    @property
    def skip_fraction(self) -> float:
        """Fraction of kernel jobs eliminated by bit-plane/fragment masking."""
        total = self.jobs_computed + self.jobs_skipped
        return self.jobs_skipped / total if total else 0.0

    def merge(self, other: "EngineStats") -> None:
        self.conversions += other.conversions
        self.saturated += other.saturated
        self.cycles_fed += other.cycles_fed
        self.jobs_computed += other.jobs_computed
        self.jobs_skipped += other.jobs_skipped


class DieCache:
    """Memoizes programmed conductance planes across engine constructions.

    Sweeps (ADC sizing, fragment ablations, design-space exploration) build
    many engines over the *same* weight codes and the *same* device
    configuration; re-programming a fresh die for each is the dominant setup
    cost and — for deterministic (``variation_sigma == 0``) devices — pure
    waste.  The cache keys on the device identity (spec, sigma, seed) and a
    content hash of the code plane, so identical ``(codes, device-seed)``
    pairs share one programmed die.

    For noisy devices this deliberately changes semantics from "a fresh die
    per engine" to "one die reused across the sweep" — which is what
    block-wise mixed-precision sweeps need to be affordable (and what a real
    lab would do: program once, measure many).  Devices constructed without
    a seed draw irreproducible variation, so they are keyed by object
    identity instead and only share dies with themselves.
    """

    def __init__(self, maxsize: Optional[int] = 64):
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1 (or None for unbounded)")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._planes: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._planes)

    @staticmethod
    def _device_key(device: ReRAMDevice) -> Tuple:
        seed = getattr(device, "seed", None)
        if seed is None and device.variation_sigma > 0.0:
            # Key on the object itself (identity hash): the cache entry then
            # pins the device alive, so a freed address can never alias two
            # different anonymous devices.
            return ("anon", device)
        return (device.spec, device.variation_sigma, seed)

    @staticmethod
    def _codes_key(codes: np.ndarray) -> Tuple:
        codes = np.ascontiguousarray(codes)
        digest = hashlib.sha1(codes.tobytes()).hexdigest()
        return (codes.shape, str(codes.dtype), digest)

    def get_or_program(self, device: ReRAMDevice, codes: np.ndarray) -> np.ndarray:
        """Return the programmed conductances for ``codes``, caching the die.

        Cached dies of noisy *seeded* devices are programmed from an RNG
        derived deterministically from ``(device seed, codes)``, so a
        re-program after LRU eviction reproduces the identical die — the
        one-die-per-(codes, device-seed) guarantee survives any eviction
        order.  (Unseeded devices draw from their own stream; they are keyed
        by identity and irreproducible by definition.)
        """
        codes_key = self._codes_key(codes)
        key = (self._device_key(device), codes_key)
        plane = self._planes.get(key)
        if plane is not None:
            self.hits += 1
            self._planes.move_to_end(key)
            return plane
        self.misses += 1
        seed = getattr(device, "seed", None)
        if device.variation_sigma > 0.0 and seed is not None:
            digest = int(codes_key[-1][:16], 16)
            rng = np.random.default_rng(
                np.random.SeedSequence([int(seed), digest]))
            plane = device.program(codes, rng=rng)
        else:
            plane = device.program(codes)
        self._planes[key] = plane
        if self.maxsize is not None and len(self._planes) > self.maxsize:
            self._planes.popitem(last=False)
        return plane

    def clear(self) -> None:
        self._planes.clear()


class InSituLayerEngine:
    """Computes ``levels.T @ x`` for one mapped layer via crossbar simulation.

    Parameters
    ----------
    mapped:
        Output of :func:`repro.reram.mapping.map_layer` for any scheme.
    device:
        The ReRAM population (carries variation).  Each engine instance
        programs its own die unless a ``die_cache`` is supplied.
    adc:
        ADC spec; ``None`` sizes it exactly for the worst-case fragment sum
        (the configuration under which the engine is exact).
    activation_bits:
        Input bit width (paper: 16, with 8 also evaluated).
    die_cache:
        Optional :class:`DieCache`; identical ``(codes, device)`` pairs then
        reuse one programmed die instead of re-programming per engine.
    """

    def __init__(self, mapped: MappedLayer, device: ReRAMDevice,
                 adc: Optional[ADCSpec] = None, activation_bits: int = 16,
                 die_cache: Optional[DieCache] = None):
        if activation_bits < 1:
            raise ValueError("activation_bits must be >= 1")
        self.mapped = mapped
        self.device = device
        self.activation_bits = activation_bits
        spec = mapped.spec
        geometry = mapped.geometry
        if adc is None:
            adc = ADCSpec(bits=required_adc_bits(geometry.fragment_size, spec.cell_bits))
        self.adc = adc
        self.dac = DACSpec()
        self.sample_hold = SampleHold()
        self.sign_indicator = (SignIndicator(mapped.signs)
                               if mapped.signs is not None else None)
        # Program one conductance plane per code plane (a fresh die each,
        # unless the die cache already holds this (codes, device) pair).
        program = (device.program if die_cache is None
                   else lambda codes: die_cache.get_or_program(device, codes))
        self.conductance: Dict[str, np.ndarray] = {
            plane: program(codes) for plane, codes in mapped.code_planes.items()
        }
        # Per-engine constants of the signal path, hoisted out of the per-
        # cycle loop: shift-and-add place values and the pedestal-correction
        # terms of repro.reram.device.codes_to_digital.
        dev = device.spec
        self._place = slice_weights(mapped.slices, spec.cell_bits)
        self._v_g_min = dev.read_voltage * dev.g_min
        self._v_g_step = dev.read_voltage * dev.g_step
        self._inv_v_g_step = 1.0 / self._v_g_step
        if mapped.scheme == "dual":
            self._plane_terms = (("positive", 1), ("negative", -1))
        else:
            self._plane_terms = (("main", 1),)
        # Constants of the exact-matmul shortcut, built lazily on the first
        # ideal-tier dispatch: engines that can never take an ideal tier
        # (noisy die, analog physics) must not pay for them per
        # construction — that would undo exactly the setup cost DieCache
        # eliminates across sweeps.
        self._exact_tier: Optional[Tuple[int, np.ndarray, np.ndarray, bool]] = None
        self.stats = EngineStats()

    def _exact_tier_constants(self) -> Tuple[int, np.ndarray, np.ndarray, bool]:
        """(plane headroom, effective stacks, matmul-exactness) — cached.

        *Headroom* is the worst-case per-conversion partial sum (all input
        bits on); when it fits the ADC, clipping is provably impossible.
        The *effective weight stack* folds slice recombination, fragment
        signs and plane signs into one (padded_rows, cols) integer matrix,
        with a float64 copy for the BLAS product — exact while every
        partial sum is an integer below 2**53, else the int64 product runs.
        """
        if self._exact_tier is None:
            mapped = self.mapped
            headroom = max(int(codes.sum(axis=1).max(initial=0))
                           for codes in mapped.code_planes.values())
            eff = np.zeros(mapped.code_planes[self._plane_terms[0][0]].shape[:3],
                           dtype=np.int64)
            for plane, sign in self._plane_terms:
                eff += sign * (mapped.code_planes[plane] * self._place).sum(axis=-1)
            if self.sign_indicator is not None:
                eff *= np.where(self.sign_indicator.bits == 1, -1, 1
                                ).astype(np.int64)[:, None, :]
            stack_int = eff.reshape(-1, mapped.geometry.cols)
            worst = (mapped.geometry.padded_rows
                     * int(np.abs(eff).max(initial=0))
                     * ((1 << self.activation_bits) - 1))
            self._exact_tier = (headroom, stack_int.astype(np.float64),
                                stack_int, worst < (1 << 53))
        return self._exact_tier

    # ------------------------------------------------------------------
    # Shared signal-path pieces
    # ------------------------------------------------------------------
    def _job_currents(self, conductance: np.ndarray,
                      drive: np.ndarray) -> np.ndarray:
        """Analog bit-line currents for a batch of fragment reads.

        ``conductance``: (jobs, m, cols, slices); ``drive``: (jobs, m,
        positions) word-line levels.  Returns (jobs, positions, cols,
        slices).  The single override point for physics
        (:class:`~repro.reram.nonideal_engine.NonidealEngine` adds IR drop
        and read noise here).
        """
        return self.device.spec.read_voltage * np.einsum(
            "jmp,jmcs->jpcs", drive, conductance, optimize=True)

    def _convert_batch(self, held: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Pedestal-correct and ADC-convert one current batch.

        ``held``: (jobs, positions, cols, slices) sampled currents;
        ``active``: (jobs, positions) count of driven rows.  Returns digital
        slice codes (jobs, positions, cols, slices).  Saturation accounting
        covers both ADC rails: overflow past the full-scale code and
        underflow below zero (reachable with read noise / IR drop).
        """
        analog = (held - self._v_g_min * active[:, :, None, None]) * self._inv_v_g_step
        digital, saturated = self.adc.digitize(analog)
        self.stats.conversions += digital.size
        self.stats.saturated += saturated
        return digital

    def _digitize(self, held: np.ndarray, active: np.ndarray) -> np.ndarray:
        """:meth:`_convert_batch` plus shift-and-add slice recombination.

        Returns digital fragment values (jobs, positions, cols).
        """
        digital = self._convert_batch(held, active)
        return np.einsum("jpcs,s->jpc", digital, self._place)

    def _plane_pass(self, plane: str, bits_stack: np.ndarray) -> np.ndarray:
        """One bit-cycle through one conductance plane (reference path).

        ``bits_stack``: (n_frag, m, positions) of 0/1.
        Returns digital fragment values (n_frag, positions, cols) after ADC
        and slice recombination.
        """
        drive = self.dac.convert(bits_stack)
        currents = self._job_currents(self.conductance[plane], drive)
        held = self.sample_hold.hold(currents, copy=False)
        active = bits_stack.sum(axis=1)                    # (n_frag, positions)
        return self._digitize(held, active)

    # ------------------------------------------------------------------
    # Input preparation
    # ------------------------------------------------------------------
    def _prepare(self, x_int: np.ndarray) -> np.ndarray:
        """Validate and fragment-stack one activation block.

        Returns the padded stack ``(n_frag, m, positions)`` as int64.
        """
        x_int = np.asarray(x_int)
        if not np.issubdtype(x_int.dtype, np.integer):
            raise TypeError("engine inputs must be integer activations")
        geometry = self.mapped.geometry
        if x_int.ndim == 1:
            x_int = x_int[:, None]
        if x_int.shape[0] != geometry.rows:
            raise ValueError(f"input rows {x_int.shape[0]} != matrix rows {geometry.rows}")
        if x_int.min(initial=0) < 0 or x_int.max(initial=0) >= (1 << self.activation_bits):
            raise ValueError(f"inputs outside unsigned {self.activation_bits}-bit range")
        positions = x_int.shape[1]
        pad = geometry.padded_rows - geometry.rows
        if pad:
            x_int = np.vstack([x_int, np.zeros((pad, positions), dtype=x_int.dtype)])
        return x_int.reshape(geometry.fragments_per_column,
                             geometry.fragment_size, positions).astype(np.int64)

    def _offset_correction(self, stacked: np.ndarray, out: np.ndarray) -> np.ndarray:
        """ISAAC digital 1-count correction: the stored bias contributes
        ``offset * sum(inputs)`` to every column (paper Sec. II-B)."""
        if self.mapped.scheme == "isaac_offset":
            input_totals = stacked.sum(axis=(0, 1))
            out = out - self.mapped.offset * input_totals[None, :]
        return out

    # ------------------------------------------------------------------
    # Fused bit-plane kernel (the fast path)
    # ------------------------------------------------------------------
    def _analog_model_active(self) -> bool:
        """Whether any stochastic/analog effect acts on the signal path."""
        return False

    def _conversion_noise_active(self) -> bool:
        """Whether an all-zero drive pattern can still convert to non-zero.

        True only with read noise: the ADC's zero rail rectifies zero-mean
        noise into a positive pedestal, so even silent fragments contribute.
        The fused kernel must then feed the full job grid instead of masking
        all-zero jobs (deterministic effects — IR drop, variation — map zero
        drive to zero current exactly, so masking stays lossless for them).
        """
        return False

    def _job_memory_factor(self, m: int) -> int:
        """Per-job memory multiplier of ``_job_currents`` beyond the current
        tensor itself — used to scale the kernel chunk budget.  The base
        einsum read allocates nothing extra; the batched IR-drop solver
        overrides this (several ``m``-row intermediates per job)."""
        return 1

    def _signal_path_ideal(self) -> bool:
        """True when every conversion provably equals the integer dot product.

        Requires a variation-free die, no analog physics, and a
        ``_job_currents`` that is known to reduce to the ideal read.  The
        float signal path then round-trips integers with error orders of
        magnitude below the ADC's rounding threshold, so the integer
        shortcut tiers produce bit-identical results.
        """
        if self.device.variation_sigma != 0.0 or self._analog_model_active():
            return False
        impl = type(self)._job_currents
        return (impl is InSituLayerEngine._job_currents
                or getattr(impl, "_ideal_when_inactive", False))

    def matvec_int(self, x_int: np.ndarray) -> np.ndarray:
        """Integer MVM: returns ``(cols, positions)`` given ``(rows, positions)``.

        ``x_int`` holds unsigned ``activation_bits``-bit integers in im2col
        layout, rows already permuted to the layer's polarization policy.

        All bit-cycles are evaluated through the fused bit-plane kernel;
        (bit-plane, fragment) pairs with no live bits are masked out before
        the contraction (zero-skipping at fragment granularity).  Three
        tiers share the stats accounting and are all bit-exact against
        :meth:`matvec_int_reference` — the anchor property:

        * **exact matmul** — ideal signal path *and* an ADC wide enough that
          clipping is impossible: the bit-serial pipeline telescopes into
          one matmul against the pre-combined effective weight stack;
        * **integer kernel** — ideal signal path with a clipping ADC: the
          per-conversion dot products are computed in integer arithmetic and
          clipped/counted exactly as the ADC would;
        * **analog kernel** — any analog non-ideality (variation, IR drop,
          read noise): the full float signal path, fused over job batches.
        """
        stacked = self._prepare(x_int)
        geometry = self.mapped.geometry
        n_frag, m, positions = stacked.shape
        cols = geometry.cols
        slices = self.mapped.slices
        n_planes = len(self._plane_terms)

        out = np.zeros((cols, positions), dtype=np.int64)
        n_bits = int(stacked.max(initial=0)).bit_length()
        if n_bits == 0:
            return self._offset_correction(stacked, out)

        # (bits, n_frag, m, positions) bit-plane tensor, LSB first.
        shifts = np.arange(n_bits, dtype=np.int64)
        planes = ((stacked[None, ...] >> shifts[:, None, None, None]) & 1
                  ).astype(np.uint8)

        # Zero-skipping as masking: keep only (bit, fragment) jobs with at
        # least one live bit.  The hardware still clocks every cycle up to
        # the top live bit, so cycle/conversion accounting stays on the
        # hardware's terms (identical to the per-bit reference loop).  With
        # conversion noise the mask must stay full: silent fragments still
        # convert, and the ADC rectifies their noise into a real pedestal.
        if self._conversion_noise_active():
            live = np.ones((n_bits, n_frag), dtype=bool)
        else:
            live = planes.any(axis=(2, 3))
        bits_idx, frag_idx = np.nonzero(live)
        n_jobs = bits_idx.size
        self.stats.cycles_fed += n_bits
        self.stats.jobs_computed += n_jobs * n_planes
        self.stats.jobs_skipped += (n_bits * n_frag - n_jobs) * n_planes
        self.stats.conversions += ((n_bits * n_frag - n_jobs)
                                   * positions * cols * slices * n_planes)

        ideal = self._signal_path_ideal()
        if ideal:
            headroom, stack_f, stack_i, matmul_exact = self._exact_tier_constants()
            if headroom <= self.adc.max_code:
                # Exact-matmul tier: no conversion can clip (the worst-case
                # fragment partial sum fits the ADC), so slice recombination,
                # bit recombination, fragment signs and plane signs telescope
                # into one matmul against the effective weight stack.
                self.stats.conversions += (n_jobs * positions * cols * slices
                                           * n_planes)
                flat = stacked.reshape(n_frag * m, positions)
                if matmul_exact:
                    out += np.rint(stack_f.T @ flat.astype(np.float64)
                                   ).astype(np.int64)
                else:  # exactness bound exceeded: integer contraction instead
                    out += stack_i.T @ flat
                return self._offset_correction(stacked, out)

        # Per-(job, slice) shift-and-add weights: ADC place value x input-bit
        # place value x plane sign — and per-(job, col) fragment signs.  All
        # digital recombination collapses into one integer contraction per
        # chunk, so no (bits, n_frag, positions, cols) accumulator is ever
        # materialized.
        bit_weight = (np.int64(1) << bits_idx.astype(np.int64))    # (n_jobs,)
        if self.sign_indicator is not None:
            frag_signs = np.where(self.sign_indicator.bits == 1, -1, 1
                                  ).astype(np.int64)               # (F, C)
        else:
            frag_signs = None

        acc = np.zeros((positions, cols), dtype=np.int64)
        per_job = max(1, positions * cols * slices * n_planes
                      * self._job_memory_factor(m))
        chunk = max(1, FUSED_KERNEL_MAX_ELEMENTS // per_job)
        for start in range(0, n_jobs, chunk):
            b = bits_idx[start:start + chunk]
            f = frag_idx[start:start + chunk]
            j = b.size
            bit_planes = planes[b, f]                      # (j, m, positions)
            slice_w = bit_weight[start:start + j, None] * self._place[None, :]
            col_w = frag_signs[f] if frag_signs is not None else None
            if n_planes > 1:
                # Dual scheme: positive and negative planes share one kernel
                # call, stacked along the jobs axis with opposite signs.
                slice_w = np.concatenate(
                    [sign * slice_w for _, sign in self._plane_terms])
                if col_w is not None:
                    col_w = np.concatenate([col_w] * n_planes)
            if ideal:
                # Integer kernel tier: each conversion is the integer dot
                # product, clipped at the rails exactly as the ADC rounds.
                codes = (self.mapped.code_planes[self._plane_terms[0][0]][f]
                         if n_planes == 1 else np.concatenate(
                             [self.mapped.code_planes[name][f]
                              for name, _ in self._plane_terms]))
                bits_in = (bit_planes if n_planes == 1
                           else np.concatenate([bit_planes] * n_planes))
                dots = np.einsum("jmp,jmcs->jpcs", bits_in, codes,
                                 optimize=True)
                digital = np.clip(dots, 0, self.adc.max_code)
                self.stats.conversions += dots.size
                self.stats.saturated += int(np.count_nonzero(digital != dots))
            else:
                drive = self.dac.convert(bit_planes)
                active = bit_planes.sum(axis=1, dtype=np.int64)
                cond = (self.conductance[self._plane_terms[0][0]][f]
                        if n_planes == 1 else np.concatenate(
                            [self.conductance[name][f]
                             for name, _ in self._plane_terms]))
                if n_planes > 1:
                    drive = np.concatenate([drive] * n_planes)
                    active = np.concatenate([active] * n_planes)
                currents = self._job_currents(cond, drive)
                held = self.sample_hold.hold(currents, copy=False)
                digital = self._convert_batch(held, active)
            if col_w is None:
                acc += np.einsum("jpcs,js->pc", digital, slice_w,
                                 optimize=True)
            else:
                acc += np.einsum("jpcs,js,jc->pc", digital, slice_w, col_w,
                                 optimize=True)
        out += acc.T
        return self._offset_correction(stacked, out)

    # ------------------------------------------------------------------
    # Reference path (the original cycle-by-cycle loop)
    # ------------------------------------------------------------------
    def matvec_int_reference(self, x_int: np.ndarray) -> np.ndarray:
        """Cycle-by-cycle MVM: the original bit-serial loop, kept forever.

        Semantically identical to :meth:`matvec_int` (asserted across all
        schemes in ``tests/reram/test_engine_fused.py``) but evaluates one
        bit-plane per Python iteration — the bit-exactness oracle and the
        baseline of ``benchmarks/run_perf_suite.py``.
        """
        stacked = self._prepare(x_int)
        positions = stacked.shape[-1]
        geometry = self.mapped.geometry

        out = np.zeros((geometry.cols, positions), dtype=np.int64)
        for bit in range(self.activation_bits):
            remaining = stacked >> bit
            if not remaining.any():
                break  # zero-skipping: every shift register is empty
            bits_stack = remaining & 1
            self.stats.cycles_fed += 1
            self.stats.jobs_computed += stacked.shape[0] * len(self._plane_terms)
            frag = np.zeros((stacked.shape[0], positions, geometry.cols),
                            dtype=np.int64)
            for plane, sign in self._plane_terms:
                frag += sign * self._plane_pass(plane, bits_stack)
            if self.sign_indicator is not None:
                frag = self.sign_indicator.apply(np.transpose(frag, (0, 2, 1)))
                frag = np.transpose(frag, (0, 2, 1))
            out += (1 << bit) * frag.sum(axis=0).T          # (cols, positions)
        return self._offset_correction(stacked, out)

    def matvec_float(self, x_int: np.ndarray, weight_scale: float,
                     activation_scale: float) -> np.ndarray:
        """Dequantized MVM result in real units."""
        return self.matvec_int(x_int).astype(np.float64) * weight_scale * activation_scale


def build_engine(levels_matrix: np.ndarray, geometry: FragmentGeometry,
                 spec: QuantizationSpec, device: ReRAMDevice,
                 scheme: str = "forms", signs: Optional[np.ndarray] = None,
                 adc: Optional[ADCSpec] = None,
                 activation_bits: int = 16,
                 die_cache: Optional[DieCache] = None) -> InSituLayerEngine:
    """Map integer levels and construct the engine in one step."""
    if scheme == "forms" and signs is None:
        from .mapping import infer_signs
        signs = infer_signs(levels_matrix, geometry)
    mapped = map_layer(levels_matrix, geometry, spec, scheme=scheme, signs=signs)
    return InSituLayerEngine(mapped, device, adc=adc,
                             activation_bits=activation_bits,
                             die_cache=die_cache)


# ---------------------------------------------------------------------------
# Fast effective-weight path (network-scale variation studies, Table VI)
# ---------------------------------------------------------------------------

def effective_levels(mapped: MappedLayer, device: ReRAMDevice) -> np.ndarray:
    """Real-valued weight levels as realized by a noisy die.

    Equivalent to the bit-serial engine when ADC quantization is exact:
    variation multiplies each cell's level code, and shift-and-add recombines
    the noisy slices.  Note how the three schemes differ in noise coupling —
    the ISAAC offset plane carries the large bias through the same noisy
    cells (variation on the bias is *not* cancelled by the digital
    correction, which subtracts the ideal offset), while FORMS stores bare
    magnitudes.  This is the mechanism behind the robustness gap the paper
    cites ([29]).
    """
    spec = mapped.spec
    geometry = mapped.geometry
    place = slice_weights(next(iter(mapped.code_planes.values())).shape[-1], spec.cell_bits)

    def noisy_plane(codes: np.ndarray) -> np.ndarray:
        factors = device.variation_factors(codes.shape)
        return (codes * factors * place).sum(axis=-1)      # (n_frag, m, cols)

    if mapped.scheme == "forms":
        stack = noisy_plane(mapped.code_planes["main"])
        signed = stack * mapped.signs[:, None, :]
        return geometry.from_fragment_stack(signed)
    if mapped.scheme == "isaac_offset":
        stack = noisy_plane(mapped.code_planes["main"])
        pad_rows = geometry.padded_rows - geometry.rows
        corrected = stack - mapped.offset
        if pad_rows:  # padding rows were never biased
            corrected[-1, -pad_rows:, :] += mapped.offset
        return geometry.from_fragment_stack(corrected)
    # dual
    pos = noisy_plane(mapped.code_planes["positive"])
    neg = noisy_plane(mapped.code_planes["negative"])
    return geometry.from_fragment_stack(pos - neg)

"""The per-server observability bundle: metrics + traces + usage.

One :class:`Observability` object travels with one
:class:`~repro.serving.InferenceServer` (or one
:class:`~repro.serving.ClusterRouter`) and owns its three read-side
stores:

* ``metrics`` — the :class:`~repro.obs.metrics.MetricsRegistry` behind
  ``GET /metrics``;
* ``traces`` — the :class:`~repro.obs.trace.TraceRing` behind
  ``GET /v1/trace/<id>``;
* ``usage`` — the :class:`~repro.obs.usage.UsageMeter` behind
  ``GET /v1/usage``.

*Scrape hooks* bridge pull-time gauges to the snapshots the stack
already computes: the wiring registers callables that refresh gauges
(queue depth, occupancy, die health, engine counters, router state)
and :meth:`scrape` runs them before rendering, so a scrape is a
consistent read of live state rather than a stale push.

``Observability.disabled()`` is the ``--no-metrics`` shape: the
registry hands out no-op instruments, the ring drops every put, and
the serving hot path skips span assembly entirely.
"""

from __future__ import annotations

import threading
from typing import Callable, List

from .metrics import MetricsRegistry
from .trace import TraceRing
from .usage import UsageMeter


class Observability:
    """Metrics + trace ring + usage meter for one serving entity."""

    def __init__(self, *, metrics: bool = True, tracing: bool = True,
                 trace_ring: int = 256, profile_engines: bool = False):
        self.metrics = MetricsRegistry(enabled=metrics)
        self.traces = TraceRing(trace_ring if tracing else 0)
        self.usage = UsageMeter()
        self.profile_engines = profile_engines
        self._scrape_hooks: List[Callable[[], None]] = []
        self._hook_lock = threading.Lock()

    @classmethod
    def disabled(cls) -> "Observability":
        """Everything off: no-op instruments, zero-capacity ring."""
        return cls(metrics=False, tracing=False, trace_ring=0)

    @property
    def tracing(self) -> bool:
        return self.traces.capacity > 0

    def add_scrape_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` before every render (refresh pull gauges)."""
        with self._hook_lock:
            self._scrape_hooks.append(hook)

    def scrape(self) -> str:
        """Refresh pull-time gauges, then render the text exposition."""
        with self._hook_lock:
            hooks = list(self._scrape_hooks)
        if self.metrics.enabled:
            for hook in hooks:
                hook()
        return self.metrics.render()

"""Component-level area/power catalog (paper Table III).

The paper models its peripherals with CACTI/NVSIM/Synopsys DC and the Murmann
ADC survey; offline we encode the resulting published numbers directly and
fit the scaling laws the paper quotes around them:

* ADC power and area contain a part that scales linearly with resolution
  (memory, clock, vref buffer) and a part that scales exponentially (the
  capacitive DAC) — paper Sec. V-B, following [59, 60].  The two-term model
  is calibrated on the two published design points (ISAAC's 8-bit 1.2 GS/s
  and FORMS' 4-bit 2.1 GS/s ADCs) and then interpolates the 3-bit and 5-bit
  ADCs used at fragment sizes 4 and 16.
* Everything else (DAC, S&H, crossbar, shift-and-add, zero-skip logic, sign
  indicator) is a fixed published constant.

All powers in mW, areas in mm^2, at the paper's 32 nm operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ComponentSpec:
    """One row of an MCU/tile bill of materials."""

    name: str
    power_mw: float       # total power of all instances
    area_mm2: float       # total area of all instances
    count: int = 1
    params: Tuple[Tuple[str, object], ...] = ()

    @property
    def unit_power_mw(self) -> float:
        return self.power_mw / self.count

    @property
    def unit_area_mm2(self) -> float:
        return self.area_mm2 / self.count

    def param(self, key: str, default=None):
        return dict(self.params).get(key, default)


# ---------------------------------------------------------------------------
# ADC scaling law
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ADCScalingModel:
    """Two-term ADC cost model: ``cost = linear * bits + expo * 2**bits``.

    Power additionally scales linearly with sampling frequency; area is
    frequency-independent (a SAR ADC's capacitor array dominates).
    Calibrated from two published (bits, frequency, power, area) points.
    """

    power_linear: float     # mW per bit per GHz
    power_expo: float       # mW per 2**bits per GHz
    area_linear: float      # mm2 per bit
    area_expo: float        # mm2 per 2**bits

    def power_mw(self, bits: int, frequency_hz: float) -> float:
        ghz = frequency_hz / 1e9
        return ghz * (self.power_linear * bits + self.power_expo * 2 ** bits)

    def area_mm2(self, bits: int) -> float:
        return self.area_linear * bits + self.area_expo * 2 ** bits

    @classmethod
    def calibrate(cls, point_a: Tuple[int, float, float, float],
                  point_b: Tuple[int, float, float, float]) -> "ADCScalingModel":
        """Fit from two (bits, frequency_hz, power_mw, area_mm2) points."""
        (b1, f1, p1, a1), (b2, f2, p2, a2) = point_a, point_b
        if b1 == b2:
            raise ValueError("calibration points need distinct bit widths")
        # Normalize powers to 1 GHz, then solve the 2x2 linear system.
        q1, q2 = p1 / (f1 / 1e9), p2 / (f2 / 1e9)
        det = b1 * 2 ** b2 - b2 * 2 ** b1
        power_linear = (q1 * 2 ** b2 - q2 * 2 ** b1) / det
        power_expo = (b1 * q2 - b2 * q1) / det
        area_linear = (a1 * 2 ** b2 - a2 * 2 ** b1) / det
        area_expo = (b1 * a2 - b2 * a1) / det
        model = cls(power_linear, power_expo, area_linear, area_expo)
        for value in (model.power_linear, model.power_expo,
                      model.area_linear, model.area_expo):
            if value < 0:
                raise ValueError("calibration produced a negative coefficient; "
                                 "check the published points")
        return model


#: ISAAC's ADC: 8-bit, 1.2 GS/s, 16 mW / 8 units, 0.0096 mm2 / 8 units.
ISAAC_ADC_POINT = (8, 1.2e9, 16.0 / 8, 0.0096 / 8)
#: FORMS' ADC: 4-bit, 2.1 GS/s, 15.2 mW / 32 units, 0.0091 mm2 / 32 units.
FORMS_ADC_POINT = (4, 2.1e9, 15.2 / 32, 0.0091 / 32)


def default_adc_model() -> ADCScalingModel:
    """The catalog's ADC model, calibrated on the two published points."""
    return ADCScalingModel.calibrate(ISAAC_ADC_POINT, FORMS_ADC_POINT)


# ---------------------------------------------------------------------------
# Published constants (paper Table III; per-MCU totals)
# ---------------------------------------------------------------------------

#: cycle-accurate operating points quoted in Sec. IV-C
ISAAC_ADC_BITS = 8
ISAAC_ADC_FREQ_HZ = 1.2e9
ISAAC_ADCS_PER_MCU = 8          # 1 per crossbar
FORMS_ADC_FREQ_HZ = 2.1e9
FORMS_ADCS_PER_MCU = 32         # 4 per crossbar (iso-area with ISAAC's 8-bit)


def forms_adc_frequency(bits: int) -> float:
    """Sampling rate of a FORMS SAR ADC at a given resolution.

    A SAR ADC resolves one bit per internal comparator cycle, so its sample
    rate scales as 1/bits; anchored at the published 4-bit / 2.1 GS/s point
    [73].  This reproduces the paper's observation that fragment 16 (5-bit
    ADC) gains only ~42% throughput over fragment 8 rather than the naive 2x.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    return FORMS_ADC_FREQ_HZ * 4.0 / bits
CROSSBARS_PER_MCU = 8
CROSSBAR_ROWS = 128
CROSSBAR_COLS = 128
DACS_PER_MCU = 8 * 128          # one 1-bit DAC per crossbar row

_DAC = ComponentSpec("DAC", 4.0, 0.00017, DACS_PER_MCU,
                     (("resolution_bits", 1),))
_SHIFT_ADD = ComponentSpec("S+A", 0.2, 0.000024, 4)
_XBAR_FORMS = ComponentSpec("crossbar array", 2.44, 0.00024, CROSSBARS_PER_MCU,
                            (("size", "128x128"), ("bits_per_cell", 2)))
_XBAR_ISAAC = ComponentSpec("crossbar array", 2.43, 0.00023, CROSSBARS_PER_MCU,
                            (("size", "128x128"), ("bits_per_cell", 2)))
_SH_FORMS = ComponentSpec("S&H", 0.0055, 0.000023, DACS_PER_MCU)
_SH_ISAAC = ComponentSpec("S&H", 0.01, 0.00004, DACS_PER_MCU)
_SKIP_LOGIC = ComponentSpec("zero-skip logic", 0.01, 1e-7)
_SIGN_INDICATOR = ComponentSpec("sign indicator", 0.012, 3.1e-6)

#: residual per-MCU power/area (output registers, local control) chosen so the
#: MCU roll-up matches Table IV's published 12-MCU tile totals exactly:
#: FORMS 280.05 mW / 0.152 mm2 per 12 MCUs, ISAAC 288.96 mW / 0.158 mm2.
_FORMS_MCU_RESIDUAL = ComponentSpec("registers & control", 1.47, 0.0031064)
_ISAAC_MCU_RESIDUAL = ComponentSpec("registers & control", 1.44, 0.0031027)


def forms_adc_spec(fragment_size: int = 8,
                   model: Optional[ADCScalingModel] = None) -> ComponentSpec:
    """ADC bank of a FORMS MCU for a given fragment size.

    Fragment 8 returns the published Table III row; other sizes derive the
    resolution from the paper's pairing (3/4/5-bit at m = 4/8/16) and scale
    cost through the calibrated model.
    """
    from ..reram.converters import paper_adc_bits
    bits = paper_adc_bits(fragment_size)
    frequency = forms_adc_frequency(bits)
    if fragment_size == 8:
        power, area = 15.2, 0.0091
    else:
        model = model or default_adc_model()
        power = model.power_mw(bits, frequency) * FORMS_ADCS_PER_MCU
        area = model.area_mm2(bits) * FORMS_ADCS_PER_MCU
    return ComponentSpec("ADC", power, area, FORMS_ADCS_PER_MCU,
                         (("resolution_bits", bits),
                          ("frequency_hz", frequency)))


def isaac_adc_spec() -> ComponentSpec:
    return ComponentSpec("ADC", 16.0, 0.0096, ISAAC_ADCS_PER_MCU,
                         (("resolution_bits", ISAAC_ADC_BITS),
                          ("frequency_hz", ISAAC_ADC_FREQ_HZ)))


def forms_mcu_components(fragment_size: int = 8) -> List[ComponentSpec]:
    """Bill of materials of one FORMS MCU (Table III, FORMS column)."""
    return [
        forms_adc_spec(fragment_size),
        _DAC,
        _SH_FORMS,
        _XBAR_FORMS,
        _SHIFT_ADD,
        _SKIP_LOGIC,
        _SIGN_INDICATOR,
        _FORMS_MCU_RESIDUAL,
    ]


def isaac_mcu_components() -> List[ComponentSpec]:
    """Bill of materials of one ISAAC MCU (Table III, ISAAC column)."""
    return [
        isaac_adc_spec(),
        _DAC,
        _SH_ISAAC,
        _XBAR_ISAAC,
        _SHIFT_ADD,
        _ISAAC_MCU_RESIDUAL,
    ]


def bom_power_mw(components: List[ComponentSpec]) -> float:
    return sum(c.power_mw for c in components)


def bom_area_mm2(components: List[ComponentSpec]) -> float:
    return sum(c.area_mm2 for c in components)


def table3_rows(fragment_size: int = 8) -> List[Dict[str, object]]:
    """Side-by-side Table III reconstruction (FORMS vs ISAAC component rows)."""
    forms = {c.name: c for c in forms_mcu_components(fragment_size)}
    isaac = {c.name: c for c in isaac_mcu_components()}
    names = ["ADC", "DAC", "S&H", "crossbar array", "S+A",
             "zero-skip logic", "sign indicator"]
    rows = []
    for name in names:
        f, i = forms.get(name), isaac.get(name)
        rows.append({
            "component": name,
            "forms_power_mw": f.power_mw if f else None,
            "forms_area_mm2": f.area_mm2 if f else None,
            "isaac_power_mw": i.power_mw if i else None,
            "isaac_area_mm2": i.area_mm2 if i else None,
        })
    return rows

"""Validation — event-driven pipeline vs the analytic timing model.

The FPS results (Figs. 13/14) rest on an analytic initiation-interval model:
with zero-skipping, a layer admits a new input every *average-EIC* cycles.
This bench checks that closed form against the event-driven simulator, which
replays the *actual* per-position EIC sequence (not its mean) through the
22-stage pipeline with finite buffers:

* single layer: the simulated steady-state interval converges to the mean
  EIC (the analytic assumption) within ~1%;
* fragment-size sweep: smaller fragments yield smaller intervals — the
  zero-skipping advantage survives pipelining and buffering;
* layer chain: with double buffering, throughput is set by the bottleneck
  layer alone (the perf model's weight-stationary assumption).
"""

import numpy as np
import pytest

from repro.analysis import ExperimentTable
from repro.arch.event_pipeline import (EventPipeline, MultiLayerPipeline,
                                       layer_stage_spec)
from repro.core.zero_skip import eic_matrix

FRAGMENTS = [4, 8, 16, 128]
ACTIVATION_BITS = 16
POSITIONS = 600
ROWS = 256


def synthetic_activations(seed: int = 0) -> np.ndarray:
    """Post-ReLU-shaped integer activations: mostly small, rarely large."""
    rng = np.random.default_rng(seed)
    magnitudes = rng.lognormal(mean=3.0, sigma=1.6, size=(ROWS, POSITIONS))
    sparsity = rng.random((ROWS, POSITIONS)) < 0.45
    values = np.where(sparsity, 0.0, magnitudes)
    return np.clip(values, 0, 2 ** ACTIVATION_BITS - 1).astype(np.int64)


def run_validation(seed: int = 0):
    activations = synthetic_activations(seed)
    spec = layer_stage_spec()
    rows = []
    extras = {}
    for fragment in FRAGMENTS:
        eic = eic_matrix(activations, fragment)
        # One row group feeds serially per conversion; its own per-position
        # EIC sequence is the feed-phase duration the pipeline sees.
        per_position = eic[0]
        stats = EventPipeline(spec, per_position).run()
        analytic = float(per_position.mean())
        simulated = stats.steady_interval
        rows.append([fragment, analytic, simulated,
                     100.0 * abs(simulated - analytic) / analytic,
                     stats.makespan])
        extras[fragment] = {"analytic": analytic, "simulated": simulated}

    # Bottleneck check: a 3-layer chain at mixed fragment sizes.
    feeds = [eic_matrix(activations, m)[0] for m in (4, 128, 8)]
    chain = MultiLayerPipeline([(spec, f) for f in feeds],
                               buffer_capacity=8).run()
    bottleneck = max(float(f.mean()) for f in feeds)
    extras["chain"] = {"interval": chain[-1].steady_interval,
                       "bottleneck": bottleneck}

    table = ExperimentTable(
        "Validation: event-driven pipeline vs analytic initiation interval "
        f"({POSITIONS} positions, 16-bit inputs)",
        ["fragment", "analytic interval", "simulated interval",
         "mismatch %", "makespan (cycles)"],
        rows)
    table.extras.update(extras)
    return table


def test_event_pipeline_validation(benchmark, save_table):
    result = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    save_table("event_pipeline_validation", result)
    benchmark.extra_info["table"] = result.rendered
    # The analytic model's assumption holds: simulated interval == mean EIC.
    for fragment in FRAGMENTS:
        case = result.extras[fragment]
        assert case["simulated"] == pytest.approx(
            case["analytic"], rel=0.02)
    # Fine granularity admits inputs faster (the zero-skipping advantage).
    intervals = [result.extras[m]["simulated"] for m in FRAGMENTS]
    assert intervals == sorted(intervals)
    # The chain runs at the bottleneck layer's rate.
    chain = result.extras["chain"]
    assert chain["interval"] == pytest.approx(
        chain["bottleneck"], rel=0.05)

"""Serving-layer benchmark records: open-loop Poisson traffic points.

The engine suite (:mod:`repro.perf.suite`) records *paired* speedups; the
serving layer has no baseline to pair against — its numbers are a
throughput/latency *curve* over arrival rates.  This module defines the
third record ``kind`` in ``BENCH_engine.json`` (``"serving"``, schema in
``benchmarks/README.md``) and the driver that measures one point of the
curve:

* **open-loop** arrivals — request times are drawn from a Poisson process
  at the target rate and submitted on schedule regardless of completions,
  so queueing delay is measured rather than hidden (a closed loop would
  throttle arrivals to the service rate);
* every point asserts **bit-identity** of all served outputs against a
  direct serial single-image forward before anything is recorded — a
  recorded curve can never come from wrong results (the suite's rule);
* records **merge** into an existing ``BENCH_engine.json`` payload and are
  preserved when ``run_perf_suite.py`` rewrites the file (see
  :func:`repro.perf.suite.write_payload`).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List, Optional

import numpy as np


SERVING_RECORD_KIND = "serving"


def serving_record_name(rate_rps: float) -> str:
    rate = f"{rate_rps:g}".replace(".", "p")
    return f"serving_poisson_r{rate}"


def poisson_arrival_offsets(rng: np.random.Generator, rate_rps: float,
                            requests: int) -> np.ndarray:
    """Absolute open-loop arrival schedule (first request at t=0).

    One shared implementation for every serving benchmark and demo, so
    the ``serving_poisson_*``, ``serving_multitenant_*`` and
    ``serving_http_r*`` curves (and the wire demos) keep identical
    arrival statistics under one seed discipline.  Anchoring on an
    absolute schedule — rather than sleeping per gap — keeps the
    realized rate from drifting below the recorded offered rate.
    """
    gaps = rng.exponential(1.0 / rate_rps, size=max(requests - 1, 0))
    return np.concatenate([[0.0], np.cumsum(gaps)])


def drive_poisson(rate_rps: float, requests: int, *, max_batch: int = 8,
                  max_wait_ms: float = 2.0, workers: Optional[int] = None,
                  backend: Optional[str] = None,
                  seed: int = 0, activation_bits: int = 12,
                  die_cache=None, obs=None) -> Dict:
    """Serve one open-loop Poisson arrival process and verify bit-identity.

    The shared drive-and-verify harness behind :func:`run_poisson_point`
    and the ``python -m repro serve`` demo: builds the perf suite's
    FORMS-shaped demo network (pruned + polarized), replays ``requests``
    Poisson arrivals at ``rate_rps`` through a fresh
    :class:`~repro.serving.InferenceServer`, and asserts every served
    output bit-identical to a direct serial single-image forward.
    Returns ``{"results", "snapshot", "open_loop_s", "workers"}``.

    Pass one shared ``die_cache`` (a :class:`~repro.reram.DieCache`)
    across several calls — a rate sweep rebuilds the same engines per
    point, and the cache deduplicates the die programming.  ``obs`` is
    the server's :class:`~repro.obs.Observability` bundle (default: the
    everything-on default; ``Observability.disabled()`` measures the
    instrumentation-off baseline — ``benchmarks/bench_obs.py`` does).
    """
    from ..reram import ADCSpec, DeviceSpec, ReRAMDevice, paper_adc_bits
    from ..runtime import run_network_serial
    from ..serving import InferenceServer
    from .suite import _post_relu_network

    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    model, config, images = _post_relu_network(seed=seed)
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    rng = np.random.default_rng(seed)
    pool_images = images[rng.integers(0, images.shape[0], size=requests)]
    arrival_offsets = poisson_arrival_offsets(rng, rate_rps, requests)

    with InferenceServer.from_model(
            model, config, device, adc=adc,
            activation_bits=activation_bits, max_batch=max_batch,
            max_wait_s=max_wait_ms / 1e3, workers=workers, backend=backend,
            die_cache=die_cache, obs=obs) as server:
        start = time.monotonic()
        futures = []
        for image, offset in zip(pool_images, arrival_offsets):
            delay = start + offset - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            futures.append(server.submit_async(image))
        results = [future.result() for future in futures]
        open_loop_s = time.monotonic() - start
        snapshot = server.server_stats()
        resolved_workers = server.pool.workers

    serial = run_network_serial(server.model, pool_images, tile_size=1)
    for i, served in enumerate(results):
        if not np.array_equal(served.output, serial[i]):
            raise AssertionError(
                f"request {i}: served != serial single-image forward")
    return {"results": results, "snapshot": snapshot,
            "open_loop_s": open_loop_s, "workers": resolved_workers}


def run_poisson_point(rate_rps: float, requests: int = 32, *,
                      max_batch: int = 8, max_wait_ms: float = 2.0,
                      workers: Optional[int] = None, seed: int = 0,
                      activation_bits: int = 12, die_cache=None) -> Dict:
    """Measure one open-loop arrival-rate point and return its record.

    Drives :func:`drive_poisson` (bit-identity asserted there) and
    packages the server's stats snapshot plus per-request aggregates as
    one ``"serving"`` record.  ``die_cache`` as in :func:`drive_poisson`.
    """
    driven = drive_poisson(rate_rps, requests, max_batch=max_batch,
                           max_wait_ms=max_wait_ms, workers=workers,
                           seed=seed, activation_bits=activation_bits,
                           die_cache=die_cache)
    results = driven["results"]
    snapshot = driven["snapshot"]
    open_loop_s = driven["open_loop_s"]
    resolved_workers = driven["workers"]

    batch_sizes = [served.stats.batch_size for served in results]
    return {
        "name": serving_record_name(rate_rps),
        "kind": SERVING_RECORD_KIND,
        "results": {
            "throughput_rps": requests / open_loop_s,
            "offered_rate_rps": rate_rps,
            "latency_p50_s": snapshot["latency_p50_s"],
            "latency_p95_s": snapshot["latency_p95_s"],
            "latency_max_s": snapshot["latency_max_s"],
            "queue_wait_mean_s": snapshot["queue_wait_mean_s"],
            "queue_wait_p95_s": snapshot["queue_wait_p95_s"],
            "batches_formed": snapshot["batches_formed"],
            "mean_batch_size": snapshot["mean_batch_size"],
            "max_batch_size": snapshot["max_batch_size"],
            "occupancy": snapshot["occupancy"],
        },
        "meta": {
            "requests": requests,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "workers": resolved_workers,
            "seed": seed,
            "activation_bits": activation_bits,
            "mean_request_batch_size": float(np.mean(batch_sizes)),
            "bit_identical_to_serial": True,
        },
    }


def merge_serving_records(payload: Dict, records: List[Dict]) -> Dict:
    """Replace-or-append serving records in a BENCH payload, in place.

    Matching is by record ``name``; non-serving records are untouched, so
    the engine suite's trajectory and the serving curve coexist in one
    ``BENCH_engine.json``.
    """
    by_name = {record["name"]: record for record in records}
    kept = [by_name.pop(record["name"], record)
            for record in payload.get("records", [])]
    kept.extend(record for record in records if record["name"] in by_name)
    payload["records"] = kept
    return payload


def merge_records_into_file(path, records: List[Dict]) -> Dict:
    """Merge serving records into a BENCH json file on disk.

    The one read-merge-write implementation behind every serving
    recorder (``bench_serving.py`` / ``bench_multitenant.py`` /
    ``bench_http.py``).  Raises :class:`ValueError` if ``path`` exists
    but is not valid JSON — an unreadable file may hold the whole
    engine-suite trajectory and must abort the run, never be clobbered.
    Returns the merged payload.
    """
    path = pathlib.Path(path)
    if path.exists():
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except ValueError as exc:
            raise ValueError(
                f"{path} exists but is not valid JSON ({exc}); "
                "refusing to overwrite it")
    else:
        payload = {"schema": "forms-perf-suite/v1", "records": []}
    merge_serving_records(payload, records)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload

"""Figure 8 — effective input cycles (EIC) distribution and averages.

ResNet-50 stand-in on CIFAR-100 with 16-bit inputs, fragment sizes 4..128.
Expected shape (paper): average EIC ~10-11 at fragment 4 rising toward ~15 at
fragment 128; the EIC distribution shifts right as fragments grow; smaller
fragments save more input cycles.
"""

from repro.analysis import FAST, eic_experiment


def test_fig8_eic(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: eic_experiment("resnet50", "cifar100",
                               fragment_sizes=(4, 8, 16, 32, 64, 128),
                               scale=FAST, seed=0),
        rounds=1, iterations=1)
    save_table("fig8_eic", result)
    benchmark.extra_info["table"] = result.rendered
    merged = result.extras["merged_stats"]
    averages = [merged[m].average for m in (4, 8, 16, 32, 64, 128)]
    # Monotone non-decreasing average EIC with fragment size.
    for small, large in zip(averages, averages[1:]):
        assert small <= large + 1e-9
    # Paper anchors: ~10.7 average at fragment 4, ~15 at fragment 128.
    assert 7.0 < averages[0] < 14.0
    assert averages[-1] > 12.0
    # Fragment 4 saves a significant share of the 16 cycles.
    assert merged[4].saved_fraction > 0.15

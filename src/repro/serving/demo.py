"""Self-contained serving demos: synthetic traffic against small networks.

Backs both ``python -m repro serve`` and ``scripts/serve_demo.py`` in two
shapes:

* :func:`run_demo` — the single-model FIFO demo (the PR-3 path): drives
  the shared Poisson harness (:func:`repro.perf.serving.drive_poisson`,
  the same build/serve/verify path ``benchmarks/bench_serving.py``
  records with) and prints per-request receipts plus the operational
  snapshot;
* :func:`run_multitenant_demo` — the two-model, two-class SLA demo:
  drives :func:`repro.perf.multitenant.drive_mixed_traffic` (interactive
  class with per-request deadlines on a small model, bulk class with a
  latency bound on a heavier one, both on one shared pool), prints
  per-class latency/shed summaries and the registry's die-reuse stats,
  and additionally *proves* cross-model die dedup by registering a
  replica tenant over identical weights and asserting cache hits;
* :func:`run_chaos_demo` — the fault-recovery demo (``--chaos``): drives
  :func:`repro.perf.chaos.drive_chaos` — scripted stuck-at faults
  flipped onto live dies mid-traffic, checksum detection, quarantine +
  online re-program through the shared die cache, bounded batch retry —
  and prints the injected scenario, the recovery receipts and the
  die-health summary; every completed request is asserted bit-identical
  to the *pre-fault* serial forward and every future must resolve;
* :func:`run_http_server` / :func:`run_http_demo` — the same demo
  servers behind the :class:`~repro.serving.HttpFrontend` (``--http``):
  either serve until interrupted (the curl-walkthrough mode of
  ``docs/serving.md``) or replay ``requests`` self-checking requests
  *over the wire* — concurrent client threads, mixed classes when
  ``models=2``, every decoded response asserted bit-identical to the
  in-process serial forward — then drain and exit (``--http-demo``, the
  CI smoke);
* :func:`run_cluster_server` / :func:`run_cluster_demo` — the same wire
  protocol through a :class:`~repro.serving.cluster.ClusterRouter` over
  N subprocess replicas (``--cluster N``): serve until interrupted, or
  the self-checking failover smoke (``--http-demo``) that SIGKILLs and
  restarts a replica mid-traffic and asserts bit-identity, documented
  receipts and zero hung requests end to end.

Both demos are self-checking: every served output is asserted
bit-identical to a direct single-image serial forward (per tenant) in
the drivers before any summary is printed — the demos double as
end-to-end smokes of the serving contract.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np


def run_demo(requests: int = 16, rate_rps: float = 200.0,
             max_batch: int = 4, max_wait_ms: float = 2.0,
             workers: Optional[int] = None, backend: Optional[str] = None,
             seed: int = 0,
             print_fn: Optional[Callable[[str], None]] = print) -> Dict:
    """Serve ``requests`` Poisson arrivals and return the stats snapshot."""
    from ..perf.serving import drive_poisson

    say = print_fn if print_fn is not None else (lambda line: None)
    say(f"serving {requests} requests at ~{rate_rps:.0f} rps "
        f"(max_batch={max_batch}, max_wait={max_wait_ms:.1f} ms)")
    driven = drive_poisson(rate_rps, requests, max_batch=max_batch,
                           max_wait_ms=max_wait_ms, workers=workers,
                           backend=backend, seed=seed)
    results, snapshot = driven["results"], driven["snapshot"]
    say("bit-identity vs serial single-image forward: OK")

    for served in results[: min(8, len(results))]:
        s = served.stats
        say(f"  request {s.request_id:3d}: batch {s.batch_id} "
            f"(size {s.batch_size}), queue {s.queue_wait_s * 1e3:6.2f} ms, "
            f"latency {s.latency_s * 1e3:6.2f} ms, "
            f"{s.engine_stats['conversions']} conversions")
    if len(results) > 8:
        say(f"  ... {len(results) - 8} more")
    say(f"batches formed: {snapshot['batches_formed']} "
        f"(mean size {snapshot['mean_batch_size']:.2f}), "
        f"p50 latency {snapshot['latency_p50_s'] * 1e3:.2f} ms, "
        f"p95 {snapshot['latency_p95_s'] * 1e3:.2f} ms, "
        f"occupancy {snapshot['occupancy']:.2f}, "
        f"throughput {snapshot['throughput_rps']:.1f} rps")
    return snapshot


def run_multitenant_demo(requests: int = 32, rate_rps: float = 400.0,
                         deadline_ms: Optional[float] = 50.0,
                         workers: Optional[int] = None,
                         backend: Optional[str] = None, seed: int = 0,
                         print_fn: Optional[Callable[[str], None]] = print
                         ) -> Dict:
    """Two tenants, two SLA classes, one pool — and prove the dedup.

    Returns the server stats snapshot.  Raises if any served output
    deviates from its tenant's serial single-image forward, or if the
    replica-tenant registration fails to hit the shared die cache.
    """
    from ..perf.multitenant import (BATCH_MODEL, FAST_MODEL,
                                    drive_mixed_traffic, tenant_models)
    from ..reram import (ADCSpec, DeviceSpec, DieCache, ReRAMDevice,
                         paper_adc_bits)
    from ..serving import ModelRegistry

    say = print_fn if print_fn is not None else (lambda line: None)
    say(f"serving {requests} mixed-class requests at ~{rate_rps:.0f} rps "
        f"(interactive deadline "
        f"{'none' if deadline_ms is None else f'{deadline_ms:.0f} ms'}; "
        f"models '{FAST_MODEL}' + '{BATCH_MODEL}' on one pool)")
    driven = drive_mixed_traffic(rate_rps, requests, deadline_ms=deadline_ms,
                                 workers=workers, backend=backend, seed=seed)
    say("bit-identity vs per-tenant serial forwards: OK")

    snapshot = driven["snapshot"]
    for name, group in sorted(snapshot["per_class"].items()):
        say(f"  class {name:12s} completed {group['completed']:3d}, "
            f"shed {group['shed']:3d}, "
            f"p50 {group['latency_p50_s'] * 1e3:7.2f} ms, "
            f"p95 {group['latency_p95_s'] * 1e3:7.2f} ms")
    for receipt in [r for r in driven["sheds"] if r is not None][:4]:
        say(f"  shed request {receipt.request_id:3d}: {receipt.reason} "
            f"({receipt.priority_class}) after "
            f"{receipt.queue_wait_s * 1e3:.1f} ms")
    cache = driven["registry"]["die_cache"]
    say(f"die cache: {cache['hits']} hits / {cache['misses']} misses, "
        f"{cache['unique_dies']} unique dies for "
        f"{driven['registry']['engines_total']} engines")

    # cross-model dedup, proven: a replica tenant over identical weights
    # must program zero new dies
    models, config, _ = tenant_models(seed=seed)
    shared = DieCache()
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    with ModelRegistry(workers=1, die_cache=shared) as registry:
        registry.register(FAST_MODEL, models[FAST_MODEL], config, device,
                          adc=adc, activation_bits=12)
        misses_before = shared.misses
        registry.register(f"{FAST_MODEL}-replica", models[FAST_MODEL],
                          config, device, adc=adc, activation_bits=12)
        stats = registry.stats()
    if shared.misses != misses_before or stats["die_cache"]["hits"] == 0:
        raise AssertionError("replica tenant re-programmed dies — "
                             "cross-model dedup broken")
    say(f"cross-model die dedup: replica tenant registered with "
        f"{stats['die_cache']['hits']} cache hits, 0 new dies — OK")
    return snapshot


def run_chaos_demo(requests: int = 24, rate_rps: float = 400.0,
                   workers: Optional[int] = None, seed: int = 0,
                   print_fn: Optional[Callable[[str], None]] = print
                   ) -> Dict:
    """Break dies under live traffic and prove the recovery, end to end.

    Returns the server stats snapshot.  The driver
    (:func:`repro.perf.chaos.drive_chaos`) raises if any completed
    request deviates from its tenant's pre-fault serial forward, any
    future fails to resolve within the bounded wait, or any injected
    stuck-at fault goes undetected or unrecovered.
    """
    from ..perf.chaos import drive_chaos
    from ..perf.multitenant import BATCH_MODEL, FAST_MODEL

    say = print_fn if print_fn is not None else (lambda line: None)
    say(f"chaos: serving {requests} mixed-class requests at "
        f"~{rate_rps:.0f} rps while scripted die faults land on "
        f"'{FAST_MODEL}' and '{BATCH_MODEL}'")
    driven = drive_chaos(rate_rps, requests, workers=workers, seed=seed)

    for entry in driven["injected"]:
        if entry["kind"] == "stuck_at":
            say(f"  dispatch {entry['dispatch']:3d}: stuck-at fault on "
                f"die {entry['model']}/{entry['layer']} "
                f"({entry['stuck_cells_total']} cells flipped)")
        else:
            say(f"  dispatch {entry['dispatch']:3d}: {entry['kind']} event")
    snapshot = driven["snapshot"]
    say(f"detected {snapshot['faults_detected']} faults, recovered "
        f"{snapshot['fault_recoveries']} dies; "
        f"{snapshot['requests_recovered']} requests rode a recovered "
        f"batch to completion")
    for result in driven["recovered"][:3]:
        rec = result.stats.recovery
        mitigation = next(iter(rec["mitigation"].values()), None)
        reduction = (f", planner impact reduction "
                     f"{mitigation['impact_reduction']:.0%}"
                     if mitigation else "")
        say(f"  receipt (request {result.stats.request_id:3d}): die "
            f"{rec['model']}/{rec['layer']} quarantined -> re-programmed "
            f"({'cache hit' if rec['reprogram']['via_die_cache'] else 'direct'}"
            f"), batch retried x{rec['retries']}{reduction}")
    counts = driven["health"]["counts"]
    say(f"die health: {counts['healthy']} healthy, "
        f"{counts['quarantined']} quarantined, "
        f"{counts['reprogramming']} re-programming "
        f"({driven['health']['recoveries']} lifetime recoveries)")
    completed = sum(result is not None for result in driven["served"])
    say(f"bit-identity of all {completed} completed requests vs pre-fault "
        f"serial forwards: OK (zero hung futures)")
    return snapshot


# ---------------------------------------------------------------------------
# HTTP front end over the demo servers
def build_demo_server(models: int = 1, *,
                      deadline_ms: Optional[float] = 50.0,
                      max_batch: int = 4, max_wait_ms: float = 2.0,
                      workers: Optional[int] = None, seed: int = 0,
                      activation_bits: int = 12, die_cache=None,
                      obs=None, sla_mode: str = "strict"):
    """Stand up the demo :class:`~repro.serving.InferenceServer`, idle.

    The traffic-free sibling of the drive functions: builds exactly the
    network(s) the in-process demos serve — the perf suite's post-ReLU
    CNN for ``models=1``, the ``fast``/``batch`` tenant pair under the
    two-class SLA policy for ``models=2`` — and returns ``(server,
    traffic)`` where ``traffic`` describes how to aim synthetic requests
    at it: ``traffic["images"]`` is the demo image pool and
    ``traffic["cases"]`` one ``(model, priority, deadline_ms)`` submit
    template per class (a single entry of ``None``s for the FIFO shape).
    The caller owns the server (``shutdown`` closes its registry/pool).
    ``sla_mode`` picks the cross-class arbitration (``strict`` keeps the
    historical precedence, ``weighted_fair`` switches to
    deficit-round-robin over the class weights) — scheduling only, never
    the bits.
    """
    from ..reram import ADCSpec, DeviceSpec, ReRAMDevice, paper_adc_bits

    if models not in (1, 2):
        raise ValueError("the demo serves 1 or 2 models")
    device = ReRAMDevice(DeviceSpec(), 0.0)
    if models == 1:
        from ..perf.suite import _post_relu_network
        from .server import InferenceServer
        model, config, images = _post_relu_network(seed=seed)
        adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
        policy = None
        if sla_mode != "strict":
            from .scheduler import PriorityClass, SlaPolicy
            policy = SlaPolicy((PriorityClass(
                "default", max_batch=max_batch,
                max_wait_s=max_wait_ms / 1e3),), mode=sla_mode)
        server = InferenceServer.from_model(
            model, config, device, adc=adc,
            activation_bits=activation_bits, max_batch=max_batch,
            max_wait_s=max_wait_ms / 1e3, workers=workers,
            die_cache=die_cache, obs=obs, policy=policy)
        traffic = {"images": images,
                   "cases": [(None, None, None)],
                   "interactive_fraction": 1.0}
        return server, traffic
    from ..perf.multitenant import (BATCH_MODEL, BULK, FAST_MODEL,
                                    INTERACTIVE, mixed_policy,
                                    tenant_models)
    from .registry import ModelRegistry
    from .server import InferenceServer
    tenants, config, images = tenant_models(seed=seed)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    registry = ModelRegistry(workers=workers, die_cache=die_cache)
    try:
        for name, model in tenants.items():
            registry.register(name, model, config, device, adc=adc,
                              activation_bits=activation_bits)
        server = InferenceServer(registry=registry,
                                 policy=mixed_policy(mode=sla_mode),
                                 obs=obs)
    except BaseException:
        registry.close()
        raise
    server._owns_registry = True    # the demo's registry dies with the server
    traffic = {"images": images,
               "cases": [(FAST_MODEL, INTERACTIVE, deadline_ms),
                         (BATCH_MODEL, BULK, None)],
               "interactive_fraction": 0.4}
    return server, traffic


def run_http_demo(requests: int = 16, rate_rps: float = 200.0,
                  models: int = 1, *, host: str = "127.0.0.1", port: int = 0,
                  deadline_ms: Optional[float] = 50.0,
                  max_batch: int = 4, max_wait_ms: float = 2.0,
                  workers: Optional[int] = None, seed: int = 0, obs=None,
                  use_async: bool = False, sla_mode: str = "strict",
                  print_fn: Optional[Callable[[str], None]] = print) -> Dict:
    """Drive the demo server *over the wire* and verify every bit.

    Replays ``requests`` open-loop Poisson arrivals as concurrent
    ``POST /v1/infer`` calls (mixed classes and alternating JSON /
    base64 encodings when ``models=2``), asserts every decoded response
    bit-identical to the in-process serial single-image forward of its
    tenant, prints the wire-side operational snapshot, then drains the
    front end and confirms the port actually closed.  Returns the
    ``/v1/stats`` snapshot.  Raises on any numeric deviation or any
    failure other than an explicit shed receipt.

    Doubles as the observability wire smoke: before the drain it scrapes
    ``/metrics`` (and runs the strict Prometheus-text parser over it),
    fetches ``/v1/usage`` (asserting the billed request/shed totals match
    the wire outcomes) and replays one served request's span tree from
    ``/v1/trace/<id>`` — skipped for the parts an explicit ``obs``
    bundle disables.

    ``use_async=True`` runs the same replay through the
    :class:`~repro.serving.aio.AsyncFrontend` instead (identical wire
    protocol — the plan, assertions and drain proof are unchanged) and
    additionally exercises the SSE path: one
    ``POST /v1/infer_batch?stream=1`` whose per-item ``result`` events
    are asserted bit-identical to the serial forwards and whose billed
    requests are included in the ``/v1/usage`` cross-check.
    ``sla_mode`` selects the scheduler arbitration
    (``strict`` / ``weighted_fair``).
    """
    from ..obs import parse_prometheus_text
    from ..perf.http import replay_http_open_loop
    from ..perf.serving import poisson_arrival_offsets
    from ..runtime import run_network_serial
    from .http import HttpClient, HttpFrontend, WireResult

    say = print_fn if print_fn is not None else (lambda line: None)
    server, traffic = build_demo_server(models, deadline_ms=deadline_ms,
                                        max_batch=max_batch,
                                        max_wait_ms=max_wait_ms,
                                        workers=workers, seed=seed, obs=obs,
                                        sla_mode=sla_mode)
    images, cases = traffic["images"], traffic["cases"]
    rng = np.random.default_rng(seed)
    image_idx = rng.integers(0, images.shape[0], size=requests)
    interactive = rng.random(requests) < traffic["interactive_fraction"]
    arrival_offsets = poisson_arrival_offsets(rng, rate_rps, requests)

    plan: List[Tuple[np.ndarray, Dict]] = []
    assignments: List[Tuple[Optional[str], int]] = []
    for i in range(requests):
        model, priority, deadline = cases[0 if interactive[i] else -1]
        kwargs: Dict = {"binary": bool(i % 2)}   # exercise both encodings
        if model is not None:
            kwargs.update(model=model, priority=priority)
            if deadline is not None:
                kwargs["deadline_ms"] = deadline
        plan.append((images[image_idx[i]], kwargs))
        assignments.append((model, int(image_idx[i])))

    with server:
        if use_async:
            from .aio import AsyncFrontend
            frontend = AsyncFrontend(server, host=host, port=port,
                                     owns_server=True).start()
        else:
            frontend = HttpFrontend(server, host=host, port=port,
                                    owns_server=True).start()
        client = HttpClient.for_frontend(frontend)
        say(f"{'asyncio' if use_async else 'http'} front end on "
            f"{frontend.url} — replaying {requests} "
            f"requests at ~{rate_rps:.0f} rps over the wire "
            f"({models} model(s), sla_mode={sla_mode}, "
            f"health: {client.healthz()['status']})")
        outcomes, open_loop_s = replay_http_open_loop(client, plan,
                                                      arrival_offsets)
        # the SSE exercise: stream a small batch and keep the events —
        # bit-identity is checked against the serial refs further down,
        # and the streamed requests are billed into /v1/usage like any
        # other, so the totals cross-check below covers them too
        stream_events: List[Tuple[str, Dict]] = []
        stream_model = cases[0][0]
        if use_async:
            stream_kwargs: Dict = {}
            if stream_model is not None:
                stream_kwargs.update(model=stream_model,
                                     priority=cases[0][1])
            stream_idx = [int(i) for i in image_idx[:3]]
            stream_events = list(client.infer_batch_stream(
                [images[i] for i in stream_idx], binary=True,
                **stream_kwargs))
        snapshot = client.stats()
        # observability wire smoke, while the socket is still up: the
        # exposition must survive the strict parser, and one served
        # request's span tree must come back from the trace ring
        exposition = (parse_prometheus_text(client.metrics())
                      if server.obs.metrics.enabled else None)
        usage = client.usage()
        traced = None
        if server.obs.tracing:
            for outcome in outcomes:
                if outcome["error"] is None:
                    tid = outcome["result"].stats.get("trace_id")
                    if tid:
                        traced = (tid, client.trace(tid))
                        break
        # serial references while the networks are still reachable
        names = {model for model, _ in assignments}
        if use_async:
            names.add(stream_model)
        serial = {model: run_network_serial(
                      server.registry.get(model).network, images, tile_size=1)
                  for model in names}
        frontend.shutdown()

    served = shed = 0
    for i, outcome in enumerate(outcomes):
        model, img = assignments[i]
        if outcome["error"] is not None:
            # only an explicit shed receipt is an acceptable outcome;
            # transport-level exceptions carry no .code and must fail
            if getattr(outcome["error"], "code", None) != "shed":
                raise AssertionError(
                    f"request {i} failed over the wire: {outcome['error']}")
            shed += 1
            continue
        served += 1
        if not np.array_equal(outcome["result"].output, serial[model][img]):
            raise AssertionError(
                f"request {i} ({model or 'default'}): decoded HTTP output "
                "!= in-process serial forward")
    say(f"bit-identity of all {served} served responses vs in-process "
        f"serial forwards: OK ({shed} shed with receipts)")
    stream_served = stream_shed = 0
    if use_async:
        if not stream_events or stream_events[-1][0] != "done":
            raise AssertionError("SSE stream did not end with a 'done' "
                                 f"event: {[e for e, _ in stream_events]}")
        for event, data in stream_events[:-1]:
            if event == "shed":
                stream_shed += 1
                continue
            if event != "result":
                raise AssertionError(f"unexpected SSE event {event!r}")
            stream_served += 1
            decoded = WireResult.from_body(data)
            ref = serial[stream_model][stream_idx[data["index"]]]
            if not np.array_equal(decoded.output, ref):
                raise AssertionError(
                    f"SSE item {data['index']}: streamed output != "
                    "in-process serial forward")
        done = stream_events[-1][1]
        if (done["completed"], done["shed"]) != (stream_served, stream_shed):
            raise AssertionError(
                f"SSE 'done' claimed {done}; the stream carried "
                f"{stream_served} results / {stream_shed} sheds")
        say(f"SSE stream: {stream_served} result events bit-identical, "
            f"{stream_shed} shed, terminal 'done' consistent — OK")
        served += stream_served
        shed += stream_shed
    totals = usage["totals"]
    if (totals["requests"], totals["sheds"]) != (served, shed):
        raise AssertionError(
            f"/v1/usage billed {totals['requests']} requests / "
            f"{totals['sheds']} sheds; the wire saw {served} / {shed}")
    obs_bits = [f"/v1/usage billed {totals['requests']} requests, "
                f"{totals['macs']} macs"]
    if exposition is not None:
        obs_bits.insert(0, f"/metrics parsed clean "
                           f"({len(exposition)} families)")
    if traced is not None:
        tid, record = traced
        root = record["spans"][0]
        obs_bits.append(f"/v1/trace/{tid[:8]}… returned a "
                        f"{root['name']!r} span with "
                        f"{len(root.get('children', []))} children")
    say(f"observability: {'; '.join(obs_bits)} — OK")
    say(f"wire snapshot: p50 {snapshot['latency_p50_s'] * 1e3:.2f} ms, "
        f"p95 {snapshot['latency_p95_s'] * 1e3:.2f} ms, "
        f"mean batch {snapshot['mean_batch_size']:.2f}, "
        f"occupancy {snapshot['occupancy']:.2f}, "
        f"{requests / open_loop_s:.1f} rps over the wire")
    for name, group in sorted(snapshot.get("per_class", {}).items()):
        say(f"  class {name:12s} completed {group['completed']:3d}, "
            f"shed {group['shed']:3d}, "
            f"p95 {group['latency_p95_s'] * 1e3:7.2f} ms")
    # the drain proof: the socket must actually be gone
    try:
        client.healthz()
    except OSError:
        say("drain: port closed, all handlers finished — OK")
    else:
        raise AssertionError("front end still answering after shutdown")
    return snapshot


def run_http_server(models: int = 1, *, host: str = "127.0.0.1",
                    port: int = 8100,
                    deadline_ms: Optional[float] = 50.0,
                    max_batch: int = 4, max_wait_ms: float = 2.0,
                    workers: Optional[int] = None, seed: int = 0, obs=None,
                    use_async: bool = False, sla_mode: str = "strict",
                    print_fn: Optional[Callable[[str], None]] = print,
                    ready: Optional[Callable] = None,
                    stop: Optional[threading.Event] = None) -> Dict:
    """Serve the demo model(s) over HTTP until interrupted.

    The operator mode behind ``python -m repro serve --http PORT``: binds
    the front end (the threaded :class:`~repro.serving.HttpFrontend`, or
    the asyncio :class:`~repro.serving.aio.AsyncFrontend` with
    ``use_async=True`` — same wire protocol plus SSE streaming), prints
    the curl lines of the ``docs/serving.md`` walkthrough, and blocks
    until Ctrl-C (or ``stop`` is set — the test hook; ``ready`` receives
    the live frontend once bound).  Draining shutdown on the way out;
    returns the final stats snapshot.
    """
    from .http import HttpFrontend

    say = print_fn if print_fn is not None else (lambda line: None)
    server, traffic = build_demo_server(models, deadline_ms=deadline_ms,
                                        max_batch=max_batch,
                                        max_wait_ms=max_wait_ms,
                                        workers=workers, seed=seed, obs=obs,
                                        sla_mode=sla_mode)
    stop = stop if stop is not None else threading.Event()
    with server:
        if use_async:
            from .aio import AsyncFrontend
            frontend = AsyncFrontend(server, host=host, port=port,
                                     owns_server=True, log=say).start()
        else:
            frontend = HttpFrontend(server, host=host, port=port,
                                    owns_server=True, log=say).start()
        shape = list(traffic["images"].shape[1:])
        say(f"serving {server.registry.names()} on {frontend.url} "
            f"({'asyncio' if use_async else 'threaded'} front end, "
            f"sla_mode={sla_mode}, request shape {shape}; "
            f"Ctrl-C drains and exits)")
        say("try:")
        say(f"  curl -s {frontend.url}/healthz")
        say(f"  curl -s {frontend.url}/v1/models")
        model, priority, deadline = traffic["cases"][0]
        envelope = "\\\"input\\\": [[...]]" if model is None else (
            f"\\\"model\\\": \\\"{model}\\\", \\\"priority\\\": "
            f"\\\"{priority}\\\", \\\"input\\\": [[...]]")
        say(f"  curl -s -X POST {frontend.url}/v1/infer "
            f"-H 'Content-Type: application/json' -d '{{{envelope}}}'")
        if use_async:
            say(f"  curl -sN -X POST "
                f"'{frontend.url}/v1/infer_batch?stream=1' "
                f"-H 'Content-Type: application/json' "
                f"-d '{{\"inputs\": [[[...]], [[...]]]}}'")
        say(f"  curl -s {frontend.url}/v1/stats")
        if server.obs.metrics.enabled:
            say(f"  curl -s {frontend.url}/metrics")
        say(f"  curl -s {frontend.url}/v1/usage")
        if ready is not None:
            ready(frontend)
        try:
            while not stop.wait(0.2):
                pass
        except KeyboardInterrupt:
            say("interrupt: draining")
        frontend.shutdown()
        # snapshot after the drain so requests served during it count
        snapshot = server.server_stats()
        say("drained; front end closed")
    return snapshot


def run_cluster_server(replicas: int = 2, *, host: str = "127.0.0.1",
                       port: int = 8100, workers: int = 1, seed: int = 0,
                       replication: int = 2,
                       hedge_delay_s: Optional[float] = None,
                       print_fn: Optional[Callable[[str], None]] = print,
                       ready: Optional[Callable] = None,
                       stop: Optional[threading.Event] = None) -> Dict:
    """Serve the demo models through a replica cluster until interrupted.

    The operator mode behind ``python -m repro serve --cluster N --http
    PORT``: boots ``replicas`` subprocess replicas of the identical demo
    build (bit-identical outputs — the property failover relies on),
    a health-probing directory and a
    :class:`~repro.serving.cluster.ClusterRouter` on ``port``, prints
    the cluster walkthrough curl lines, and blocks until Ctrl-C (or
    ``stop`` — the test hook; ``ready`` receives the live harness).
    Returns the final ``/v1/cluster`` snapshot.
    """
    from .cluster import ClusterHarness, RoutingPolicy
    from .http import HttpClient

    say = print_fn if print_fn is not None else (lambda line: None)
    stop = stop if stop is not None else threading.Event()
    policy = RoutingPolicy(hedge_delay_s=hedge_delay_s)
    with ClusterHarness(replicas, seed=seed, workers=workers,
                        replication=replication, policy=policy,
                        router_port=port, host=host, log=None) as harness:
        router = harness.router
        backends = ", ".join(f"{name}:{proc.port}"
                             for name, proc in harness.replicas.items())
        say(f"cluster router on {router.url} over {replicas} replica(s) "
            f"({backends}; replication={replication}; Ctrl-C drains and "
            f"exits)")
        say("try:")
        say(f"  curl -s {router.url}/healthz")
        say(f"  curl -s {router.url}/v1/cluster")
        say(f"  curl -s -X POST {router.url}/v1/infer "
            f"-H 'Content-Type: application/json' "
            f"-d '{{\"model\": \"fast\", \"priority\": \"interactive\", "
            f"\"input\": [[...]]}}'")
        if ready is not None:
            ready(harness)
        try:
            while not stop.wait(0.2):
                pass
        except KeyboardInterrupt:
            say("interrupt: draining")
        client = HttpClient(router.host, router.port)
        _, snapshot = client.request("GET", "/v1/cluster")
    say("drained; router and replicas closed")
    return snapshot


def run_cluster_demo(requests: int = 16, rate_rps: float = 200.0,
                     replicas: int = 2, *, workers: int = 1, seed: int = 0,
                     replication: int = 2,
                     hedge_delay_s: Optional[float] = None,
                     print_fn: Optional[Callable[[str], None]] = print
                     ) -> Dict:
    """Kill a replica under live routed traffic and prove the failover.

    The self-checking cluster smoke behind ``--cluster N --http 0
    --http-demo``: drives :func:`repro.perf.cluster.drive_cluster_chaos`
    — open-loop Poisson ``POST /v1/infer`` arrivals through the router
    while the interactive tenant's primary replica is SIGKILLed and
    restarted mid-run — and prints the failover accounting.  The driver
    raises if any completed response deviates from the parent's serial
    single-image forward, any request hangs, any failure is not a
    documented receipt, or the killed replica fails to rejoin.  Returns
    the final ``/v1/cluster`` snapshot.
    """
    from ..perf.cluster import drive_cluster_chaos

    say = print_fn if print_fn is not None else (lambda line: None)
    say(f"cluster chaos: {requests} requests at ~{rate_rps:.0f} rps "
        f"through a router over {replicas} replica(s), SIGKILL + restart "
        f"mid-traffic")
    driven = drive_cluster_chaos(rate_rps, requests, replicas=replicas,
                                 replication=replication,
                                 hedge_delay_s=hedge_delay_s,
                                 workers=workers, seed=seed)
    for entry in driven["kill_log"]:
        say(f"  t={entry['at_s'] * 1e3:7.1f} ms: {entry['action']} "
            f"{entry['replica']}")
    router = driven["cluster"]["router"]
    counts = driven["cluster"]["directory"]["counts"]
    say(f"completed {driven['completed']}/{requests} "
        f"(receipts: {driven['shed_codes'] or 'none'}); "
        f"{router['failovers']} failovers, "
        f"{router['hedges_fired']} hedges fired "
        f"({router['hedges_won']} won), "
        f"{router['unavailable']} unavailable receipts")
    say(f"replicas after restart: {counts['up']} up, "
        f"{counts['suspect']} suspect, {counts['down']} down")
    say(f"bit-identity of all {driven['completed']} completed responses "
        f"vs serial forwards: OK (zero hung requests; trace ids echoed)")
    return driven["cluster"]


def run_http_cli(args) -> int:
    """The shared ``--http`` dispatch of ``python -m repro serve`` and
    ``scripts/serve_demo.py`` (one copy, so the two entry points cannot
    drift): resolves the deadline, coerces the model count, prints the
    FIFO-knobs note for the SLA shape, and runs either the self-checking
    wire demo (``--http-demo``) or the serve-until-interrupted server —
    single-process by default, the replica cluster with ``--cluster N``.
    """
    from ..obs import Observability

    cluster = getattr(args, "cluster", None)
    if cluster is not None:
        hedge = (args.hedge_ms / 1e3 if getattr(args, "hedge_ms", None)
                 is not None else None)
        knobs = dict(replicas=cluster,
                     workers=(args.workers if args.workers is not None
                              else 1),
                     seed=args.seed,
                     replication=getattr(args, "cluster_replication", 2),
                     hedge_delay_s=hedge)
        if args.http_demo:
            run_cluster_demo(requests=args.requests, rate_rps=args.rate,
                             **knobs)
        else:
            run_cluster_server(host=args.http_host, port=args.http, **knobs)
        return 0
    deadline = (args.deadline_ms if args.deadline_ms is not None
                and args.deadline_ms > 0 else None)
    classes = (args.priority_classes if args.priority_classes is not None
               else args.models)
    models = 2 if (args.models > 1 or classes > 1) else 1
    if models > 1 and (args.max_batch, args.max_wait_ms) != (4, 2.0):
        print("note: --max-batch/--max-wait-ms are FIFO knobs; the SLA "
              "demo's classes carry their own coalescing budgets "
              "(ignored here)")
    # --no-metrics / --trace-ring shape the single-process server's
    # Observability bundle (the cluster's subprocess replicas boot their
    # own defaults — the flags do not reach across the fork)
    obs = Observability(metrics=not getattr(args, "no_metrics", False),
                        trace_ring=getattr(args, "trace_ring", 256))
    knobs = dict(models=models, host=args.http_host, port=args.http,
                 deadline_ms=deadline, max_batch=args.max_batch,
                 max_wait_ms=args.max_wait_ms, workers=args.workers,
                 seed=args.seed, obs=obs,
                 use_async=getattr(args, "use_async", False),
                 sla_mode=getattr(args, "sla_mode", "strict"))
    if args.http_demo:
        run_http_demo(requests=args.requests, rate_rps=args.rate, **knobs)
    else:
        run_http_server(**knobs)
    return 0

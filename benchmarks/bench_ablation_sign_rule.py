"""Ablation — fragment sign rule: paper's sum rule (Eq. 2) vs L2-optimal.

The sum rule is what the paper trains with; the L2 rule picks the
projection-distance-minimizing sign.  This ablation measures both the
immediate projection damage (pre-retraining distance) and the final accuracy
after the polarization phase.  Expected: L2 never projects farther; final
accuracies are comparable (ADMM retraining absorbs the difference), which
justifies the paper's simpler rule.
"""

from dataclasses import replace

import numpy as np

from repro.analysis import FAST, ExperimentTable, forms_config_for, train_baseline
from repro.core import FORMSPipeline, compute_signs, project_polarization
from repro.reram.variation import clone_model


def run_ablation(seed: int = 0):
    baseline = train_baseline("vgg16", "cifar10", FAST, seed=seed)
    rows = []
    extras = {}
    for rule in ("sum", "l2"):
        config = replace(forms_config_for(FAST, "cifar10", do_prune=False,
                                          do_quantize=False), sign_rule=rule)
        # one-shot projection distance before any retraining
        distance = 0.0
        total = 0.0
        from repro.nn import compressible_layers
        for _, layer in compressible_layers(baseline.model):
            geom = config.geometry_for(layer)
            w = layer.weight.data.astype(np.float64)
            signs = compute_signs(w, geom, rule)
            projected = project_polarization(w, geom, signs)
            distance += float(((w - projected) ** 2).sum())
            total += float((w ** 2).sum())
        model = clone_model(baseline.model)
        result = FORMSPipeline(config).optimize(model, baseline.train_set,
                                                baseline.test_set, seed=seed)
        rows.append([rule, np.sqrt(distance / total) * 100.0,
                     result.final_accuracy * 100.0])
        extras[rule] = {"distance": distance, "accuracy": result.final_accuracy}
    table = ExperimentTable(
        "Ablation: polarization sign rule (VGG-16 / CIFAR-10, fragment 8)",
        ["sign rule", "projection distance (% of ||W||)", "final accuracy %"],
        rows)
    table.extras.update(extras)
    return table


def test_ablation_sign_rule(benchmark, save_table):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_table("ablation_sign_rule", result)
    benchmark.extra_info["table"] = result.rendered
    # L2 rule is distance-optimal by construction.
    assert result.extras["l2"]["distance"] <= result.extras["sum"]["distance"] + 1e-9
    # Both rules end up with usable accuracy after ADMM retraining.
    assert result.extras["sum"]["accuracy"] > 0.5
    assert result.extras["l2"]["accuracy"] > 0.5

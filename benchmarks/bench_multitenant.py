#!/usr/bin/env python
"""Multi-tenant mixed-traffic serving benchmark: SLA contention recorder.

Drives two tenants with opposed SLAs — an interactive small model under
the highest-precedence class (tiny batches, per-request deadline) and a
bulk heavy model under a best-effort class (large batches, class latency
bound) — through one shared ``WorkerPool`` + ``DieCache`` with open-loop
Poisson arrivals at several offered rates, and records one ``"serving"``
record per rate into ``BENCH_engine.json``: per-class and per-model
latency percentiles, shed accounting and die-reuse stats, merged so the
engine suite's and ``bench_serving.py``'s records are preserved (schema
in ``benchmarks/README.md``).

Usage::

    PYTHONPATH=src python benchmarks/bench_multitenant.py --smoke   # < 30 s
    PYTHONPATH=src python benchmarks/bench_multitenant.py           # full curve
    PYTHONPATH=src python benchmarks/bench_multitenant.py \\
        --rates 100 800 --requests 64 -o /tmp/multitenant.json

Every rate point asserts — under mixed-class contention, with shedding
in play — that each served output is bit-identical to a direct serial
single-image forward through its tenant's network before anything is
recorded.  Exits non-zero if that assertion fails or if fewer than two
rate points were recorded.
"""

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf import (merge_records_into_file,  # noqa: E402
                        run_multitenant_point)
from repro.reram import DieCache                                     # noqa: E402

#: offered arrival rates (requests/s) per mode — always a light-load and
#: a saturating point so the recorded curve shows the SLA protection
SMOKE_RATES = (50.0, 400.0)
FULL_RATES = (25.0, 100.0, 400.0, 1600.0)


def format_point(record: dict) -> str:
    results, meta = record["results"], record["meta"]
    lines = [f"{record['name']:26s} offered {results['offered_rate_rps']:6.0f}"
             f" rps -> served {results['throughput_rps']:6.1f} rps, "
             f"shed {results['requests_shed']} "
             f"{results['shed_by_reason'] or ''} "
             f"(w={meta['workers']}, mean batch "
             f"{results['mean_batch_size']:.2f})"]
    for name, group in sorted(results["per_class"].items()):
        lines.append(f"    class {name:12s} completed {group['completed']:3d}"
                     f" shed {group['shed']:3d}"
                     f" p50 {group['latency_p50_s'] * 1e3:8.2f} ms"
                     f" p95 {group['latency_p95_s'] * 1e3:8.2f} ms")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast mode: two rate points, fewer requests")
    parser.add_argument("--rates", type=float, nargs="+", default=None,
                        help="offered arrival rates in requests/s "
                             "(default: two smoke points / four full points)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per rate point (default 16 smoke / 64)")
    parser.add_argument("--interactive-fraction", type=float, default=0.4,
                        help="fraction of traffic in the interactive class")
    parser.add_argument("--deadline-ms", type=float, default=50.0,
                        help="per-request deadline of the interactive class")
    parser.add_argument("--bulk-shed-after-ms", type=float, default=150.0,
                        help="bulk-class latency bound (shed past this)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-pool size (default: FORMS_WORKERS or "
                             "CPU count)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_engine.json",
                        help="BENCH json to merge records into (default: "
                             "BENCH_engine.json at the repo root)")
    args = parser.parse_args(argv)

    rates = args.rates if args.rates is not None else (
        list(SMOKE_RATES) if args.smoke else list(FULL_RATES))
    requests = args.requests if args.requests is not None else (
        16 if args.smoke else 64)
    if len(rates) < 2:
        print("ERROR: need at least two arrival-rate points for a curve",
              file=sys.stderr)
        return 1

    # <= 0 disables the bound, matching the serve CLIs' convention
    deadline_ms = (args.deadline_ms
                   if args.deadline_ms and args.deadline_ms > 0 else None)
    bulk_shed_after_ms = (args.bulk_shed_after_ms
                          if args.bulk_shed_after_ms
                          and args.bulk_shed_after_ms > 0 else None)

    records = []
    die_cache = DieCache()   # shared: rate points rebuild identical tenants
    for rate in rates:
        record = run_multitenant_point(
            rate, requests, interactive_fraction=args.interactive_fraction,
            deadline_ms=deadline_ms,
            bulk_shed_after_ms=bulk_shed_after_ms,
            workers=args.workers, seed=args.seed, die_cache=die_cache)
        print(format_point(record))
        records.append(record)

    try:
        merge_records_into_file(args.output, records)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    print(f"[{len(records)} multitenant records merged into {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Drain races on the asyncio front end: streams and batches never hang.

The async mirror of ``test_http_resilience.py``'s drain race, with the
surface only the event loop has: SSE streams.  Concurrent
``POST /v1/infer_batch`` submissions — plain and ``?stream=1`` — race
``shutdown()``; every one must resolve within a bounded wait as exactly
one of

* **served bit-exactly** (a full batch body, or a stream whose
  ``result`` events carry the exact bytes and whose ``done`` tallies
  them),
* a **clean refusal** (the socket is already gone: ``OSError``, or the
  stream tears mid-flight: truncated event iterator), or
* a **documented 503** (``shutting_down`` / ``shed`` with a receipt),

and never a hang.  Plus the async twins of the Retry-After and
X-Request-Id contracts, which share the threaded implementation's
helpers but travel a different handler.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.serving import (DEFAULT_RETRY_AFTER_S, AsyncFrontend, HttpClient,
                           HttpError, InferenceServer, ModelRegistry)
from repro.serving.http import _TRACE_ID_RE


def make_frontend(*, delay=0.0, **frontend_kwargs):
    registry = ModelRegistry(workers=1)

    def network(tensor):
        if delay:
            time.sleep(delay)
        return Tensor(tensor.data.reshape(tensor.data.shape[0], -1) * 2.0)

    registry.register_network("toy", network)
    server = InferenceServer(registry=registry, max_batch=2, max_wait_s=0.0)
    return AsyncFrontend(server, owns_server=True,
                         **frontend_kwargs).start()


def raw_request(frontend, method, path, *, body=None, headers=None):
    connection = http.client.HTTPConnection(frontend.host, frontend.port,
                                            timeout=10.0)
    try:
        payload = None if body is None else json.dumps(body).encode()
        base = {"Content-Type": "application/json"} if payload else {}
        base.update(headers or {})
        connection.request(method, path, body=payload, headers=base)
        response = connection.getresponse()
        decoded = json.loads(response.read().decode())
        return response.status, dict(response.getheaders()), decoded
    finally:
        connection.close()


class TestAsyncResilienceHeaders:
    def test_503_carries_retry_after_and_mirror(self):
        frontend = make_frontend()
        try:
            frontend._draining = True   # deterministic 503, socket still up
            status, headers, payload = raw_request(
                frontend, "POST", "/v1/infer", body={"input": [1.0]})
        finally:
            frontend._draining = False
            frontend.shutdown()
        assert status == 503
        assert payload["error"]["code"] == "shutting_down"
        assert headers["Retry-After"] == f"{DEFAULT_RETRY_AFTER_S:g}"
        assert payload["error"]["retry_after_s"] == DEFAULT_RETRY_AFTER_S

    def test_trace_id_echo_and_mint(self):
        frontend = make_frontend()
        try:
            _, echoed, _ = raw_request(frontend, "GET", "/healthz",
                                       headers={"X-Request-Id": "req-a1"})
            _, minted, _ = raw_request(frontend, "GET", "/healthz",
                                       headers={"X-Request-Id": "bad id"})
        finally:
            frontend.shutdown()
        assert echoed["X-Request-Id"] == "req-a1"
        assert minted["X-Request-Id"] != "bad id"
        assert _TRACE_ID_RE.match(minted["X-Request-Id"])

    def test_error_body_carries_trace_id(self):
        frontend = make_frontend()
        try:
            status, headers, payload = raw_request(
                frontend, "GET", "/v1/nope",
                headers={"X-Request-Id": "trace-async-7"})
        finally:
            frontend.shutdown()
        assert status == 404
        assert payload["error"]["trace_id"] == "trace-async-7"
        assert headers["X-Request-Id"] == "trace-async-7"


class TestDrainRacingStreamsAndBatches:
    def test_every_concurrent_submission_resolves(self):
        """Plain batches and SSE streams hammer the front end while it
        drains: every call resolves as served-bit-exact, clean refusal,
        or documented 503 — bounded wait, no hangs."""
        frontend = make_frontend(delay=0.05)
        client = HttpClient.for_frontend(frontend)
        images = np.ones((3, 4))
        outcomes = [None] * 10
        started = threading.Barrier(len(outcomes) + 1)

        def submit(i):
            started.wait()
            time.sleep(0.01 * i)   # spread submissions across the drain
            try:
                if i % 2:          # odd slots stream, even slots batch
                    outcomes[i] = ("stream",
                                   list(client.infer_batch_stream(images)))
                else:
                    outcomes[i] = ("batch", client.infer_batch(images))
            except (HttpError, OSError) as exc:
                outcomes[i] = ("error", exc)

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(len(outcomes))]
        for thread in threads:
            thread.start()
        started.wait()
        time.sleep(0.03)           # let some work reach the scheduler
        frontend.shutdown()
        deadline = time.monotonic() + 30.0
        for i, thread in enumerate(threads):
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            assert not thread.is_alive(), f"submission {i} hung"

        served = 0
        for outcome in outcomes:
            assert outcome is not None
            kind, value = outcome
            if kind == "error":
                if isinstance(value, HttpError):
                    assert value.status == 503
                    assert value.code in ("shutting_down", "shed")
                else:
                    assert isinstance(value, OSError)   # socket gone
                continue
            if kind == "batch":
                for item in value:
                    assert not isinstance(item, HttpError)
                    np.testing.assert_array_equal(item.output,
                                                  np.ones(4) * 2.0)
                served += 1
                continue
            # a stream: every result event bit-exact; if the stream ran
            # to completion its done must tally the events
            events = value
            results = [data for event, data in events if event == "result"]
            for data in results:
                np.testing.assert_array_equal(
                    np.asarray(data["output"], dtype=np.float64),
                    np.ones(4) * 2.0)
            if events and events[-1][0] == "done":
                done = events[-1][1]
                sheds = sum(1 for event, _ in events if event == "shed")
                assert done == {"completed": len(results), "shed": sheds}
                served += 1
            # a truncated stream (no done) is a clean refusal: the
            # server tore the connection during the drain — the work
            # itself still resolved server-side
        assert served >= 1, "the drain refused even the in-flight work"

    def test_stream_opened_before_drain_completes_bit_exact(self):
        """A stream whose items are already queued when shutdown() lands
        still emits every result — the drain resolves all futures, and
        SSE handlers flush before the loop stops."""
        frontend = make_frontend(delay=0.08)
        client = HttpClient.for_frontend(frontend)
        images = np.ones((4, 4))
        collected = {}

        def stream():
            collected["events"] = list(client.infer_batch_stream(images))

        worker = threading.Thread(target=stream)
        worker.start()
        time.sleep(0.1)            # items enqueued, stream head written
        frontend.shutdown()
        worker.join(timeout=30.0)
        assert not worker.is_alive(), "the stream hung through the drain"
        events = collected["events"]
        assert events[-1][0] == "done"
        results = [data for event, data in events if event == "result"]
        assert len(results) == len(images)
        for data in results:
            np.testing.assert_array_equal(
                np.asarray(data["output"], dtype=np.float64),
                np.ones(4) * 2.0)

    def test_new_work_refused_while_draining(self):
        frontend = make_frontend(delay=0.2)
        client = HttpClient.for_frontend(frontend)
        client.retries = 0
        blocker = threading.Thread(
            target=lambda: client.infer(np.ones(4)))
        blocker.start()
        time.sleep(0.08)           # the blocker is dispatching
        closer = threading.Thread(target=frontend.shutdown)
        closer.start()
        time.sleep(0.05)
        assert frontend.draining
        with pytest.raises((HttpError, OSError)) as err:
            client.infer(np.ones(4))
        if isinstance(err.value, HttpError):
            assert err.value.status == 503
            assert err.value.code in ("shutting_down", "shed")
        blocker.join(timeout=10.0)
        closer.join(timeout=10.0)
        assert not blocker.is_alive() and not closer.is_alive()
        with pytest.raises(OSError):
            client.healthz()       # the port is actually gone

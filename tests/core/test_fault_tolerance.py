"""Fault-tolerant mapping tests (ref [29] mitigations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (ADMMConfig, CrossbarShape, FORMSConfig, FORMSPipeline)
from repro.core.fault_tolerance import (MitigationConfig, MitigationPlan,
                                        apply_fault_injection,
                                        apply_faults_to_magnitudes,
                                        fault_tolerance_study,
                                        fragment_costs,
                                        magnitude_fault_impact,
                                        plan_mitigation)
from repro.nn import (Adam, Conv2d, Flatten, Linear, ReLU, Sequential,
                      evaluate, fit, set_init_seed)
from repro.nn.data import make_synthetic
from repro.reram.nonideal import FAULT_NONE, FAULT_SA0, FAULT_SA1, FaultModel

MAX_LEVEL = 127


def random_magnitudes(rows, cols, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, MAX_LEVEL + 1, size=(rows, cols))


class TestImpactModel:
    def test_no_faults_no_impact(self):
        mag = random_magnitudes(16, 4)
        mask = np.full(mag.shape, FAULT_NONE)
        assert magnitude_fault_impact(mag, mask, MAX_LEVEL) == 0.0

    def test_sa0_impact_is_lost_magnitude(self):
        mag = np.array([[100, 0], [50, 20]])
        mask = np.array([[FAULT_SA0, FAULT_NONE], [FAULT_NONE, FAULT_SA0]])
        assert magnitude_fault_impact(mag, mask, MAX_LEVEL) == 120.0

    def test_sa1_impact_is_saturation_gap(self):
        mag = np.array([[100], [0]])
        mask = np.array([[FAULT_SA1], [FAULT_SA1]])
        assert magnitude_fault_impact(mag, mask, MAX_LEVEL) == 27.0 + 127.0

    def test_sa0_on_zero_weight_is_free(self):
        mag = np.zeros((4, 2), dtype=np.int64)
        mask = np.full(mag.shape, FAULT_SA0)
        assert magnitude_fault_impact(mag, mask, MAX_LEVEL) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            magnitude_fault_impact(np.zeros((2, 2)), np.zeros((3, 2)), MAX_LEVEL)
        with pytest.raises(ValueError):
            magnitude_fault_impact(np.full((2, 2), 200), np.zeros((2, 2)),
                                   MAX_LEVEL)


class TestFragmentCosts:
    def test_shapes(self):
        mag = random_magnitudes(16, 4)
        mask = FaultModel(0.1, 0.05, seed=0).sample(mag.shape)
        direct, complement = fragment_costs(mag, mask, MAX_LEVEL, 8)
        assert direct.shape == (2, 4, 4)
        assert complement.shape == (2, 4, 4)

    def test_diagonal_matches_direct_impact(self):
        mag = random_magnitudes(16, 4)
        mask = FaultModel(0.2, 0.1, seed=1).sample(mag.shape)
        direct, _ = fragment_costs(mag, mask, MAX_LEVEL, 8)
        identity_total = direct[:, np.arange(4), np.arange(4)].sum()
        assert identity_total == pytest.approx(
            magnitude_fault_impact(mag, mask, MAX_LEVEL))

    def test_complement_swaps_sa0_sa1_roles(self):
        mag = np.full((8, 1), 100)
        sa0_mask = np.full((8, 1), FAULT_SA0)
        sa1_mask = np.full((8, 1), FAULT_SA1)
        d_sa0, c_sa0 = fragment_costs(mag, sa0_mask, MAX_LEVEL, 8)
        d_sa1, c_sa1 = fragment_costs(mag, sa1_mask, MAX_LEVEL, 8)
        assert d_sa0.sum() == pytest.approx(c_sa1.sum())
        assert d_sa1.sum() == pytest.approx(c_sa0.sum())

    def test_ragged_rows_padded(self):
        mag = random_magnitudes(10, 3)   # not a multiple of fragment 8
        mask = np.full(mag.shape, FAULT_NONE)
        direct, _ = fragment_costs(mag, mask, MAX_LEVEL, 8)
        assert direct.shape == (2, 3, 3)
        assert direct.sum() == 0.0


class TestPlanMitigation:
    def test_clean_die_identity_plan(self):
        mag = random_magnitudes(16, 4)
        mask = np.full(mag.shape, FAULT_NONE)
        plan = plan_mitigation(mag, mask, MAX_LEVEL, 8)
        assert plan.baseline_impact == 0.0
        assert plan.planned_impact == 0.0
        assert plan.impact_reduction == 0.0

    def test_remapping_never_hurts(self):
        for seed in range(5):
            mag = random_magnitudes(32, 8, seed=seed)
            mask = FaultModel(0.05, 0.01, seed=seed).sample(mag.shape)
            plan = plan_mitigation(mag, mask, MAX_LEVEL, 8)
            assert plan.planned_impact <= plan.baseline_impact + 1e-9

    def test_remapping_steers_faults_to_zero_columns(self):
        # Column 0 holds zeros, column 1 holds large weights; the fault sits
        # on physical column 1 -> the plan should map the zero column there.
        mag = np.zeros((8, 2), dtype=np.int64)
        mag[:, 1] = 120
        mask = np.full(mag.shape, FAULT_NONE)
        mask[3, 1] = FAULT_SA0
        plan = plan_mitigation(mag, mask, MAX_LEVEL, 8,
                               MitigationConfig(differential_fragments=False))
        assert plan.permutation[0] == 1   # zeros absorb the fault
        assert plan.planned_impact == 0.0
        assert plan.baseline_impact == 120.0

    def test_differential_fixes_sa1_on_small_weights(self):
        # Small weights + SA1 fault: direct storage costs max - q, the
        # complement representation costs only q.
        mag = np.full((8, 1), 5)
        mask = np.full(mag.shape, FAULT_NONE)
        mask[2, 0] = FAULT_SA1
        no_diff = plan_mitigation(mag, mask, MAX_LEVEL, 8,
                                  MitigationConfig(differential_fragments=False))
        with_diff = plan_mitigation(mag, mask, MAX_LEVEL, 8,
                                    MitigationConfig(differential_fragments=True))
        assert no_diff.planned_impact == 122.0
        assert with_diff.planned_impact == 5.0
        assert with_diff.complement.any()

    def test_disabled_remap_keeps_identity(self):
        mag = random_magnitudes(16, 4)
        mask = FaultModel(0.1, 0.05, seed=3).sample(mag.shape)
        plan = plan_mitigation(mag, mask, MAX_LEVEL, 8,
                               MitigationConfig(remap_columns=False,
                                                differential_fragments=False))
        np.testing.assert_array_equal(plan.permutation, np.arange(4))
        assert plan.planned_impact == plan.baseline_impact

    @given(st.integers(min_value=0, max_value=10000))
    @settings(max_examples=25, deadline=None)
    def test_assignment_is_optimal_for_two_columns(self, seed):
        # With 2 columns there are only 2 assignments; the LAP solution must
        # match brute force.
        mag = random_magnitudes(8, 2, seed=seed)
        mask = FaultModel(0.15, 0.1, seed=seed).sample(mag.shape)
        direct, _ = fragment_costs(mag, mask, MAX_LEVEL, 8)
        cost = direct.sum(axis=0)
        best = min(cost[0, 0] + cost[1, 1], cost[0, 1] + cost[1, 0])
        plan = plan_mitigation(mag, mask, MAX_LEVEL, 8,
                               MitigationConfig(differential_fragments=False))
        assert plan.planned_impact == pytest.approx(best)


class TestApplyFaults:
    def test_no_faults_identity(self):
        mag = random_magnitudes(16, 4)
        mask = np.full(mag.shape, FAULT_NONE)
        out = apply_faults_to_magnitudes(mag, mask, MAX_LEVEL, 8)
        np.testing.assert_array_equal(out, mag)

    def test_direct_faults_applied(self):
        mag = np.array([[50, 60], [70, 80]])
        mask = np.array([[FAULT_SA0, FAULT_NONE], [FAULT_NONE, FAULT_SA1]])
        out = apply_faults_to_magnitudes(mag, mask, MAX_LEVEL, 2)
        np.testing.assert_array_equal(out, [[0, 60], [70, MAX_LEVEL]])

    def test_plan_execution_matches_planned_impact(self):
        for seed in range(4):
            mag = random_magnitudes(24, 6, seed=seed)
            mask = FaultModel(0.08, 0.04, seed=seed).sample(mag.shape)
            plan = plan_mitigation(mag, mask, MAX_LEVEL, 8)
            realized = apply_faults_to_magnitudes(mag, mask, MAX_LEVEL, 8, plan)
            actual_impact = float(np.abs(realized.astype(np.int64)
                                         - mag.astype(np.int64)).sum())
            assert actual_impact == pytest.approx(plan.planned_impact)

    def test_mitigated_error_never_worse(self):
        for seed in range(4):
            mag = random_magnitudes(32, 8, seed=100 + seed)
            mask = FaultModel(0.05, 0.02, seed=seed).sample(mag.shape)
            plain = apply_faults_to_magnitudes(mag, mask, MAX_LEVEL, 8)
            plan = plan_mitigation(mag, mask, MAX_LEVEL, 8)
            fixed = apply_faults_to_magnitudes(mag, mask, MAX_LEVEL, 8, plan)
            err_plain = np.abs(plain.astype(np.int64) - mag).sum()
            err_fixed = np.abs(fixed.astype(np.int64) - mag).sum()
            assert err_fixed <= err_plain

    def test_ragged_rows_round_trip(self):
        mag = random_magnitudes(10, 3, seed=9)
        mask = np.full(mag.shape, FAULT_NONE)
        out = apply_faults_to_magnitudes(mag, mask, MAX_LEVEL, 8)
        assert out.shape == mag.shape
        np.testing.assert_array_equal(out, mag)


@pytest.fixture(scope="module")
def optimized_for_faults():
    train, test = make_synthetic("ft", 4, 1, 8, 160, 64, seed=23)
    set_init_seed(23)
    model = Sequential(Conv2d(1, 8, 3, padding=1), ReLU(),
                       Flatten(), Linear(8 * 8 * 8, 4))
    fit(model, train, Adam(model.parameters(), 1e-3), epochs=4, batch_size=16)
    admm = ADMMConfig(iterations=1, epochs_per_iteration=1, retrain_epochs=1)
    config = FORMSConfig(fragment_size=4, crossbar=CrossbarShape(16, 16),
                         filter_keep=0.75, shape_keep=0.75,
                         prune_admm=admm, polarize_admm=admm,
                         quantize_admm=admm)
    FORMSPipeline(config).optimize(model, train, test, seed=23)
    return model, config, train, test


class TestModelLevelInjection:
    def test_zero_rate_preserves_accuracy(self, optimized_for_faults):
        model, config, _, test = optimized_for_faults
        clean = apply_fault_injection(model, config,
                                      FaultModel(0.0, 0.0, seed=0))
        base = evaluate(model, test).accuracy
        assert evaluate(clean, test).accuracy == pytest.approx(base, abs=0.02)

    def test_faults_change_weights_original_untouched(self, optimized_for_faults):
        from repro.nn.layers import compressible_layers

        model, config, _, _ = optimized_for_faults
        before = {name: layer.weight.data.copy()
                  for name, layer in compressible_layers(model)}
        faulty = apply_fault_injection(model, config,
                                       FaultModel(0.2, 0.1, seed=1))
        for name, layer in compressible_layers(model):
            np.testing.assert_array_equal(layer.weight.data, before[name])
        assert any(not np.array_equal(layer.weight.data, before[name])
                   for name, layer in compressible_layers(faulty))

    def test_study_mitigation_recovers_impact(self, optimized_for_faults):
        model, config, _, test = optimized_for_faults
        points = fault_tolerance_study(model, config, test,
                                       fault_rates=[(0.05, 0.01)], runs=3,
                                       seed=5)
        (point,) = points
        # Paired dies: mitigation can only remove fault impact.
        assert point.mitigated_mean >= point.unmitigated_mean - 0.02
        assert len(point.unmitigated_accuracies) == 3

"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the :mod:`repro.nn` training substrate.  The
FORMS paper trains its models with PyTorch; offline we provide an equivalent
(but intentionally small) autograd engine.  A :class:`Tensor` wraps a numpy
array, records the operations applied to it, and :meth:`Tensor.backward`
propagates gradients through the recorded graph in reverse topological order.

Only the primitives needed by the layers in :mod:`repro.nn.functional` are
implemented, but each primitive supports full numpy broadcasting with correct
gradient reduction (see :func:`unbroadcast`).

Example
-------
>>> from repro.nn.tensor import Tensor
>>> x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad.tolist()
[2.0, 4.0, 6.0]
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

DEFAULT_DTYPE = np.float32

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True


class no_grad:
    """Context manager that disables graph construction.

    Mirrors ``torch.no_grad``: inside the block, results of tensor operations
    do not require grad and no backward closures are recorded.  Used by
    evaluation loops and by the ADMM projection steps (which must modify
    weights out-of-graph).
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _grad_enabled


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape``.

    When an operand was broadcast during the forward pass, its gradient must
    be summed over the broadcast axes.  This implements the inverse of numpy
    broadcasting.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, (np.ndarray, np.generic)):
        # Preserve the dtype of numpy arrays AND scalars (a full-reduction
        # like ``t.sum()`` yields a 0-d numpy scalar whose precision must
        # survive — silently downcasting float64 graphs breaks grad checks).
        array = np.asarray(value)
        if dtype is not None and array.dtype != dtype:
            return array.astype(dtype)
        return array
    return np.asarray(value, dtype=dtype or DEFAULT_DTYPE)


class Tensor:
    """A numpy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array (or nested sequence / scalar) holding the values.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, dtype=None):
        self.data: np.ndarray = _as_array(data, dtype)
        self.requires_grad: bool = bool(requires_grad) and _grad_enabled
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._op: str = ""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...], op: str,
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._backward = backward
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).  Gradients
        accumulate into ``.grad`` of leaf tensors (those created directly by
        the user, e.g. parameters); interior nodes use ``.grad`` only as
        transient staging and are cleared as the sweep consumes them.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            seed = np.ones_like(self.data)
        else:
            seed = _as_array(grad, self.data.dtype)
            if seed.shape != self.data.shape:
                raise ValueError(f"gradient shape {seed.shape} does not match tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        _push(self, seed)
        for node in reversed(topo):
            if node._backward is None:
                continue  # leaf: gradient already accumulated by _push
            node_grad = node.grad
            if node_grad is None:
                continue  # not on any path contributing to the output
            node.grad = None  # interior staging is consumed exactly once
            node._backward(node_grad)

    # ------------------------------------------------------------------
    # Arithmetic primitives
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other, dtype=self.dtype)
        data = self.data + other_t.data
        parents = (self, other_t)

        def backward(grad: np.ndarray) -> None:
            _push(self, unbroadcast(grad, self.shape))
            _push(other_t, unbroadcast(grad, other_t.shape))

        return Tensor._make(data, parents, "add", backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            _push(self, -grad)

        return Tensor._make(-self.data, (self,), "neg", backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other, dtype=self.dtype)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            _push(self, unbroadcast(grad, self.shape))
            _push(other_t, unbroadcast(-grad, other_t.shape))

        return Tensor._make(data, (self, other_t), "sub", backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other, dtype=self.dtype) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other, dtype=self.dtype)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            _push(self, unbroadcast(grad * other_t.data, self.shape))
            _push(other_t, unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(data, (self, other_t), "mul", backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other, dtype=self.dtype)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            _push(self, unbroadcast(grad / other_t.data, self.shape))
            _push(other_t, unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape))

        return Tensor._make(data, (self, other_t), "div", backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other, dtype=self.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            _push(self, grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), "pow", backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other, dtype=self.dtype)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                a, b = grad, other_t.data
                if b.ndim == 1:
                    ga = np.outer(grad, b) if self.data.ndim == 2 else grad[..., None] * b
                else:
                    ga = a @ np.swapaxes(b, -1, -2)
                _push(self, unbroadcast(ga, self.shape))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    gb = np.outer(self.data, grad)
                else:
                    gb = np.swapaxes(self.data, -1, -2) @ grad
                _push(other_t, unbroadcast(gb, other_t.shape))

        return Tensor._make(data, (self, other_t), "matmul", backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            _push(self, grad * data)

        return Tensor._make(data, (self,), "exp", backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            _push(self, grad / self.data)

        return Tensor._make(np.log(self.data), (self,), "log", backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            _push(self, grad / (2.0 * data))

        return Tensor._make(data, (self,), "sqrt", backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            _push(self, grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), "tanh", backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            _push(self, grad * mask)

        return Tensor._make(data, (self,), "relu", backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            _push(self, grad * data * (1.0 - data))

        return Tensor._make(data, (self,), "sigmoid", backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            _push(self, grad * np.sign(self.data))

        return Tensor._make(data, (self,), "abs", backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            _push(self, grad * mask)

        return Tensor._make(data, (self,), "clip", backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            _push(self, np.broadcast_to(g, self.shape).copy())

        return Tensor._make(data, (self,), "sum", backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded)
            # Distribute equally among ties (matches numpy/torch convention of
            # subgradient choice closely enough for training).
            counts = mask.sum(axis=axis, keepdims=True)
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            _push(self, mask * (g / counts))

        return Tensor._make(data, (self,), "max", backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            _push(self, grad.reshape(self.shape))

        return Tensor._make(data, (self,), "reshape", backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            _push(self, grad.transpose(inverse))

        return Tensor._make(data, (self,), "transpose", backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            _push(self, full)

        return Tensor._make(data, (self,), "getitem", backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two axes symmetrically by ``padding``."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.data.ndim - 2) + [(padding, padding), (padding, padding)]
        data = np.pad(self.data, pad_width)
        sl = tuple([slice(None)] * (self.data.ndim - 2) +
                   [slice(padding, -padding), slice(padding, -padding)])

        def backward(grad: np.ndarray) -> None:
            _push(self, grad[sl])

        return Tensor._make(data, (self,), "pad2d", backward)


def _push(tensor: Tensor, grad: np.ndarray) -> None:
    """Accumulate ``grad`` into ``tensor`` during an active backward pass."""
    if not tensor.requires_grad:
        return
    if tensor._backward is None:
        # Leaf: accumulate into .grad
        tensor._accumulate(grad)
    else:
        # Interior node: stash on the tensor until the topological sweep
        # reaches it.  We reuse .grad as the staging area and clear it when
        # consumed; this is safe because interior nodes never expose .grad.
        if tensor.grad is None:
            tensor.grad = grad.astype(tensor.data.dtype, copy=True)
        else:
            tensor.grad += grad


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * grad.ndim
            sl[axis] = slice(start, stop)
            _push(t, grad[tuple(sl)])

    return Tensor._make(data, tuple(tensors), "concatenate", backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, moved):
            _push(t, g)

    return Tensor._make(data, tuple(tensors), "stack", backward)

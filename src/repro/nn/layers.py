"""Module system and standard layers.

A :class:`Module` owns named :class:`Parameter` tensors and child modules, in
the style of ``torch.nn.Module``.  The FORMS optimization framework
(:mod:`repro.core`) discovers compressible layers by walking a module tree and
collecting :class:`Conv2d` / :class:`Linear` leaves.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from .tensor import DEFAULT_DTYPE, Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data, dtype=None):
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class for layers and models."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self.training: bool = True

    # ------------------------------------------------------------------
    # Registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BN running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # State round-tripping (used to snapshot/restore models during ADMM)
    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buf in self._buffers.items():
            state[f"{prefix}{name}"] = buf.copy()
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            param.data[...] = state[key]
        for name in self._buffers:
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing buffer {key!r} in state dict")
            self._buffers[name][...] = state[key]
        for name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


# ---------------------------------------------------------------------------
# Initialization
# ---------------------------------------------------------------------------

def kaiming_normal(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialization suitable for ReLU networks."""
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(DEFAULT_DTYPE)


def uniform_fan_in(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    bound = 1.0 / math.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


_INIT_RNG = np.random.default_rng(0)


def set_init_seed(seed: int) -> None:
    """Reset the global layer-initialization RNG (for reproducible models)."""
    global _INIT_RNG
    _INIT_RNG = np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Layers
# ---------------------------------------------------------------------------

class Conv2d(Module):
    """2-D convolution layer; weights shaped (out_channels, in_channels, kh, kw)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(kaiming_normal(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, _INIT_RNG))
        self.bias = Parameter(np.zeros(out_channels, dtype=DEFAULT_DTYPE)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})")


class Linear(Module):
    """Affine layer; weight shaped (out_features, in_features)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(uniform_fan_in((out_features, in_features), in_features, _INIT_RNG))
        self.bias = Parameter(np.zeros(out_features, dtype=DEFAULT_DTYPE)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class BatchNorm2d(Module):
    """Batch normalization over channel axis of (N, C, H, W) input."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features, dtype=DEFAULT_DTYPE))
        self.beta = Parameter(np.zeros(num_features, dtype=DEFAULT_DTYPE))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=DEFAULT_DTYPE))
        self.register_buffer("running_var", np.ones(num_features, dtype=DEFAULT_DTYPE))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(x, self.gamma, self.beta, self.running_mean,
                            self.running_var, self.training, self.momentum, self.eps)


class BatchNorm1d(BatchNorm2d):
    """Batch normalization over (N, C) input (shares the 2-D implementation)."""


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)


class Sequential(Module):
    """Container applying child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            self._modules[name] = module
            object.__setattr__(self, name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        self._modules[name] = module
        object.__setattr__(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Sequential(*(self._modules[name] for name in self._order[index]))
        return self._modules[self._order[index]]

    def __len__(self) -> int:
        return len(self._order)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x


def compressible_layers(model: Module) -> List[Tuple[str, Module]]:
    """Return (name, layer) for every Conv2d/Linear in ``model``.

    These are the layers the FORMS pipeline prunes / polarizes / quantizes.
    """
    return [(name, mod) for name, mod in model.named_modules()
            if isinstance(mod, (Conv2d, Linear))]

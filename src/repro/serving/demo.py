"""Self-contained serving demos: synthetic traffic against small networks.

Backs both ``python -m repro serve`` and ``scripts/serve_demo.py`` in two
shapes:

* :func:`run_demo` — the single-model FIFO demo (the PR-3 path): drives
  the shared Poisson harness (:func:`repro.perf.serving.drive_poisson`,
  the same build/serve/verify path ``benchmarks/bench_serving.py``
  records with) and prints per-request receipts plus the operational
  snapshot;
* :func:`run_multitenant_demo` — the two-model, two-class SLA demo:
  drives :func:`repro.perf.multitenant.drive_mixed_traffic` (interactive
  class with per-request deadlines on a small model, bulk class with a
  latency bound on a heavier one, both on one shared pool), prints
  per-class latency/shed summaries and the registry's die-reuse stats,
  and additionally *proves* cross-model die dedup by registering a
  replica tenant over identical weights and asserting cache hits.

Both demos are self-checking: every served output is asserted
bit-identical to a direct single-image serial forward (per tenant) in
the drivers before any summary is printed — the demos double as
end-to-end smokes of the serving contract.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional


def run_demo(requests: int = 16, rate_rps: float = 200.0,
             max_batch: int = 4, max_wait_ms: float = 2.0,
             workers: Optional[int] = None, seed: int = 0,
             print_fn: Optional[Callable[[str], None]] = print) -> Dict:
    """Serve ``requests`` Poisson arrivals and return the stats snapshot."""
    from ..perf.serving import drive_poisson

    say = print_fn if print_fn is not None else (lambda line: None)
    say(f"serving {requests} requests at ~{rate_rps:.0f} rps "
        f"(max_batch={max_batch}, max_wait={max_wait_ms:.1f} ms)")
    driven = drive_poisson(rate_rps, requests, max_batch=max_batch,
                           max_wait_ms=max_wait_ms, workers=workers,
                           seed=seed)
    results, snapshot = driven["results"], driven["snapshot"]
    say("bit-identity vs serial single-image forward: OK")

    for served in results[: min(8, len(results))]:
        s = served.stats
        say(f"  request {s.request_id:3d}: batch {s.batch_id} "
            f"(size {s.batch_size}), queue {s.queue_wait_s * 1e3:6.2f} ms, "
            f"latency {s.latency_s * 1e3:6.2f} ms, "
            f"{s.engine_stats['conversions']} conversions")
    if len(results) > 8:
        say(f"  ... {len(results) - 8} more")
    say(f"batches formed: {snapshot['batches_formed']} "
        f"(mean size {snapshot['mean_batch_size']:.2f}), "
        f"p50 latency {snapshot['latency_p50_s'] * 1e3:.2f} ms, "
        f"p95 {snapshot['latency_p95_s'] * 1e3:.2f} ms, "
        f"occupancy {snapshot['occupancy']:.2f}, "
        f"throughput {snapshot['throughput_rps']:.1f} rps")
    return snapshot


def run_multitenant_demo(requests: int = 32, rate_rps: float = 400.0,
                         deadline_ms: Optional[float] = 50.0,
                         workers: Optional[int] = None, seed: int = 0,
                         print_fn: Optional[Callable[[str], None]] = print
                         ) -> Dict:
    """Two tenants, two SLA classes, one pool — and prove the dedup.

    Returns the server stats snapshot.  Raises if any served output
    deviates from its tenant's serial single-image forward, or if the
    replica-tenant registration fails to hit the shared die cache.
    """
    from ..perf.multitenant import (BATCH_MODEL, FAST_MODEL,
                                    drive_mixed_traffic, tenant_models)
    from ..reram import (ADCSpec, DeviceSpec, DieCache, ReRAMDevice,
                         paper_adc_bits)
    from ..serving import ModelRegistry

    say = print_fn if print_fn is not None else (lambda line: None)
    say(f"serving {requests} mixed-class requests at ~{rate_rps:.0f} rps "
        f"(interactive deadline "
        f"{'none' if deadline_ms is None else f'{deadline_ms:.0f} ms'}; "
        f"models '{FAST_MODEL}' + '{BATCH_MODEL}' on one pool)")
    driven = drive_mixed_traffic(rate_rps, requests, deadline_ms=deadline_ms,
                                 workers=workers, seed=seed)
    say("bit-identity vs per-tenant serial forwards: OK")

    snapshot = driven["snapshot"]
    for name, group in sorted(snapshot["per_class"].items()):
        say(f"  class {name:12s} completed {group['completed']:3d}, "
            f"shed {group['shed']:3d}, "
            f"p50 {group['latency_p50_s'] * 1e3:7.2f} ms, "
            f"p95 {group['latency_p95_s'] * 1e3:7.2f} ms")
    for receipt in [r for r in driven["sheds"] if r is not None][:4]:
        say(f"  shed request {receipt.request_id:3d}: {receipt.reason} "
            f"({receipt.priority_class}) after "
            f"{receipt.queue_wait_s * 1e3:.1f} ms")
    cache = driven["registry"]["die_cache"]
    say(f"die cache: {cache['hits']} hits / {cache['misses']} misses, "
        f"{cache['unique_dies']} unique dies for "
        f"{driven['registry']['engines_total']} engines")

    # cross-model dedup, proven: a replica tenant over identical weights
    # must program zero new dies
    models, config, _ = tenant_models(seed=seed)
    shared = DieCache()
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    with ModelRegistry(workers=1, die_cache=shared) as registry:
        registry.register(FAST_MODEL, models[FAST_MODEL], config, device,
                          adc=adc, activation_bits=12)
        misses_before = shared.misses
        registry.register(f"{FAST_MODEL}-replica", models[FAST_MODEL],
                          config, device, adc=adc, activation_bits=12)
        stats = registry.stats()
    if shared.misses != misses_before or stats["die_cache"]["hits"] == 0:
        raise AssertionError("replica tenant re-programmed dies — "
                             "cross-model dedup broken")
    say(f"cross-model die dedup: replica tenant registered with "
        f"{stats['die_cache']['hits']} cache hits, 0 new dies — OK")
    return snapshot

"""Tiled whole-network inference: worker-count invariance, end to end.

The contract under test: for a fixed tiling, the ``repro.runtime`` executor
produces bit-identical outputs and identical merged engine stats at any
worker count — against the serial path, against dense-kernel engines, and
against the cycle-by-cycle reference loop; with and without read noise.
"""

import numpy as np
import pytest

from repro.perf.suite import _post_relu_network
from repro.reram import ADCSpec, DeviceSpec, ReRAMDevice, paper_adc_bits
from repro.reram.inference import build_insitu_network
from repro.reram.nonideal import ReadNoise
from repro.reram.nonideal_engine import NonidealEngine
from repro.runtime import (WorkerPool, attach_pool, detach_pool,
                           evaluate_tiled, infer_tiled, infer_tiles,
                           iter_tiles, run_network_serial)


@pytest.fixture(scope="module")
def network_case():
    model, config, images = _post_relu_network()
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    return model, config, images, device, adc


def build(network_case, **kwargs):
    model, config, images, device, adc = network_case
    net, engines = build_insitu_network(model, config, device, adc=adc,
                                        activation_bits=12, **kwargs)
    return net, engines, images


class TestWorkerCountInvariance:
    def test_outputs_bit_identical_across_worker_counts(self, network_case):
        net, _, images = build(network_case)
        serial = run_network_serial(net, images, tile_size=2)
        for workers in (1, 2, 4):
            out = infer_tiled(net, images, workers=workers, tile_size=2)
            np.testing.assert_array_equal(out, serial)

    def test_sparse_equals_dense_engines(self, network_case):
        sparse_net, _, images = build(network_case)
        dense_net, dense_engines, _ = build(network_case)
        for engine in dense_engines.values():
            engine.sparse_enabled = False
        np.testing.assert_array_equal(
            infer_tiled(sparse_net, images, workers=4, tile_size=2),
            run_network_serial(dense_net, images, tile_size=2))

    def test_matches_reference_loop_end_to_end(self, network_case):
        """Whole-network outputs equal the cycle-by-cycle oracle's."""
        net, engines, images = build(network_case)
        ref_net, ref_engines, _ = build(network_case)
        for engine in ref_engines.values():
            engine.matvec_int = engine.matvec_int_reference
        out = infer_tiled(net, images, workers=4, tile_size=2)
        ref = run_network_serial(ref_net, images, tile_size=2)
        np.testing.assert_array_equal(out, ref)

    def test_stats_identical_across_worker_counts(self, network_case):
        def totals(engines):
            return {name: (e.stats.conversions, e.stats.saturated,
                           e.stats.cycles_fed, e.stats.jobs_scheduled,
                           e.stats.jobs_skipped, e.stats.pairs_scheduled,
                           e.stats.pairs_skipped)
                    for name, e in engines.items()}

        net1, engines1, images = build(network_case)
        infer_tiled(net1, images, workers=1, tile_size=2)
        net4, engines4, _ = build(network_case)
        infer_tiled(net4, images, workers=4, tile_size=2)
        assert totals(engines1) == totals(engines4)

    def test_noisy_network_worker_invariant(self, network_case):
        """Keyed noise substreams make even noisy inference invariant."""
        model, config, images, device, adc = network_case

        def noisy_net():
            spec = DeviceSpec()
            noise = ReadNoise.for_fragment(config.fragment_size, spec.g_max,
                                           spec.read_voltage,
                                           relative_sigma=0.05, seed=3)
            net, _ = build_insitu_network(
                model, config, device, adc=adc, activation_bits=12,
                engine_cls=NonidealEngine, read_noise=noise)
            return net

        images_small = images[:4]
        serial = infer_tiled(noisy_net(), images_small, workers=1,
                             tile_size=1)
        pooled = infer_tiled(noisy_net(), images_small, workers=4,
                             tile_size=1)
        np.testing.assert_array_equal(pooled, serial)


class TestRuntimeGlue:
    def test_attach_detach_pool(self, network_case):
        net, engines, images = build(network_case)
        expected = run_network_serial(net, images, tile_size=8)
        with WorkerPool(3) as pool:
            attach_pool(engines, pool)
            assert all(e.pool is pool for e in engines.values())
            out = run_network_serial(net, images, tile_size=8)
            detach_pool(engines)
        assert all(e.pool is None for e in engines.values())
        np.testing.assert_array_equal(out, expected)

    def test_tile_and_pool_fanout_compose(self, network_case):
        """Layer-level fan-out inside tile-level fan-out must not deadlock
        (re-entrant maps run inline) and must not change bits."""
        net, engines, images = build(network_case)
        expected = run_network_serial(net, images, tile_size=2)
        with WorkerPool(2) as pool:
            attach_pool(engines, pool)
            out = infer_tiled(net, images, pool=pool, tile_size=2)
            detach_pool(engines)
        np.testing.assert_array_equal(out, expected)

    def test_evaluate_tiled(self, network_case):
        net, _, images = build(network_case)

        class TinySet:
            def __init__(self, images):
                self.images = images
                logits = run_network_serial(net, images, tile_size=4)
                self.labels = np.argmax(logits, axis=1)

        dataset = TinySet(images)
        assert evaluate_tiled(net, dataset, workers=2, tile_size=4) == 1.0

    def test_infer_tiled_validates(self, network_case):
        net, _, images = build(network_case)
        with pytest.raises(ValueError):
            infer_tiled(net, images, tile_size=0)
        with pytest.raises(ValueError):
            infer_tiled(net, images[:0])


class TestInferTiles:
    """The tile-shape-agnostic entry point the serving layer builds on."""

    def test_ragged_tiles_match_serial_per_tile(self, network_case):
        net, _, images = build(network_case)
        ref_net, _, _ = build(network_case)
        tiles = [slice(0, 1), slice(1, 4), slice(4, 6), slice(6, 8)]
        outputs = infer_tiles(net, images, tiles, workers=3)
        assert len(outputs) == len(tiles)
        for tile, out in zip(tiles, outputs):
            np.testing.assert_array_equal(
                out, run_network_serial(ref_net, images[tile],
                                        tile_size=images[tile].shape[0]))

    def test_integer_tiles_equal_single_image_slices(self, network_case):
        net, _, images = build(network_case)
        by_int = infer_tiles(net, images, [0, 2], workers=2)
        by_slice = infer_tiles(net, images, [slice(0, 1), slice(2, 3)],
                               workers=2)
        for a, b in zip(by_int, by_slice):
            np.testing.assert_array_equal(a, b)

    def test_iter_tiles_round_trip(self, network_case):
        net, _, images = build(network_case)
        tiles = iter_tiles(images.shape[0], 3)
        assert [t.start for t in tiles] == [0, 3, 6]
        np.testing.assert_array_equal(
            np.concatenate(infer_tiles(net, images, tiles, workers=2)),
            infer_tiled(net, images, workers=2, tile_size=3))

    def test_collect_stats_slices_sum_to_totals(self, network_case):
        """Per-tile stats scopes partition the engines' merged stats."""
        net, engines, images = build(network_case)
        tiles = [slice(i, i + 1) for i in range(images.shape[0])]
        results = infer_tiles(net, images, tiles, workers=4,
                              collect_stats=True)
        totals = {}
        for engine in engines.values():
            for key, value in engine.stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
        summed = {}
        for _, stats in results:
            for key, value in stats.as_dict().items():
                summed[key] = summed.get(key, 0) + value
        assert summed == totals
        outputs = [out for out, _ in results]
        serial_net, _, _ = build(network_case)
        np.testing.assert_array_equal(
            np.concatenate(outputs),
            run_network_serial(serial_net, images, tile_size=1))

    def test_validates_empty_tiles(self, network_case):
        net, _, images = build(network_case)
        with pytest.raises(ValueError):
            infer_tiles(net, images, [])

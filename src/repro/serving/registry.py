"""Multi-tenant model registry over one shared worker pool and die cache.

FORMS's crossbars are fixed-function: once a die is programmed it *is*
the model, so programmed weights — not compute — are the scarce serving
resource.  A realistic stack therefore multiplexes several models over
one pool of dies.  :class:`ModelRegistry` owns that pool picture in
simulation: every registered model is lowered through
:func:`repro.reram.build_insitu_network` against one shared
:class:`~repro.reram.DieCache` (identical weight codes across tenants —
replicas, A/B copies, shared backbones — program one die, not one per
tenant) and every tenant's tiles run on one shared
:class:`~repro.runtime.WorkerPool`.

The registry is deliberately ignorant of traffic: it stores lowered
networks, pins per-model request shapes, and reports die-reuse stats.
Scheduling across tenants lives in :mod:`repro.serving.scheduler`; the
:class:`~repro.serving.server.InferenceServer` composes the two.

Determinism: registration order and tenant count never touch the served
bits — engines are per model, tiles are per request, and the die cache
returns bit-identical programmed planes wherever a die is reused (for
seeded devices the plane is a pure function of ``(codes, device seed)``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..reram import DieCache
from ..runtime import WorkerPool


@dataclass
class RegisteredModel:
    """One tenant: a lowered in-situ network plus its serving envelope.

    ``image_shape`` is the per-request shape this model serves, pinned at
    registration, warm-up or first submission — whichever names it first;
    later mismatching submissions are rejected at intake.
    """

    name: str
    network: object                      # callable: Tensor -> Tensor
    engines: Dict[str, object] = field(default_factory=dict)
    image_shape: Optional[Tuple[int, ...]] = None
    warmed: bool = False


class ModelRegistry:
    """Several in-situ networks over one ``WorkerPool`` + ``DieCache``.

    Use :meth:`register` to lower a float model (the multi-tenant
    analogue of ``InferenceServer.from_model``) or
    :meth:`register_network` to adopt an already-lowered callable.  A
    borrowed ``pool`` is left open by :meth:`close`; an owned one (built
    from ``workers``) is closed with the registry.
    """

    def __init__(self, *, die_cache: Optional[DieCache] = None,
                 pool: Optional[WorkerPool] = None,
                 workers: Optional[int] = None,
                 backend: Optional[str] = None):
        self.die_cache = die_cache if die_cache is not None else DieCache()
        self._owns_pool = pool is None
        self.pool = (pool if pool is not None
                     else WorkerPool(workers, backend=backend))
        self._models: Dict[str, RegisteredModel] = {}
        self._reserved: set = set()     # names mid-registration
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def register(self, name: str, model, config, device, *,
                 scheme: str = "forms", adc=None, activation_bits: int = 16,
                 engine_cls=None, image_shape: Optional[Tuple[int, ...]] = None,
                 **engine_kwargs) -> RegisteredModel:
        """Lower ``model`` through ``build_insitu_network`` and register it.

        Always passes the registry's shared :class:`~repro.reram.DieCache`,
        so tenants whose layers carry identical weight codes (on the same
        device identity) reuse programmed dies — :meth:`stats` makes the
        dedup visible.
        """
        from ..reram.inference import build_insitu_network
        build_kwargs = dict(scheme=scheme, adc=adc,
                            activation_bits=activation_bits,
                            die_cache=self.die_cache, **engine_kwargs)
        if engine_cls is not None:
            build_kwargs["engine_cls"] = engine_cls
        self._reserve(name)
        try:
            network, engines = build_insitu_network(model, config, device,
                                                    **build_kwargs)
        except BaseException:
            with self._lock:
                self._reserved.discard(name)
            raise
        return self._adopt(name, network, engines, image_shape)

    def register_network(self, name: str, network,
                         engines: Optional[Dict] = None,
                         image_shape: Optional[Tuple[int, ...]] = None
                         ) -> RegisteredModel:
        """Register an already-lowered callable network."""
        self._reserve(name)
        return self._adopt(name, network, engines or {}, image_shape)

    def _reserve(self, name: str) -> None:
        """Claim ``name`` without publishing it: a tenant mid-lowering is
        never visible to :meth:`get`/:meth:`names`/:meth:`stats`, so a
        live server cannot resolve (or dispatch on) a half-built entry."""
        if not name:
            raise ValueError("model needs a non-empty name")
        with self._lock:
            if name in self._models or name in self._reserved:
                raise ValueError(f"model {name!r} is already registered")
            self._reserved.add(name)

    def _adopt(self, name: str, network, engines,
               image_shape) -> RegisteredModel:
        entry = RegisteredModel(name, network=network, engines=engines,
                                image_shape=(tuple(image_shape)
                                             if image_shape else None))
        with self._lock:
            self._reserved.discard(name)
            self._models[name] = entry
        return entry

    def unregister(self, name: str) -> RegisteredModel:
        """Drop a tenant; its in-flight requests are unaffected (the
        dispatch path holds the entry it resolved at submit time)."""
        with self._lock:
            if name not in self._models:
                raise KeyError(f"model {name!r} is not registered")
            return self._models.pop(name)

    # ------------------------------------------------------------------
    def get(self, name: Optional[str] = None) -> RegisteredModel:
        """Look up a tenant; ``None`` resolves the sole registered model."""
        with self._lock:
            if name is None:
                if len(self._models) == 1:
                    return next(iter(self._models.values()))
                raise ValueError(
                    f"registry holds {len(self._models)} models "
                    f"({sorted(self._models)}); name one explicitly")
            if name not in self._models:
                raise KeyError(f"model {name!r} is not registered "
                               f"(have {sorted(self._models)})")
            return self._models[name]

    def names(self) -> List[str]:
        with self._lock:
            return list(self._models)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def pin_shape(self, entry: RegisteredModel,
                  shape: Tuple[int, ...]) -> None:
        """Pin (or check) a model's per-request image shape."""
        with self._lock:
            if entry.image_shape is None:
                entry.image_shape = tuple(shape)
            elif tuple(shape) != entry.image_shape:
                raise ValueError(
                    f"image shape {tuple(shape)} does not match model "
                    f"{entry.name!r}'s request shape {entry.image_shape}")

    # ------------------------------------------------------------------
    def warm_up(self, name: Optional[str] = None,
                image: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
        """Run one serial single-image forward through a tenant.

        Pins the model's request shape and exercises the whole lowered
        path (quantization grids, kernel dispatch, programmed dies)
        before traffic arrives.  Returns the logits, or ``None`` when no
        image is given (shape must then already be pinned elsewhere).
        """
        from ..nn.tensor import Tensor
        entry = self.get(name)
        if image is None:
            entry.warmed = True
            return None
        image = np.asarray(image)
        self.pin_shape(entry, image.shape)
        out = entry.network(Tensor(image[None])).data[0]
        entry.warmed = True
        return out

    def stats(self) -> Dict:
        """Structural snapshot: tenants, engines, and die reuse.

        ``die_cache.hits`` counting engines that reused an already
        programmed die is the cross-model dedup signal: two tenants over
        identical weight codes show ``hits > 0`` and
        ``unique_dies < engines_total``.
        """
        with self._lock:
            models = {
                name: {
                    "layers": len(entry.engines),
                    "warmed": entry.warmed,
                    "image_shape": (list(entry.image_shape)
                                    if entry.image_shape else None),
                }
                for name, entry in self._models.items()
            }
            engines_total = sum(len(entry.engines)
                                for entry in self._models.values())
        return {
            "models": models,
            "engines_total": engines_total,
            "die_cache": {
                "hits": self.die_cache.hits,
                "misses": self.die_cache.misses,
                "unique_dies": len(self.die_cache),
            },
            "workers": self.pool.workers,
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the owned worker pool (a borrowed pool is left open)."""
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Crossbar array and sub-array layout tests."""

import numpy as np
import pytest

from repro.reram import CrossbarArray, DeviceSpec, ReRAMDevice, SubArrayLayout


class TestCrossbarArray:
    def test_digital_mvm_recovers_codes(self, rng):
        codes = rng.integers(0, 4, size=(8, 5))
        xbar = CrossbarArray(codes, ReRAMDevice(DeviceSpec(), 0.0))
        bits = rng.integers(0, 2, size=8).astype(np.float64)
        out = xbar.digital_mvm(bits)
        np.testing.assert_allclose(out, bits @ codes, atol=1e-6)

    def test_digital_mvm_batch(self, rng):
        codes = rng.integers(0, 4, size=(6, 4))
        xbar = CrossbarArray(codes, ReRAMDevice(DeviceSpec(), 0.0))
        bits = rng.integers(0, 2, size=(6, 3)).astype(np.float64)
        out = xbar.digital_mvm(bits)
        np.testing.assert_allclose(out, codes.T @ bits, atol=1e-6)

    def test_analog_current_positive(self, rng):
        codes = rng.integers(0, 4, size=(4, 4))
        xbar = CrossbarArray(codes, ReRAMDevice(DeviceSpec(), 0.0))
        current = xbar.analog_mvm(np.ones(4))
        assert (current > 0).all()  # g_min pedestal always conducts

    def test_validation(self):
        device = ReRAMDevice(DeviceSpec(), 0.0)
        with pytest.raises(ValueError):
            CrossbarArray(np.zeros(4, dtype=np.int64), device)
        xbar = CrossbarArray(np.zeros((4, 4), dtype=np.int64), device)
        with pytest.raises(ValueError):
            xbar.analog_mvm(np.ones(5))

    def test_dimensions(self):
        xbar = CrossbarArray(np.zeros((8, 3), dtype=np.int64),
                             ReRAMDevice(DeviceSpec(), 0.0))
        assert xbar.rows == 8 and xbar.cols == 3


class TestSubArrayLayout:
    def test_paper_default_partition(self):
        layout = SubArrayLayout(128, 128, 8, 128)
        assert layout.subarrays_per_column_strip == 16
        assert layout.column_strips == 1
        assert layout.subarrays_per_array == 16

    def test_row_slices_tile_rows(self):
        layout = SubArrayLayout(16, 16, 4, 16)
        slices = list(layout.row_slices())
        assert len(slices) == 4
        covered = set()
        for _, s in slices:
            covered.update(range(s.start, s.stop))
        assert covered == set(range(16))

    def test_col_slices(self):
        layout = SubArrayLayout(16, 16, 4, 8)
        assert len(list(layout.col_slices())) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SubArrayLayout(16, 16, 0, 16)
        with pytest.raises(ValueError):
            SubArrayLayout(16, 16, 32, 16)

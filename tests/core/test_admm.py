"""ADMM trainer and constraint-object tests."""

import numpy as np
import pytest

from repro.core import (ADMMConfig, ADMMTrainer, FragmentGeometry,
                        PolarizationConstraint, PruningSpec,
                        QuantizationConstraint, QuantizationSpec,
                        StructuredPruningConstraint)
from repro.core.pipeline import FrozenMaskConstraint
from repro.nn import (Adam, Conv2d, Flatten, Linear, ReLU, Sequential,
                      evaluate, fit, set_init_seed)


def small_model():
    set_init_seed(5)
    return Sequential(Conv2d(1, 6, 3, padding=1), ReLU(),
                      Flatten(), Linear(6 * 8 * 8, 3))


@pytest.fixture()
def trained(tiny_dataset):
    train, test = tiny_dataset
    model = small_model()
    fit(model, train, Adam(model.parameters(), 1e-3), epochs=3, batch_size=16)
    return model, train, test


class TestConstraints:
    def test_pruning_violation_zero_after_project(self, rng):
        geom = FragmentGeometry((6, 1, 3, 3), 4)
        c = StructuredPruningConstraint(geom, PruningSpec(0.5, 0.5))
        w = rng.normal(size=(6, 1, 3, 3))
        assert c.violation(w) > 0
        assert c.violation(c.project(w)) == 0.0

    def test_pruning_enforce_uses_captured_mask(self, rng):
        geom = FragmentGeometry((6, 1, 3, 3), 4)
        c = StructuredPruningConstraint(geom, PruningSpec(0.5, 0.5))
        w = c.project(rng.normal(size=(6, 1, 3, 3)))
        c.capture_mask(w)
        drifted = w + rng.normal(scale=0.01, size=w.shape)
        enforced = c.enforce(drifted)
        np.testing.assert_array_equal(enforced == 0.0, w == 0.0)

    def test_polarization_refresh_every_m(self, rng):
        geom = FragmentGeometry((4, 1, 3, 3), 4)
        c = PolarizationConstraint(geom, refresh_every=2)
        w = rng.normal(size=(4, 1, 3, 3))
        c.project(w)
        for epoch in range(4):
            c.refresh(w, epoch)
        assert c.sign_updates == 2  # epochs 1 and 3

    def test_polarization_invalid_refresh(self):
        geom = FragmentGeometry((4, 1, 3, 3), 4)
        with pytest.raises(ValueError):
            PolarizationConstraint(geom, refresh_every=0)

    def test_quantization_scale_persists(self, rng):
        c = QuantizationConstraint(QuantizationSpec(8, 2))
        w = rng.normal(size=(4, 4))
        first = c.project(w)
        scale = c.scale
        c.project(first * 0.5)
        assert c.scale == scale  # grid stays fixed across iterations
        assert c.violation(first) == 0.0

    def test_frozen_mask(self, rng):
        mask = rng.normal(size=(3, 3)) > 0
        c = FrozenMaskConstraint(mask.astype(np.float64))
        w = rng.normal(size=(3, 3))
        out = c.project(w)
        np.testing.assert_array_equal(out[~mask], 0.0)
        np.testing.assert_array_equal(out[mask], w[mask])
        assert "live" in c.describe()

    def test_describe_strings(self):
        geom = FragmentGeometry((4, 1, 3, 3), 4)
        assert "prune" in StructuredPruningConstraint(geom, PruningSpec()).describe()
        assert "polarize" in PolarizationConstraint(geom).describe()
        assert "quantize" in QuantizationConstraint(QuantizationSpec()).describe()


class TestADMMConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ADMMConfig(rho=0.0)
        with pytest.raises(ValueError):
            ADMMConfig(iterations=0)


class TestADMMTrainer:
    def _constraints(self, model, fragment=4):
        constraints = {}
        for name, layer in [("0", model[0]), ("3", model[3])]:
            geom = FragmentGeometry(tuple(layer.weight.shape), fragment)
            constraints[name] = [PolarizationConstraint(geom)]
        return constraints

    def test_unknown_layer_rejected(self, trained):
        model, _, _ = trained
        with pytest.raises(KeyError):
            ADMMTrainer(model, {"nope": []}, ADMMConfig(iterations=1))

    def test_run_reduces_primal_residual(self, trained):
        model, train, _ = trained
        trainer = ADMMTrainer(model, self._constraints(model),
                              ADMMConfig(iterations=3, epochs_per_iteration=1,
                                         rho=5e-2, retrain_epochs=0))
        report = trainer.run(train)
        assert report.primal_residuals[-1] < report.primal_residuals[0]

    def test_finalize_reaches_feasibility(self, trained):
        model, train, test = trained
        trainer = ADMMTrainer(model, self._constraints(model),
                              ADMMConfig(iterations=1, epochs_per_iteration=1,
                                         retrain_epochs=1))
        trainer.run(train)
        report = trainer.finalize(train, test_set=test)
        assert trainer.max_violation() == 0.0
        assert report.final_test_accuracy is not None

    def test_finalize_keeps_reasonable_accuracy(self, trained):
        model, train, test = trained
        baseline = evaluate(model, test).accuracy
        trainer = ADMMTrainer(model, self._constraints(model),
                              ADMMConfig(iterations=2, epochs_per_iteration=1,
                                         rho=2e-2, retrain_epochs=2))
        trainer.run(train, test_set=test)
        report = trainer.finalize(train, test_set=test)
        # Polarization alone should cost little on an easy task.
        assert report.final_test_accuracy > baseline - 0.25

    def test_penalty_hook_adds_gradient(self, trained):
        model, train, _ = trained
        trainer = ADMMTrainer(model, self._constraints(model),
                              ADMMConfig(iterations=1, retrain_epochs=0))
        param = model[0].weight
        param.grad = np.zeros_like(param.data)
        trainer._penalty_grad_hook(rho=1.0)()
        expected = param.data - trainer._aux["0"] + trainer._dual["0"]
        np.testing.assert_allclose(param.grad, expected, rtol=1e-6)

    def test_multiple_constraints_project_sequentially(self, trained, rng):
        model, train, _ = trained
        geom = FragmentGeometry(tuple(model[0].weight.shape), 4)
        constraints = {"0": [StructuredPruningConstraint(geom, PruningSpec(0.5, 0.5)),
                             PolarizationConstraint(geom)]}
        trainer = ADMMTrainer(model, constraints,
                              ADMMConfig(iterations=1, epochs_per_iteration=1,
                                         retrain_epochs=1))
        trainer.run(train)
        trainer.finalize(train)
        assert trainer.max_violation() == 0.0

"""CLI runner tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, run


class TestParser:
    def test_all_experiments_registered(self):
        for name in ("table1", "table2", "table3", "table4", "table5",
                     "table6", "fig6", "fig8", "fig13", "fig14"):
            assert name in EXPERIMENTS

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.scale == "fast"
        assert args.seed == 0

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])


class TestRun:
    def test_hardware_table_runs(self, capsys, tmp_path):
        code = run(["table3", "--out", str(tmp_path)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Table III" in captured
        assert (tmp_path / "table3.txt").exists()

    def test_table4_runs(self, capsys):
        assert run(["table4"]) == 0
        assert "chip total" in capsys.readouterr().out


class TestAblationCommands:
    def test_registered(self):
        assert "dse" in EXPERIMENTS
        assert "irdrop" in EXPERIMENTS

    def test_every_experiment_has_description(self):
        for name, (driver, description) in EXPERIMENTS.items():
            assert callable(driver)
            assert description

    def test_dse_runs_and_saves(self, capsys, tmp_path):
        assert run(["dse", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cell bits" in out
        assert (tmp_path / "dse.txt").read_text().strip()

    def test_irdrop_errors_monotone(self, capsys):
        assert run(["irdrop"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines()
                 if line and line[0].isdigit()]
        errors = [float(line.split()[-1]) for line in lines]
        assert len(errors) == 5
        assert errors == sorted(errors)

    def test_out_directory_created(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        assert run(["table3", "--out", str(target)]) == 0
        assert (target / "table3.txt").exists()

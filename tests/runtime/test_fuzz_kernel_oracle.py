"""Seeded fuzz: the fused kernel equals the cycle oracle on every backend.

~50 randomized engine configurations — shape, fragment size, weight/cell/
activation bit-widths, sparsity, scheduler, position-tile count — drawn
from one pinned RNG (:data:`FUZZ_SEED`), each asserting the fused
``matvec_int`` bit-identical to ``matvec_int_reference``, with the fused
side executed serially or fanned out over thread / process pools in
round-robin.  A failing draw prints its full configuration, so it replays
from the seed alone.
"""

import numpy as np
import pytest

from repro.runtime import WorkerPool, shared_memory_available
from repro.runtime.probes import run_engine_mvm

pytestmark = pytest.mark.skipif(
    not shared_memory_available()[0],
    reason=f"shared memory unavailable: {shared_memory_available()[1]}")

FUZZ_SEED = 0xF0125
N_CONFIGS = 51          # divisible by the 3-backend round-robin
BACKENDS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def pools():
    with WorkerPool(2, backend="thread") as threads, \
            WorkerPool(2, backend="process") as procs:
        yield {"thread": threads, "process": procs}


def test_fuzz_fused_kernel_matches_reference(random_engine_case, pools):
    rng = np.random.default_rng(FUZZ_SEED)
    for i in range(N_CONFIGS):
        engine, x_int, meta = random_engine_case(rng)
        n_tiles = int(rng.integers(1, 5))
        backend = BACKENDS[i % len(BACKENDS)]
        expected = engine.matvec_int_reference(x_int)
        if backend == "serial":
            out = engine.matvec_int(x_int)
        else:
            # fan position tiles out: per-position results are independent,
            # so any tiling must reassemble to the oracle bits
            tiles = [t for t in np.array_split(x_int, n_tiles, axis=1)
                     if t.shape[1]]
            outs = pools[backend].map(run_engine_mvm,
                                      [(engine, t) for t in tiles])
            out = np.concatenate(outs, axis=1)
        np.testing.assert_array_equal(
            out, expected,
            err_msg=f"draw {i} on backend={backend!r} tiles={n_tiles}: "
                    f"{meta}")

"""Accelerator architecture model: components, hierarchy, timing, performance.

Reconstructs the paper's hardware evaluation: the Table III component
catalog with the calibrated ADC scaling law, the MCU/tile/chip roll-up of
Table IV, the 22-stage pipeline of Fig. 12, the workload tracer that
measures per-layer effective input cycles on real activations, and the
iso-area performance model behind Table V and Figs. 13/14.
"""

from .baselines import (PAPER_CLAIMS, PAPER_FPS_SPEEDUPS, PAPER_TABLE5,
                        RECORDED_BASELINES, RecordedBaseline)
from .energy import (STATIC_POWER_FRACTION, EnergyBreakdown, inference_energy,
                     zero_skip_energy_saving)
from .noc import (LayerPlacement, MeshNoC, NoCSpec, NoCTrafficReport,
                  analyze_traffic, noc_summary, place_layers)
from .chip import (HYPERTRANSPORT_AREA_MM2, HYPERTRANSPORT_POWER_MW,
                   ChipDesign, RecordedChip, dadiannao_chip, forms_chip,
                   isaac_chip)
from .components import (ADCScalingModel, ComponentSpec, default_adc_model,
                         forms_adc_spec, forms_mcu_components, isaac_adc_spec,
                         isaac_mcu_components, table3_rows)
from .dse import (MIN_LEVEL_MARGIN_SIGMAS, CrossbarSizeEvaluation,
                  DesignEvaluation, DesignPoint, best_energy_efficiency,
                  cell_bits_sweep, crossbar_size_sweep, design_chip,
                  design_mcu, evaluate_design, fragment_sweep, pareto_front)
from .event_pipeline import (EventPipeline, MultiLayerPipeline,
                             PipelineStats, StageSpec, layer_stage_spec)
from .mcu import MCUDesign, forms_mcu, isaac_mcu
from .perf import (AcceleratorConfig, PeakThroughput, PerfResult,
                   allocate_replication, forms_config, isaac16_config,
                   isaac32_config, layer_crossbars, layer_input_bits,
                   layer_pass_time_s, layer_time_per_image_s,
                   network_performance, peak_throughput,
                   pruned_quantized_isaac_config, puma_config)
from .pipeline import (BASE_STAGES, POOLING_STAGES, SKIPPABLE_RANGE,
                       PipelineModel)
from .programming import (LevelWriteCost, ProgrammingCost, WriteParallelism,
                          cell_level_histogram, level_write_costs,
                          model_programming_cost)
from .tile import TileDesign, forms_tile, isaac_tile
from .workload import LayerWorkload, NetworkWorkload, extract_workload

__all__ = [
    "ComponentSpec", "ADCScalingModel", "default_adc_model",
    "forms_adc_spec", "isaac_adc_spec", "forms_mcu_components",
    "isaac_mcu_components", "table3_rows",
    "MCUDesign", "forms_mcu", "isaac_mcu",
    "TileDesign", "forms_tile", "isaac_tile",
    "ChipDesign", "RecordedChip", "forms_chip", "isaac_chip", "dadiannao_chip",
    "HYPERTRANSPORT_POWER_MW", "HYPERTRANSPORT_AREA_MM2",
    "PipelineModel", "BASE_STAGES", "POOLING_STAGES", "SKIPPABLE_RANGE",
    "LayerWorkload", "NetworkWorkload", "extract_workload",
    "AcceleratorConfig", "PerfResult", "PeakThroughput",
    "layer_crossbars", "layer_input_bits", "layer_pass_time_s",
    "layer_time_per_image_s", "allocate_replication", "network_performance",
    "peak_throughput", "isaac32_config", "isaac16_config",
    "pruned_quantized_isaac_config", "puma_config", "forms_config",
    "RecordedBaseline", "RECORDED_BASELINES", "PAPER_TABLE5",
    "PAPER_FPS_SPEEDUPS", "PAPER_CLAIMS",
    "MeshNoC", "NoCSpec", "NoCTrafficReport", "LayerPlacement",
    "place_layers", "analyze_traffic", "noc_summary",
    "EnergyBreakdown", "inference_energy", "zero_skip_energy_saving",
    "STATIC_POWER_FRACTION",
    "DesignPoint", "DesignEvaluation", "design_mcu", "design_chip",
    "evaluate_design", "cell_bits_sweep", "fragment_sweep",
    "crossbar_size_sweep", "CrossbarSizeEvaluation",
    "best_energy_efficiency", "pareto_front", "MIN_LEVEL_MARGIN_SIGMAS",
    "EventPipeline", "MultiLayerPipeline", "PipelineStats", "StageSpec",
    "layer_stage_spec",
    "LevelWriteCost", "ProgrammingCost", "WriteParallelism",
    "level_write_costs", "model_programming_cost", "cell_level_histogram",
]

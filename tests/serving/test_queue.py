"""RequestQueue / Batcher coalescing semantics."""

import threading
import time

import numpy as np
import pytest

from repro.serving import Batcher, PendingRequest, QueueClosed, RequestQueue


def make_request(i=0):
    return PendingRequest(i, np.zeros(2))


class TestRequestQueue:
    def test_fifo_and_depth(self):
        queue = RequestQueue()
        for i in range(3):
            queue.put(make_request(i))
        assert queue.depth == 3
        batch = queue.get_batch(max_batch=8, max_wait_s=0.0)
        assert [r.request_id for r in batch] == [0, 1, 2]
        assert queue.depth == 0

    def test_max_batch_caps_extraction(self):
        queue = RequestQueue()
        for i in range(5):
            queue.put(make_request(i))
        assert len(queue.get_batch(max_batch=2, max_wait_s=0.0)) == 2
        assert len(queue.get_batch(max_batch=2, max_wait_s=0.0)) == 2
        assert len(queue.get_batch(max_batch=2, max_wait_s=0.0)) == 1

    def test_deadline_releases_partial_batch(self):
        """max_wait_s is the oldest request's latency budget: a lone
        request must not wait longer than that for batch mates."""
        queue = RequestQueue()
        queue.put(make_request())
        start = time.monotonic()
        batch = queue.get_batch(max_batch=8, max_wait_s=0.05)
        elapsed = time.monotonic() - start
        assert len(batch) == 1
        assert elapsed < 1.0

    def test_late_arrivals_join_within_budget(self):
        queue = RequestQueue()
        queue.put(make_request(0))

        def late_put():
            time.sleep(0.02)
            queue.put(make_request(1))

        threading.Thread(target=late_put).start()
        batch = queue.get_batch(max_batch=8, max_wait_s=0.5)
        assert len(batch) == 2

    def test_full_batch_returns_without_waiting(self):
        queue = RequestQueue()
        for i in range(4):
            queue.put(make_request(i))
        start = time.monotonic()
        batch = queue.get_batch(max_batch=4, max_wait_s=10.0)
        assert len(batch) == 4
        assert time.monotonic() - start < 1.0

    def test_close_refuses_put_but_drains(self):
        queue = RequestQueue()
        queue.put(make_request(0))
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put(make_request(1))
        assert len(queue.get_batch(max_batch=8, max_wait_s=0.0)) == 1
        assert queue.get_batch(max_batch=8, max_wait_s=0.0) is None

    def test_close_wakes_blocked_getter(self):
        queue = RequestQueue()
        result = {}

        def getter():
            result["batch"] = queue.get_batch(max_batch=8, max_wait_s=1.0)

        thread = threading.Thread(target=getter)
        thread.start()
        time.sleep(0.02)
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result["batch"] is None

    def test_validates_parameters(self):
        queue = RequestQueue()
        with pytest.raises(ValueError):
            queue.get_batch(max_batch=0, max_wait_s=0.0)
        with pytest.raises(ValueError):
            queue.get_batch(max_batch=1, max_wait_s=-1.0)


class TestBatcher:
    def test_dispatch_receives_coalesced_batches(self):
        queue = RequestQueue()
        seen = []

        def dispatch(batch):
            seen.append([r.request_id for r in batch])
            for request in batch:
                request.future.set_result(None)

        batcher = Batcher(queue, dispatch, max_batch=3, max_wait_s=0.01)
        requests = [make_request(i) for i in range(7)]
        for request in requests:
            queue.put(request)
        batcher.start()
        for request in requests:
            request.future.result(timeout=5.0)
        queue.close()
        batcher.join(timeout=5.0)
        assert [i for batch in seen for i in batch] == list(range(7))
        assert all(len(batch) <= 3 for batch in seen)

    def test_dispatch_error_fails_batch_not_server(self):
        queue = RequestQueue()
        calls = []

        def dispatch(batch):
            calls.append(len(batch))
            if len(calls) == 1:
                raise RuntimeError("boom")
            for request in batch:
                request.future.set_result("ok")

        batcher = Batcher(queue, dispatch, max_batch=1, max_wait_s=0.0)
        first, second = make_request(0), make_request(1)
        queue.put(first)
        queue.put(second)
        batcher.start()
        with pytest.raises(RuntimeError, match="boom"):
            first.future.result(timeout=5.0)
        assert second.future.result(timeout=5.0) == "ok"
        queue.close()
        batcher.join(timeout=5.0)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            Batcher(RequestQueue(), lambda b: None, max_batch=0)
        with pytest.raises(ValueError):
            Batcher(RequestQueue(), lambda b: None, max_wait_s=-0.1)

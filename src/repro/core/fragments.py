"""Fragment geometry: how DNN weights map onto crossbar sub-array columns.

A *fragment* (paper Sec. III-B, Fig. 3) is the set of ``m`` consecutive
weights of one filter that land in one column of an ``m x n`` crossbar
sub-array.  Which weights are "consecutive" depends on the polarization
mapping policy:

* **W-major** — walk a filter along width fastest, then height, then channel
  (the natural C-order flatten of a ``(C, KH, KW)`` filter);
* **H-major** — height fastest, then width, then channel;
* **C-major** — channel fastest: the weights at the same spatial position of
  all channels are consecutive.

The same policy is applied uniformly to the whole network, and inputs are
re-ordered once to match (paper: "we only need to uniformly re-order the
weights with their corresponding inputs in advance"), so the policy is a pure
row permutation of the layer's 2-D im2col weight matrix.

The 2-D matrix convention follows paper Fig. 2: ``H`` has one **column per
filter** and one **row per filter-shape position** (channel x kh x kw), i.e.
``H = W.reshape(OC, -1).T`` for conv and ``H = W.T`` for linear layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

POLICIES = ("w", "h", "c")


def row_permutation(channels: int, kh: int, kw: int, policy: str) -> np.ndarray:
    """Permutation taking standard im2col row order to ``policy`` order.

    Standard im2col row order is (channel, kernel-row, kernel-col) with
    kernel-col fastest — which is exactly W-major, so that policy returns the
    identity permutation.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown polarization policy {policy!r}; options: {POLICIES}")
    index = np.arange(channels * kh * kw).reshape(channels, kh, kw)
    if policy == "w":
        ordered = index                      # (c, h, w) — w fastest
    elif policy == "h":
        ordered = index.transpose(0, 2, 1)   # (c, w, h) — h fastest
    else:  # "c"
        ordered = index.transpose(1, 2, 0)   # (h, w, c) — c fastest
    return ordered.reshape(-1)


@dataclass(frozen=True)
class FragmentGeometry:
    """Geometry of one layer's weight matrix cut into fragments.

    Parameters
    ----------
    weight_shape:
        Shape of the layer weight: ``(OC, C, KH, KW)`` for conv or
        ``(out, in)`` for linear.
    fragment_size:
        Rows per sub-array column, ``m`` (paper evaluates 4/8/16; Fig. 6
        sweeps 1..128).
    policy:
        Polarization mapping policy: ``"w"``, ``"h"`` or ``"c"``.  Ignored for
        linear layers (no spatial structure — identity order).
    """

    weight_shape: Tuple[int, ...]
    fragment_size: int
    policy: str = "w"

    def __post_init__(self):
        if self.fragment_size < 1:
            raise ValueError("fragment_size must be >= 1")
        if len(self.weight_shape) not in (2, 4):
            raise ValueError(f"unsupported weight shape {self.weight_shape}")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown polarization policy {self.policy!r}")

    # ------------------------------------------------------------------
    @property
    def is_conv(self) -> bool:
        return len(self.weight_shape) == 4

    @property
    def rows(self) -> int:
        """Rows of the 2-D matrix = weights per filter."""
        if self.is_conv:
            _, channels, kh, kw = self.weight_shape
            return channels * kh * kw
        return self.weight_shape[1]

    @property
    def cols(self) -> int:
        """Columns of the 2-D matrix = number of filters / output units."""
        return self.weight_shape[0]

    @property
    def fragments_per_column(self) -> int:
        return -(-self.rows // self.fragment_size)  # ceil division

    @property
    def num_fragments(self) -> int:
        return self.fragments_per_column * self.cols

    @property
    def padded_rows(self) -> int:
        return self.fragments_per_column * self.fragment_size

    def _perm(self) -> Optional[np.ndarray]:
        if not self.is_conv or self.policy == "w":
            return None  # identity
        _, channels, kh, kw = self.weight_shape
        return row_permutation(channels, kh, kw, self.policy)

    # ------------------------------------------------------------------
    # Weight tensor <-> policy-ordered 2-D matrix
    # ------------------------------------------------------------------
    def matrix(self, weight: np.ndarray) -> np.ndarray:
        """Return the policy-ordered 2-D matrix ``(rows, cols)`` of ``weight``."""
        if weight.shape != self.weight_shape:
            raise ValueError(f"weight shape {weight.shape} != geometry shape {self.weight_shape}")
        mat = weight.reshape(self.cols, -1).T
        perm = self._perm()
        if perm is not None:
            mat = mat[perm]
        return mat

    def weight(self, matrix: np.ndarray) -> np.ndarray:
        """Invert :meth:`matrix`, returning the original-shaped weight tensor."""
        if matrix.shape != (self.rows, self.cols):
            raise ValueError(f"matrix shape {matrix.shape} != ({self.rows}, {self.cols})")
        perm = self._perm()
        if perm is not None:
            inverse = np.empty_like(perm)
            inverse[perm] = np.arange(perm.size)
            matrix = matrix[inverse]
        return matrix.T.reshape(self.weight_shape)

    # ------------------------------------------------------------------
    # 2-D matrix <-> fragment stack
    # ------------------------------------------------------------------
    def fragment_stack(self, matrix: np.ndarray) -> np.ndarray:
        """Cut the matrix into fragments: ``(fragments_per_column, m, cols)``.

        The final fragment of each column is zero-padded when ``rows`` is not
        a multiple of the fragment size (padding cells hold zero conductance
        on hardware).
        """
        if matrix.shape != (self.rows, self.cols):
            raise ValueError(f"matrix shape {matrix.shape} != ({self.rows}, {self.cols})")
        pad = self.padded_rows - self.rows
        if pad:
            matrix = np.vstack([matrix, np.zeros((pad, self.cols), dtype=matrix.dtype)])
        return matrix.reshape(self.fragments_per_column, self.fragment_size, self.cols)

    def from_fragment_stack(self, stack: np.ndarray) -> np.ndarray:
        """Invert :meth:`fragment_stack`, dropping the zero padding."""
        expected = (self.fragments_per_column, self.fragment_size, self.cols)
        if stack.shape != expected:
            raise ValueError(f"stack shape {stack.shape} != {expected}")
        return stack.reshape(self.padded_rows, self.cols)[:self.rows]

    # ------------------------------------------------------------------
    def fragment_row_slices(self):
        """Yield ``(fragment_index, row_slice)`` over one column's fragments."""
        for f in range(self.fragments_per_column):
            start = f * self.fragment_size
            yield f, slice(start, min(start + self.fragment_size, self.rows))

    def input_permutation(self) -> Optional[np.ndarray]:
        """Row permutation to apply to the layer's im2col *input* matrix.

        The hardware re-orders inputs once to match the weight ordering, so
        activations and weights stay aligned (paper Sec. III-B).  ``None``
        means identity.
        """
        return self._perm()

    def describe(self) -> str:
        kind = "conv" if self.is_conv else "linear"
        return (f"{kind} {self.weight_shape}: matrix {self.rows}x{self.cols}, "
                f"fragment m={self.fragment_size} policy={self.policy}, "
                f"{self.num_fragments} fragments")


def geometry_for_layer(layer, fragment_size: int, policy: str = "w") -> FragmentGeometry:
    """Build the :class:`FragmentGeometry` for a ``Conv2d`` or ``Linear`` layer."""
    return FragmentGeometry(tuple(layer.weight.shape), fragment_size, policy)

"""TinyADC column-sparsity constraint tests (ref [40])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (TinyADCConstraint, TinyADCSpec, adc_bits_saved,
                        column_sum_bound, fragment_nonzeros,
                        project_fragment_sparsity,
                        required_bits_with_tinyadc)
from repro.core.fragments import FragmentGeometry
from repro.reram.converters import required_adc_bits


def conv_geometry(fragment_size=4):
    # (OC=6, C=2, KH=3, KW=3): 18 rows x 6 cols weight matrix.
    return FragmentGeometry((6, 2, 3, 3), fragment_size, "w")


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TinyADCSpec(max_nonzeros=0)


class TestProjection:
    def test_caps_nonzeros_per_fragment(self):
        rng = np.random.default_rng(0)
        geometry = conv_geometry()
        weight = rng.normal(size=(6, 2, 3, 3))
        projected = project_fragment_sparsity(weight, geometry, 2)
        counts = fragment_nonzeros(projected, geometry)
        assert (counts <= 2).all()

    def test_identity_when_k_covers_fragment(self):
        rng = np.random.default_rng(1)
        geometry = conv_geometry(fragment_size=4)
        weight = rng.normal(size=(6, 2, 3, 3))
        projected = project_fragment_sparsity(weight, geometry, 4)
        np.testing.assert_array_equal(projected, weight)

    def test_keeps_largest_magnitudes(self):
        geometry = FragmentGeometry((1, 1, 2, 2), 4, "w")
        weight = np.array([[[[0.1, -3.0], [2.0, 0.5]]]])
        projected = project_fragment_sparsity(weight, geometry, 2)
        kept = set(np.abs(projected[projected != 0]))
        assert kept == {3.0, 2.0}

    def test_idempotent(self):
        rng = np.random.default_rng(2)
        geometry = conv_geometry()
        weight = rng.normal(size=(6, 2, 3, 3))
        once = project_fragment_sparsity(weight, geometry, 2)
        twice = project_fragment_sparsity(once, geometry, 2)
        np.testing.assert_array_equal(once, twice)

    def test_validation(self):
        with pytest.raises(ValueError):
            project_fragment_sparsity(np.zeros((6, 2, 3, 3)),
                                      conv_geometry(), 0)

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_projection_reduces_norm_distance_minimally(self, k, seed):
        # Among all ways to zero down to k nonzeros, dropping the smallest
        # magnitudes minimizes the L2 distance — check against brute force
        # on a single fragment.
        rng = np.random.default_rng(seed)
        geometry = FragmentGeometry((1, 1, 2, 2), 4, "w")
        weight = rng.normal(size=(1, 1, 2, 2))
        projected = project_fragment_sparsity(weight, geometry, k)
        kept = np.abs(projected[projected != 0])
        dropped = np.setdiff1d(np.abs(weight).ravel(), kept)
        if kept.size and dropped.size:
            assert kept.min() >= dropped.max() - 1e-12


class TestConstraint:
    def test_violation_zero_after_projection(self):
        rng = np.random.default_rng(3)
        geometry = conv_geometry()
        constraint = TinyADCConstraint(geometry, TinyADCSpec(2))
        weight = rng.normal(size=(6, 2, 3, 3))
        assert constraint.violation(weight) > 0
        assert constraint.violation(constraint.project(weight)) == 0.0

    def test_describe_mentions_k(self):
        constraint = TinyADCConstraint(conv_geometry(), TinyADCSpec(3))
        assert "k=3" in constraint.describe()


class TestADCAccounting:
    def test_column_sum_bound(self):
        assert column_sum_bound(4, 2) == 12
        assert column_sum_bound(0, 2) == 0
        with pytest.raises(ValueError):
            column_sum_bound(-1, 2)

    def test_required_bits(self):
        assert required_bits_with_tinyadc(2, 2) == 3   # bound 6 -> 3 bits
        assert required_bits_with_tinyadc(8, 2) == 5   # bound 24 -> 5 bits
        assert required_bits_with_tinyadc(0, 2) == 1   # clamped

    def test_matches_dense_required_bits(self):
        # With k = m the bound equals the dense fragment requirement.
        for m in (4, 8, 16):
            assert (required_bits_with_tinyadc(m, 2)
                    == required_adc_bits(m, 2))

    def test_bits_saved(self):
        assert adc_bits_saved(8, 2, 2) == 2
        assert adc_bits_saved(8, 8, 2) == 0
        with pytest.raises(ValueError):
            adc_bits_saved(4, 8, 2)

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_bits_monotone_in_k(self, k, cell_bits):
        assert (required_bits_with_tinyadc(k, cell_bits)
                <= required_bits_with_tinyadc(k + 1, cell_bits))

"""SLA-aware request scheduling: priority classes, deadlines, shedding.

The FIFO batcher (:class:`repro.serving.queue.RequestQueue`) has exactly
one scheduling rule — oldest first, one coalescing deadline.  This module
replaces it with a *policy*:

* every request carries a **priority class** and an optional per-request
  **deadline**; the dispatch loop always serves the oldest *eligible*
  request first — earliest-deadline-first within a class.  *Across*
  classes the policy ``mode`` decides: ``strict`` (the default) is
  strict class precedence — a nonempty higher class always wins, so
  sustained saturation of a high class starves the low ones by design;
  ``weighted_fair`` is deficit-round-robin with aging — each class earns
  credit in proportion to its ``weight`` (scaled up the longer its head
  has waited), one unit of credit buys one dispatched request, and the
  next batch head comes from the first credit-positive class in
  round-robin order — so every class makes bounded progress under any
  saturating mix;
* a request that cannot be served inside its bound is **shed**, never
  dispatched and never left hanging: its future resolves exceptionally
  with :class:`RequestShed` carrying an explicit :class:`ShedReceipt`
  (which request, which class, why, and how long it waited).  Two bounds
  apply: the request's own deadline and the class-level latency bound
  ``shed_after_s``;
* an :class:`AdmissionController` throttles *intake* from the
  :class:`~repro.serving.stats.ServerStats` occupancy and queue-depth
  gauges, so a melting-down queue refuses new work up front instead of
  accepting requests it will only shed later.

The single-model FIFO server is the degenerate policy —
:meth:`SlaPolicy.fifo` builds one class with no deadlines and no
shedding, under which :meth:`SlaQueue.get_batch` reproduces the
``RequestQueue`` coalescing semantics exactly (oldest request anchors the
``max_wait_s`` budget; a full ``max_batch`` releases immediately).

Batching across classes
-----------------------
Class precedence picks the batch *head*; the rest of the batch is filled
with queued requests **of the head's model** in the same eligibility
order, capped at the head class's ``max_batch``.  Riders never change who
is served first — one tile per request means batch mates run as parallel
tiles, not ahead of the head — they only recover throughput that strict
one-class batches would waste.  A latency-sensitive class keeps its
``max_batch`` small so its batches never grow service time under load.

Scheduling never touches the numerics: which batch a request rides, which
requests are shed around it, and in what order batches form are all
invisible to the served bits (one tile per request + keyed noise
substreams — the serving determinism contract).
"""

from __future__ import annotations

import math
import threading
import time
from bisect import insort
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .queue import QueueClosed

#: cross-class arbitration modes of :class:`SlaPolicy`
SLA_MODE_STRICT = "strict"               # strict class precedence
SLA_MODE_WEIGHTED_FAIR = "weighted_fair"  # deficit-round-robin with aging
SLA_MODES = (SLA_MODE_STRICT, SLA_MODE_WEIGHTED_FAIR)

#: shed reasons carried by :class:`ShedReceipt`
SHED_DEADLINE = "deadline"           # the request's own deadline expired
SHED_LATENCY_BOUND = "latency_bound"  # the class's shed_after_s bound hit
SHED_ADMISSION = "admission"         # refused at intake by the controller
SHED_FAULT_RECOVERY = "fault_recovery"  # die fault persisted past the
#                                         dispatch retry budget (the batch
#                                         is shed with receipts instead of
#                                         served wrong or left hanging)


@dataclass(frozen=True)
class PriorityClass:
    """One service class of an :class:`SlaPolicy`.

    ``max_batch`` / ``max_wait_s`` are the coalescing knobs for batches
    this class heads (the FIFO server's knobs, now per class);
    ``shed_after_s`` is the class latency bound: a request still queued
    that long past enqueue is shed instead of dispatched.  ``weight`` is
    the class's share under :data:`SLA_MODE_WEIGHTED_FAIR` — a class
    with weight 4 earns credit four times as fast as a class with
    weight 1 (ignored under :data:`SLA_MODE_STRICT`, where position in
    the policy tuple is everything).
    """

    name: str
    max_batch: int = 8
    max_wait_s: float = 0.002
    shed_after_s: Optional[float] = None
    weight: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("priority class needs a non-empty name")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if self.shed_after_s is not None and self.shed_after_s <= 0:
            raise ValueError("shed_after_s must be > 0 (or None)")
        if not self.weight > 0:
            raise ValueError("weight must be > 0")


@dataclass(frozen=True)
class SlaPolicy:
    """An ordered tuple of priority classes, highest precedence first.

    ``mode`` picks the cross-class arbitration: :data:`SLA_MODE_STRICT`
    (precedence by tuple order — may starve low classes under sustained
    high-class saturation, by design) or
    :data:`SLA_MODE_WEIGHTED_FAIR` (deficit-round-robin over the class
    weights, with credit earned faster the longer a class's head has
    waited — ``aging_s`` is the head wait that doubles the earn rate, so
    no class waits unboundedly).  Either way, scheduling stays invisible
    to the served numerics: the mode changes only *when* a request
    dispatches, never the bits it produces.
    """

    classes: Tuple[PriorityClass, ...]
    mode: str = SLA_MODE_STRICT
    aging_s: float = 0.05

    def __post_init__(self):
        classes = tuple(self.classes)
        object.__setattr__(self, "classes", classes)
        if not classes:
            raise ValueError("policy needs at least one priority class")
        names = [cls.name for cls in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate priority class names in {names}")
        if self.mode not in SLA_MODES:
            raise ValueError(f"unknown SLA mode {self.mode!r}; "
                             f"choose from {list(SLA_MODES)}")
        if not self.aging_s > 0:
            raise ValueError("aging_s must be > 0")

    @classmethod
    def fifo(cls, max_batch: int = 8,
             max_wait_s: float = 0.002) -> "SlaPolicy":
        """The degenerate single-class policy of the FIFO server."""
        return cls((PriorityClass("default", max_batch=max_batch,
                                  max_wait_s=max_wait_s),))

    @property
    def names(self) -> List[str]:
        return [cls.name for cls in self.classes]

    def rank_of(self, name: Optional[str]) -> int:
        """Class index for ``name``; ``None`` means lowest precedence."""
        if name is None:
            return len(self.classes) - 1
        for rank, cls in enumerate(self.classes):
            if cls.name == name:
                return rank
        raise KeyError(f"unknown priority class {name!r}; "
                       f"policy defines {self.names}")


@dataclass
class SlaRequest:
    """One enqueued image with its SLA envelope.

    ``deadline_t`` is the absolute (monotonic-clock) expiry used by the
    scheduler; ``deadline_s`` is the relative budget the caller asked for,
    kept for the receipt.  ``entry`` is an opaque slot for whatever the
    submitter resolved ``model`` to (the server stores the
    :class:`~repro.serving.registry.RegisteredModel` here, so dispatch
    never re-resolves the name — an unregister between submit and
    dispatch cannot fail an accepted request).  Carries the same
    ``enqueue_t`` / ``future`` attributes the FIFO
    :class:`~repro.serving.queue.PendingRequest` does, so the dispatch
    machinery is shared.
    """

    request_id: int
    image: np.ndarray
    model: str
    class_rank: int
    priority_class: str
    deadline_t: Optional[float] = None
    deadline_s: Optional[float] = None
    entry: object = None
    trace_id: Optional[str] = None
    enqueue_t: float = field(default_factory=time.monotonic)
    future: Future = field(default_factory=Future)

    def sort_key(self) -> Tuple[float, float, int]:
        """EDF within a class; FIFO among requests without deadlines."""
        deadline = math.inf if self.deadline_t is None else self.deadline_t
        return (deadline, self.enqueue_t, self.request_id)


@dataclass(frozen=True)
class ShedReceipt:
    """Why a request was rejected instead of served.

    ``reason`` is one of :data:`SHED_DEADLINE` (the request's own deadline
    expired in queue), :data:`SHED_LATENCY_BOUND` (its class's
    ``shed_after_s`` bound hit) or :data:`SHED_ADMISSION` (refused at
    intake).  ``queue_wait_s`` is how long it sat before being shed
    (0 for admission rejections).
    """

    request_id: int
    model: str
    priority_class: str
    reason: str
    queue_wait_s: float
    deadline_s: Optional[float] = None
    trace_id: Optional[str] = None

    def as_dict(self) -> Dict:
        return {
            "request_id": self.request_id,
            "model": self.model,
            "priority_class": self.priority_class,
            "reason": self.reason,
            "queue_wait_s": self.queue_wait_s,
            "deadline_s": self.deadline_s,
            "trace_id": self.trace_id,
        }


class RequestShed(RuntimeError):
    """A request was shed; ``receipt`` says which, by whom and why."""

    def __init__(self, receipt: ShedReceipt):
        super().__init__(
            f"request {receipt.request_id} ({receipt.model!r}, class "
            f"{receipt.priority_class!r}) shed: {receipt.reason} after "
            f"{receipt.queue_wait_s * 1e3:.2f} ms in queue")
        self.receipt = receipt


class AdmissionController:
    """Intake throttle driven by the server's operational gauges.

    Admission is decided *before* a request is queued, from the two
    signals :class:`~repro.serving.stats.ServerStats` already maintains:

    * ``max_queue_depth`` — refuse when that many requests are already
      waiting (the queue is past the point where more intake only turns
      into deadline sheds);
    * ``max_occupancy`` — refuse when the dispatch path has been busy at
      least that fraction of wall time *and* at least ``min_queue_depth``
      requests are queued (high occupancy with an empty queue is a
      healthy saturated server, not a meltdown).

    The async front end adds two *transport* gauges, checked by
    :meth:`admit_transport` before a connection or body is even read:

    * ``max_connections`` — refuse new connections past this many open
      sockets (each open connection holds parser/buffer state);
    * ``max_inflight_bytes`` — refuse new request bodies while this many
      decoded payload bytes are already in flight (bounds resident
      memory under thousands of slow streams).

    All thresholds are optional; an unconfigured controller admits
    everything.
    """

    def __init__(self, max_queue_depth: Optional[int] = None,
                 max_occupancy: Optional[float] = None,
                 min_queue_depth: int = 1,
                 max_connections: Optional[int] = None,
                 max_inflight_bytes: Optional[int] = None):
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if max_occupancy is not None and not 0.0 < max_occupancy <= 1.0:
            raise ValueError("max_occupancy must be in (0, 1] (or None)")
        if min_queue_depth < 0:
            raise ValueError("min_queue_depth must be >= 0")
        if max_connections is not None and max_connections < 1:
            raise ValueError("max_connections must be >= 1 (or None)")
        if max_inflight_bytes is not None and max_inflight_bytes < 1:
            raise ValueError("max_inflight_bytes must be >= 1 (or None)")
        self.max_queue_depth = max_queue_depth
        self.max_occupancy = max_occupancy
        self.min_queue_depth = min_queue_depth
        self.max_connections = max_connections
        self.max_inflight_bytes = max_inflight_bytes

    def admit(self, queue_depth: int, occupancy: float) -> bool:
        """Whether a new request should be accepted right now."""
        if (self.max_queue_depth is not None
                and queue_depth >= self.max_queue_depth):
            return False
        if (self.max_occupancy is not None
                and occupancy >= self.max_occupancy
                and queue_depth >= self.min_queue_depth):
            return False
        return True

    def admit_transport(self, connections: int, inflight_bytes: int) -> bool:
        """Whether the transport should take on more work right now.

        ``connections`` counts *already-open* sockets (a new accept is
        refused when the count has reached ``max_connections``);
        ``inflight_bytes`` counts request-payload bytes currently
        resident (a new body is refused once the gauge is at or past
        ``max_inflight_bytes``).
        """
        if (self.max_connections is not None
                and connections >= self.max_connections):
            return False
        if (self.max_inflight_bytes is not None
                and inflight_bytes >= self.max_inflight_bytes):
            return False
        return True


class SlaQueue:
    """Thread-safe multi-class priority queue with SLA-aware extraction.

    One sorted pending list per priority class (EDF order, FIFO among
    undeadlined peers).  :meth:`get_batch` picks the head by strict class
    precedence, sheds anything whose deadline or class latency bound
    expired (resolving its future with :class:`RequestShed` — shed
    requests are *never* dispatched), coalesces same-model requests under
    the head class's ``max_batch`` / ``max_wait_s``, and returns ``None``
    only when closed and drained.

    ``on_shed`` (if given) is called with each :class:`ShedReceipt` —
    the server wires it to ``ServerStats.record_shed``.
    """

    def __init__(self, policy: SlaPolicy,
                 on_shed: Optional[Callable[[ShedReceipt], None]] = None):
        self.policy = policy
        self._pending: List[List[SlaRequest]] = [[] for _ in policy.classes]
        self._cond = threading.Condition()
        self._closed = False
        self._on_shed = on_shed
        # weighted_fair state: per-class DRR credit and the round-robin
        # pointer (both untouched under strict mode)
        self._deficits: List[float] = [0.0] * len(policy.classes)
        self._rr = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently waiting, all classes (a racy gauge)."""
        with self._cond:
            return sum(len(pending) for pending in self._pending)

    def depth_of(self, class_name: str) -> int:
        rank = self.policy.rank_of(class_name)
        with self._cond:
            return len(self._pending[rank])

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def put(self, request: SlaRequest) -> None:
        if not 0 <= request.class_rank < len(self.policy.classes):
            raise ValueError(f"class_rank {request.class_rank} outside "
                             f"policy with {len(self.policy.classes)} classes")
        with self._cond:
            if self._closed:
                raise QueueClosed("request queue is closed")
            insort(self._pending[request.class_rank], request,
                   key=SlaRequest.sort_key)
            self._cond.notify_all()

    def close(self) -> None:
        """Refuse new :meth:`put` calls; queued requests stay drainable
        (and still subject to deadline/latency-bound shedding)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def _expiry_t(self, request: SlaRequest, cls: PriorityClass) -> float:
        expiry = math.inf
        if request.deadline_t is not None:
            expiry = request.deadline_t
        if cls.shed_after_s is not None:
            expiry = min(expiry, request.enqueue_t + cls.shed_after_s)
        return expiry

    def _shed_locked(self, request: SlaRequest, reason: str,
                     now: float) -> None:
        receipt = ShedReceipt(
            request_id=request.request_id, model=request.model,
            priority_class=request.priority_class, reason=reason,
            queue_wait_s=now - request.enqueue_t,
            deadline_s=request.deadline_s, trace_id=request.trace_id)
        if not request.future.done():
            try:
                request.future.set_exception(RequestShed(receipt))
            except InvalidStateError:
                pass  # cancelled between check and set
        if self._on_shed is not None:
            self._on_shed(receipt)

    def _sweep_expired_locked(self, now: float) -> None:
        """Shed every queued request whose bound has already passed."""
        for rank, pending in enumerate(self._pending):
            cls = self.policy.classes[rank]
            keep = []
            for request in pending:
                if self._expiry_t(request, cls) > now:
                    keep.append(request)
                    continue
                deadline_hit = (request.deadline_t is not None
                                and request.deadline_t <= now)
                bound = (request.enqueue_t + cls.shed_after_s
                         if cls.shed_after_s is not None else math.inf)
                reason = (SHED_DEADLINE
                          if deadline_hit and request.deadline_t <= bound
                          else SHED_LATENCY_BOUND)
                self._shed_locked(request, reason, now)
            self._pending[rank] = keep

    def _head_locked(self, now: float) -> Optional[SlaRequest]:
        if self.policy.mode == SLA_MODE_WEIGHTED_FAIR:
            return self._drr_head_locked(now)
        for pending in self._pending:
            if pending:
                return pending[0]
        return None

    def _drr_head_locked(self, now: float) -> Optional[SlaRequest]:
        """Deficit-round-robin with aging: the ``weighted_fair`` head.

        One unit of credit buys one dispatched request.  An idle class
        forfeits its credit (classic DRR — no saving up while absent).
        When no backlogged class can afford a dispatch, every backlogged
        class earns ``weight * (1 + head_wait / aging_s)`` — the aging
        term grows a waiting class's earn rate linearly with its head's
        queue time, so however small its weight, its wait to the next
        grant is bounded.  The head comes from the first credit-positive
        class at or after the round-robin pointer, EDF within the class.
        """
        nonempty = [rank for rank, pending in enumerate(self._pending)
                    if pending]
        if not nonempty:
            return None
        for rank in range(len(self._pending)):
            if not self._pending[rank]:
                self._deficits[rank] = 0.0
        while not any(self._deficits[rank] >= 1.0 for rank in nonempty):
            for rank in nonempty:
                cls = self.policy.classes[rank]
                wait = max(0.0, now - self._pending[rank][0].enqueue_t)
                self._deficits[rank] += cls.weight * (
                    1.0 + wait / self.policy.aging_s)
        for offset in range(len(self._pending)):
            rank = (self._rr + offset) % len(self._pending)
            if self._pending[rank] and self._deficits[rank] >= 1.0:
                self._rr = (rank + 1) % len(self._pending)
                return self._pending[rank][0]
        return None  # unreachable: the refill loop guarantees a winner

    def _next_expiry_locked(self) -> float:
        expiry = math.inf
        for rank, pending in enumerate(self._pending):
            cls = self.policy.classes[rank]
            for request in pending:
                expiry = min(expiry, self._expiry_t(request, cls))
        return expiry

    def _same_model_locked(self, head: SlaRequest,
                           limit: int) -> List[SlaRequest]:
        """Queued requests of the head's model in eligibility order.

        Matches on the resolved ``entry`` as well as the name, so a
        tenant unregistered and re-registered under the same name
        between two submits never mixes generations in one batch.

        The head is seeded first: under strict precedence it is the
        first match anyway, but under weighted-fair arbitration a
        low-class head can win the round while higher-class requests of
        the same model sit queued — coalescing in eligibility order
        alone would fill the batch with those riders and evict the very
        request the credit was spent on.
        """
        out: List[SlaRequest] = [head]
        for pending in self._pending:
            for request in pending:
                if request is head:
                    continue
                if (request.model == head.model
                        and request.entry is head.entry):
                    out.append(request)
                    if len(out) >= limit:
                        return out
        return out

    def _remove_locked(self, batch: Sequence[SlaRequest]) -> None:
        chosen = {id(request) for request in batch}
        for rank, pending in enumerate(self._pending):
            self._pending[rank] = [request for request in pending
                                   if id(request) not in chosen]
        if self.policy.mode == SLA_MODE_WEIGHTED_FAIR:
            # each dispatched request bills one credit to its own class
            # (riders too — a free rider would let a heavy class consume
            # pool time it never paid for).  The floor bounds the debt a
            # class can accrue by riding, so the refill loop stays short.
            for request in batch:
                rank = request.class_rank
                floor = -float(self.policy.classes[rank].max_batch)
                self._deficits[rank] = max(self._deficits[rank] - 1.0, floor)

    # ------------------------------------------------------------------
    def get_batch(self) -> Optional[List[SlaRequest]]:
        """Extract the next batch under the policy (``None`` = drained).

        Selection: shed everything expired, pick the head (cross-class
        arbitration per ``policy.mode`` — strict precedence or
        deficit-round-robin — EDF within the class), then coalesce queued requests
        of the head's model — in the same eligibility order — until the
        head class's ``max_batch`` is full or the head's ``max_wait_s``
        budget (anchored on its enqueue time, clamped by its own expiry)
        runs out.  Requests of other models stay queued for the next
        batch.  Blocks while the queue is empty and open.
        """
        with self._cond:
            while True:
                now = time.monotonic()
                self._sweep_expired_locked(now)
                head = self._head_locked(now)
                if head is None:
                    if self._closed:
                        return None
                    self._cond.wait()
                    continue
                cls = self.policy.classes[head.class_rank]
                release_t = head.enqueue_t + cls.max_wait_s
                if self._expiry_t(head, cls) < release_t:
                    # waiting out the coalescing budget would cross the
                    # head's expiry: dispatch now with what is in hand
                    # rather than shed a head that can still be served
                    release_t = now
                batch = self._same_model_locked(head, cls.max_batch)
                if (len(batch) >= cls.max_batch or now >= release_t
                        or self._closed):
                    self._remove_locked(batch)
                    return batch
                timeout = min(release_t, self._next_expiry_locked()) - now
                self._cond.wait(timeout=max(timeout, 0.0))

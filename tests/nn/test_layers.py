"""Module system, layers, and parameter plumbing tests."""

import numpy as np
import pytest

from repro.nn import (BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d,
                      Module, Parameter, ReLU, Sequential, Tensor,
                      compressible_layers, set_init_seed)
from repro.nn.layers import GlobalAvgPool2d, kaiming_normal, uniform_fan_in


class TestModule:
    def test_parameter_registration(self):
        layer = Linear(3, 2)
        names = [n for n, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_names(self):
        model = Sequential(Linear(2, 2), Sequential(Linear(2, 2)))
        names = [n for n, _ in model.named_parameters()]
        assert "0.weight" in names and "1.0.weight" in names

    def test_zero_grad(self):
        layer = Linear(2, 2)
        (layer(Tensor(np.ones((1, 2)))) ** 2).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Sequential(Dropout(0.5)))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self):
        set_init_seed(1)
        a = Sequential(Conv2d(1, 2, 3), BatchNorm2d(2), Linear(4, 2))
        set_init_seed(2)
        b = Sequential(Conv2d(1, 2, 3), BatchNorm2d(2), Linear(4, 2))
        state = a.state_dict()
        b.load_state_dict(state)
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_includes_buffers(self):
        bn = BatchNorm2d(3)
        bn.running_mean[...] = 7.0
        state = bn.state_dict()
        assert "running_mean" in state
        np.testing.assert_array_equal(state["running_mean"], np.full(3, 7.0))

    def test_load_state_dict_missing_key_raises(self):
        layer = Linear(2, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({})

    def test_num_parameters(self):
        layer = Linear(3, 4)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))


class TestLayers:
    def test_conv_shape(self):
        layer = Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        out = layer(Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_conv_no_bias(self):
        layer = Conv2d(1, 1, 3, bias=False)
        assert layer.bias is None
        assert len(list(layer.named_parameters())) == 1

    def test_linear_shape(self):
        out = Linear(5, 3)(Tensor(np.zeros((4, 5), dtype=np.float32)))
        assert out.shape == (4, 3)

    def test_relu_flatten_pool(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4, 4)).astype(np.float32))
        assert (ReLU()(x).data >= 0).all()
        assert Flatten()(x).shape == (2, 48)
        assert MaxPool2d(2)(x).shape == (2, 3, 2, 2)
        assert GlobalAvgPool2d()(x).shape == (2, 3)

    def test_batchnorm_buffers_update_only_in_training(self):
        bn = BatchNorm2d(2)
        x = Tensor(np.random.default_rng(1).normal(3.0, 1.0, size=(8, 2, 2, 2)).astype(np.float32))
        bn.eval()
        bn(x)
        np.testing.assert_array_equal(bn.running_mean, np.zeros(2))
        bn.train()
        bn(x)
        assert np.abs(bn.running_mean).max() > 0

    def test_sequential_iteration_and_index(self):
        model = Sequential(Linear(2, 3), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)
        assert len(list(iter(model))) == 2

    def test_sequential_append(self):
        model = Sequential(Linear(2, 2))
        model.append(ReLU())
        assert len(model) == 2
        out = model(Tensor(np.full((1, 2), -1.0, dtype=np.float32)))
        assert (out.data >= 0).all()

    def test_compressible_layers_finds_conv_and_linear(self):
        model = Sequential(Conv2d(1, 2, 3), ReLU(), BatchNorm2d(2),
                           Flatten(), Linear(8, 2))
        layers = compressible_layers(model)
        assert len(layers) == 2
        assert isinstance(layers[0][1], Conv2d)
        assert isinstance(layers[1][1], Linear)

    def test_repr(self):
        assert "Conv2d(3, 8" in repr(Conv2d(3, 8, 3))
        assert "Linear(5, 3)" in repr(Linear(5, 3))


class TestInit:
    def test_set_init_seed_reproducible(self):
        set_init_seed(42)
        a = Conv2d(3, 4, 3).weight.data.copy()
        set_init_seed(42)
        b = Conv2d(3, 4, 3).weight.data.copy()
        np.testing.assert_array_equal(a, b)

    def test_kaiming_scale(self):
        rng = np.random.default_rng(0)
        w = kaiming_normal((1000, 50), fan_in=50, rng=rng)
        np.testing.assert_allclose(w.std(), np.sqrt(2.0 / 50), rtol=0.05)

    def test_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = uniform_fan_in((100, 16), fan_in=16, rng=rng)
        assert np.abs(w).max() <= 0.25

    def test_parameter_requires_grad(self):
        assert Parameter(np.zeros(3)).requires_grad

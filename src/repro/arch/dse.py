"""Design-space exploration (paper Sec. IV-C).

The paper reports two DSE outcomes without showing the sweep: "we performed
design space exploration to find the best size of crossbar arrays, ADCs,
DACs, and eDRAM storage", and "through design space explorations, we find
that 2-bit ReRAM cells delivers a better energy-efficiency than other number
of bits per cell (e.g., 4-bit, 8-bit)".  This module rebuilds that sweep on
top of the component catalog so both outcomes are regenerable
(``bench_ablation_cell_bits``).

A :class:`DesignPoint` fixes fragment size, bits per cell, weight precision
and ADC provisioning; :func:`evaluate_design` rolls it into a full chip and
reports cost, peak throughput, and two feasibility signals the paper argues
from:

* **ADC sizing** — more bits per cell raise the fragment's worst-case
  partial sum, and ADC cost grows exponentially with resolution.  Two
  sizing rules are supported: ``"exact"`` (cover the worst-case sum —
  :func:`repro.reram.converters.required_adc_bits`) and ``"paper"`` (the
  published typical-case sizing, one bit lower at 2-bit cells).
* **Variation margin** — adjacent conductance levels sit
  ``(g_max - g_min)/(levels - 1)`` apart; lognormal device variation with
  parameter ``sigma`` blurs each level by about ``sigma * g``.  The margin
  in sigmas collapses as ``1/(2**cell_bits - 1)`` — the "more rigorous
  hardware fabrication" cost of denser cells.  Designs under
  ``MIN_LEVEL_MARGIN_SIGMAS`` are flagged infeasible.

With exact ADC sizing, 2-bit cells maximize GOPs/W outright; with the
paper's optimistic sizing, the variation margin is what rules out 4/8-bit
cells.  Either way the published conclusion — 2-bit cells — survives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..reram.converters import required_adc_bits
from .chip import ChipDesign
from .components import (CROSSBAR_COLS, CROSSBAR_ROWS, CROSSBARS_PER_MCU,
                         FORMS_ADC_FREQ_HZ, ComponentSpec, default_adc_model,
                         forms_mcu_components)
from .mcu import MCUDesign
from .perf import AcceleratorConfig, PeakThroughput, peak_throughput
from .tile import TileDesign

#: minimum separation (in sigmas of conductance variation) between adjacent
#: levels for programming to be considered manufacturable
MIN_LEVEL_MARGIN_SIGMAS = 3.0

ADC_RULES = ("exact", "paper")


@dataclass(frozen=True)
class DesignPoint:
    """One candidate FORMS configuration in the design space."""

    fragment_size: int = 8
    cell_bits: int = 2
    weight_bits: int = 8
    activation_bits: int = 16
    adcs_per_crossbar: int = 4
    tiles: int = 168
    adc_rule: str = "exact"
    crossbar_rows: int = CROSSBAR_ROWS
    crossbar_cols: int = CROSSBAR_COLS

    def __post_init__(self):
        if self.fragment_size < 1:
            raise ValueError("fragment_size must be >= 1")
        if self.cell_bits < 1:
            raise ValueError("cell_bits must be >= 1")
        if self.weight_bits < self.cell_bits:
            raise ValueError("weight_bits must be >= cell_bits")
        if self.crossbar_rows < self.fragment_size or self.crossbar_cols < 1:
            raise ValueError("crossbar must be at least one fragment tall")
        if self.crossbar_rows % self.fragment_size:
            raise ValueError("fragment_size must divide crossbar_rows")
        if (self.adcs_per_crossbar < 1
                or self.crossbar_cols % self.adcs_per_crossbar):
            raise ValueError("adcs_per_crossbar must divide the column count")
        if self.adc_rule not in ADC_RULES:
            raise ValueError(f"adc_rule must be one of {ADC_RULES}")

    @property
    def adc_bits(self) -> int:
        if self.adc_rule == "exact":
            return required_adc_bits(self.fragment_size, self.cell_bits)
        # The paper sizes one bit below the worst case at every published
        # point (3/4/5 bits at m = 4/8/16 with 2-bit cells); generalize that
        # one-bit optimism to other cell widths.
        return max(1, required_adc_bits(self.fragment_size, self.cell_bits) - 1)

    @property
    def adc_frequency_hz(self) -> float:
        """SAR sample rate: one internal cycle per bit, anchored at 4-bit/2.1 GS/s."""
        return FORMS_ADC_FREQ_HZ * 4.0 / self.adc_bits

    @property
    def cells_per_weight(self) -> int:
        return -(-self.weight_bits // self.cell_bits)

    @property
    def conductance_levels(self) -> int:
        return 2 ** self.cell_bits

    def level_margin_sigmas(self, sigma: float = 0.1,
                            on_off_ratio: float = 100.0) -> float:
        """Separation between adjacent levels in units of variation sigma.

        Levels are uniformly spaced over ``[g_min, g_max]``; lognormal
        variation blurs a level at conductance ``g`` by roughly
        ``sigma * g``, worst at ``g_max``.
        """
        if sigma <= 0:
            return float("inf")
        step_fraction = (1.0 - 1.0 / on_off_ratio) / (self.conductance_levels - 1)
        return step_fraction / sigma

    def describe(self) -> str:
        label = (f"m={self.fragment_size} cell={self.cell_bits}b "
                 f"w={self.weight_bits}b adc={self.adc_bits}b"
                 f"@{self.adc_frequency_hz / 1e9:.2f}GHz")
        if (self.crossbar_rows, self.crossbar_cols) != (CROSSBAR_ROWS,
                                                        CROSSBAR_COLS):
            label += f" xbar={self.crossbar_rows}x{self.crossbar_cols}"
        return label


def design_mcu(point: DesignPoint) -> MCUDesign:
    """MCU bill of materials for an arbitrary design point.

    Reuses the published FORMS constants for everything except the ADC bank,
    which is priced through the calibrated scaling model at the point's
    resolution and sample rate.  Off-reference crossbar dimensions scale the
    per-row (DAC, S&H) and per-cell (array) component costs linearly.
    """
    adc_count = CROSSBARS_PER_MCU * point.adcs_per_crossbar
    model = default_adc_model()
    adc = ComponentSpec(
        "ADC",
        model.power_mw(point.adc_bits, point.adc_frequency_hz) * adc_count,
        model.area_mm2(point.adc_bits) * adc_count,
        adc_count,
        (("resolution_bits", point.adc_bits),
         ("frequency_hz", point.adc_frequency_hz)),
    )
    # Swap the ADC row of the published fragment-8 BOM for the custom bank;
    # the remaining rows scale with the crossbar geometry.
    row_scale = point.crossbar_rows / CROSSBAR_ROWS
    cell_scale = (point.crossbar_rows * point.crossbar_cols
                  / (CROSSBAR_ROWS * CROSSBAR_COLS))
    rest = []
    for component in forms_mcu_components(8):
        if component.name == "ADC":
            continue
        if component.name in ("DAC", "S&H"):
            scale = row_scale
        elif component.name == "crossbar array":
            scale = cell_scale
        else:
            scale = 1.0
        rest.append(ComponentSpec(component.name,
                                  component.power_mw * scale,
                                  component.area_mm2 * scale,
                                  max(1, int(round(component.count * scale))),
                                  component.params))
    return MCUDesign(
        name=f"DSE({point.describe()})",
        components=[adc] + rest,
        crossbar_rows=point.crossbar_rows,
        crossbar_cols=point.crossbar_cols,
        adcs_per_crossbar=point.adcs_per_crossbar,
        adc_bits=point.adc_bits,
        adc_frequency_hz=point.adc_frequency_hz,
        rows_per_activation=point.fragment_size,
        fragment_size=point.fragment_size,
    )


def design_chip(point: DesignPoint) -> ChipDesign:
    """Full chip for a design point (FORMS digital unit and tile layout)."""
    tile = TileDesign(
        name=f"DSE({point.describe()})",
        mcu=design_mcu(point),
        digital_power_mw=53.05,
        digital_area_mm2=0.2425,
        edram_kb=128,
        bus_bits=512,
    )
    return ChipDesign(name=tile.name, tile=tile, tiles=point.tiles)


@dataclass
class DesignEvaluation:
    """Cost/performance/feasibility of one design point."""

    point: DesignPoint
    power_w: float
    area_mm2: float
    gops: float
    adc_power_fraction: float
    level_margin_sigmas: float
    weight_capacity: int = 0     # weights the chip can hold resident

    @property
    def gops_per_w(self) -> float:
        return self.gops / self.power_w

    @property
    def gops_per_mm2(self) -> float:
        return self.gops / self.area_mm2

    @property
    def weights_per_mm2(self) -> float:
        """Storage density — what larger crossbars buy (peripherals amortize)."""
        return self.weight_capacity / self.area_mm2

    @property
    def variation_feasible(self) -> bool:
        return self.level_margin_sigmas >= MIN_LEVEL_MARGIN_SIGMAS


def evaluate_design(point: DesignPoint, variation_sigma: float = 0.1,
                    average_eic: Optional[float] = None) -> DesignEvaluation:
    """Evaluate one design point end to end (chip roll-up + peak throughput)."""
    chip = design_chip(point)
    config = AcceleratorConfig(
        name=chip.name, chip=chip, scheme="forms",
        weight_bits=point.weight_bits, cell_bits=point.cell_bits,
        activation_bits=point.activation_bits,
        zero_skip=average_eic is not None,
    )
    peak = peak_throughput(config, average_eic=average_eic)
    mcu = chip.tile.mcu
    adc_power = next(c.power_mw for c in mcu.components if c.name == "ADC")
    weights_per_crossbar = (point.crossbar_rows * point.crossbar_cols
                            // point.cells_per_weight)
    return DesignEvaluation(
        point=point,
        power_w=chip.power_w,
        area_mm2=chip.area_mm2,
        gops=peak.gops,
        adc_power_fraction=adc_power / mcu.power_mw,
        level_margin_sigmas=point.level_margin_sigmas(variation_sigma),
        weight_capacity=chip.crossbars * weights_per_crossbar,
    )


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------

def sweep(points: Iterable[DesignPoint], variation_sigma: float = 0.1,
          workers: Optional[int] = None,
          backend: Optional[str] = None) -> List[DesignEvaluation]:
    """Evaluate design points, fanned out across ``workers`` when > 1.

    Points are independent analytic roll-ups, so the fan-out is trivially
    safe; results come back in point order regardless of worker count (or
    ``backend`` — the evaluator is a module-level partial, so the grid
    runs unchanged on the process tier).
    """
    from functools import partial

    from ..runtime import parallel_map
    if workers is None or workers <= 1:
        return [evaluate_design(p, variation_sigma) for p in points]
    return parallel_map(partial(evaluate_design,
                                variation_sigma=variation_sigma),
                        points, workers=workers, backend=backend)


def cell_bits_sweep(fragment_size: int = 8,
                    options: Sequence[int] = (1, 2, 4, 8),
                    adc_rule: str = "exact",
                    variation_sigma: float = 0.1,
                    workers: Optional[int] = None,
                    backend: Optional[str] = None) -> List[DesignEvaluation]:
    """The Sec. IV-C cell-density sweep at a fixed fragment size."""
    points = [DesignPoint(fragment_size=fragment_size, cell_bits=c,
                          weight_bits=max(8, c), adc_rule=adc_rule)
              for c in options]
    return sweep(points, variation_sigma, workers=workers, backend=backend)


def fragment_sweep(cell_bits: int = 2,
                   options: Sequence[int] = (4, 8, 16, 32),
                   adc_rule: str = "exact",
                   variation_sigma: float = 0.1,
                   workers: Optional[int] = None,
                   backend: Optional[str] = None) -> List[DesignEvaluation]:
    """Fragment-size sweep at fixed cell density."""
    points = [DesignPoint(fragment_size=m, cell_bits=cell_bits,
                          adc_rule=adc_rule) for m in options]
    return sweep(points, variation_sigma, workers=workers, backend=backend)


@dataclass
class CrossbarSizeEvaluation:
    """One crossbar-size design point with its analog-feasibility signal."""

    evaluation: DesignEvaluation
    analog_error: float

    #: a fragment read losing more than this fraction of its signal is
    #: considered analog-infeasible (roughly one 4-bit-ADC LSB of 16 levels)
    MAX_ANALOG_ERROR = 0.0625

    @property
    def size(self) -> int:
        return self.evaluation.point.crossbar_rows

    @property
    def analog_feasible(self) -> bool:
        return self.analog_error <= self.MAX_ANALOG_ERROR


def _evaluate_crossbar_size(size: int, fragment_size: int, cell_bits: int,
                            adc_rule: str, wire, seed: int
                            ) -> CrossbarSizeEvaluation:
    """One size point of :func:`crossbar_size_sweep` (module-level so the
    sweep's partial pickles onto the process backend)."""
    from ..reram.nonideal import CellIV, fragment_read_error

    point = DesignPoint(fragment_size=fragment_size, cell_bits=cell_bits,
                        adc_rule=adc_rule, crossbar_rows=size,
                        crossbar_cols=size)
    error = fragment_read_error(size, fragment_size, wire=wire,
                                cell_iv=CellIV(), seed=seed)
    return CrossbarSizeEvaluation(
        evaluation=evaluate_design(point), analog_error=error)


def crossbar_size_sweep(options: Sequence[int] = (64, 128, 256, 512),
                        fragment_size: int = 8, cell_bits: int = 2,
                        adc_rule: str = "paper",
                        wire=None, seed: int = 0,
                        workers: Optional[int] = None,
                        backend: Optional[str] = None
                        ) -> List[CrossbarSizeEvaluation]:
    """The "best size of crossbar arrays" exploration (Sec. IV-C).

    Square crossbars at each size: larger arrays amortize the constant
    per-MCU blocks over more weights (density and efficiency rise), but the
    bit-line grows with the row count and every fragment read degrades with
    it (:func:`repro.reram.nonideal.fragment_read_error`).  The published
    128x128 choice is where density gains meet the analog error wall.
    Sizes are independent (the analog-error solve dominates at 512 rows),
    so they fan out across ``workers`` when > 1.
    """
    from functools import partial

    from ..reram.nonideal import WireModel
    from ..runtime import parallel_map

    wire = wire or WireModel()
    evaluate_size = partial(_evaluate_crossbar_size,
                            fragment_size=fragment_size, cell_bits=cell_bits,
                            adc_rule=adc_rule, wire=wire, seed=seed)
    if workers is None or workers <= 1:
        return [evaluate_size(size) for size in options]
    return parallel_map(evaluate_size, options, workers=workers,
                        backend=backend)


def best_energy_efficiency(evaluations: Sequence[DesignEvaluation],
                           require_feasible: bool = True) -> DesignEvaluation:
    """The GOPs/W winner, optionally restricted to variation-feasible points."""
    pool = [e for e in evaluations if e.variation_feasible] if require_feasible \
        else list(evaluations)
    if not pool:
        raise ValueError("no feasible design points to choose from")
    return max(pool, key=lambda e: e.gops_per_w)


def pareto_front(evaluations: Sequence[DesignEvaluation],
                 objectives: Tuple[str, ...] = ("gops_per_w", "gops_per_mm2")
                 ) -> List[DesignEvaluation]:
    """Non-dominated subset under the given to-maximize objectives."""
    if not objectives:
        raise ValueError("need at least one objective")
    scores = np.array([[getattr(e, obj) for obj in objectives]
                       for e in evaluations])
    front = []
    for i, candidate in enumerate(evaluations):
        dominated = ((scores >= scores[i]).all(axis=1)
                     & (scores > scores[i]).any(axis=1)).any()
        if not dominated:
            front.append(candidate)
    return front

"""Training-loop, evaluation, and BN-recalibration tests."""

import numpy as np
import pytest

from repro.nn import (Adam, BatchNorm2d, Conv2d, Flatten, Linear, ReLU,
                      Sequential, Tensor, evaluate, evaluate_topk, fit,
                      recalibrate_batchnorm, set_init_seed)


def make_model(num_classes=3):
    set_init_seed(3)
    return Sequential(Conv2d(1, 4, 3, padding=1), BatchNorm2d(4), ReLU(),
                      Flatten(), Linear(4 * 8 * 8, num_classes))


class TestFit:
    def test_training_improves_accuracy(self, tiny_dataset):
        train, test = tiny_dataset
        model = make_model()
        before = evaluate(model, test).accuracy
        history = fit(model, train, Adam(model.parameters(), 1e-3), epochs=4,
                      batch_size=16, test_set=test)
        assert history.final_test_accuracy > max(before, 0.4)
        assert len(history.train) == 4
        assert len(history.test) == 4

    def test_loss_decreases(self, tiny_dataset):
        train, _ = tiny_dataset
        model = make_model()
        history = fit(model, train, Adam(model.parameters(), 1e-3), epochs=4,
                      batch_size=16)
        assert history.train[-1].loss < history.train[0].loss

    def test_grad_hook_called_per_batch(self, tiny_dataset):
        train, _ = tiny_dataset
        model = make_model()
        calls = []
        fit(model, train, Adam(model.parameters(), 1e-3), epochs=1,
            batch_size=32, grad_hook=lambda: calls.append(1))
        assert len(calls) == (len(train) + 31) // 32

    def test_step_hook_called_after_step(self, tiny_dataset):
        train, _ = tiny_dataset
        model = make_model()
        snapshots = []

        def hook():
            snapshots.append(model[0].weight.data.copy())

        fit(model, train, Adam(model.parameters(), 1e-3), epochs=1,
            batch_size=48, step_hook=hook)
        assert len(snapshots) == 2
        assert not np.array_equal(snapshots[0], snapshots[1])

    def test_epoch_hook_receives_indices(self, tiny_dataset):
        train, _ = tiny_dataset
        model = make_model()
        seen = []
        fit(model, train, Adam(model.parameters(), 1e-3), epochs=3,
            batch_size=32, epoch_hook=seen.append)
        assert seen == [0, 1, 2]

    def test_history_no_test_raises(self):
        from repro.nn.trainer import History
        with pytest.raises(ValueError):
            History().final_test_accuracy


class TestEvaluate:
    def test_restores_training_mode(self, tiny_dataset):
        _, test = tiny_dataset
        model = make_model()
        model.train()
        evaluate(model, test)
        assert model.training

    def test_topk_at_least_top1(self, tiny_dataset):
        train, test = tiny_dataset
        model = make_model()
        fit(model, train, Adam(model.parameters(), 1e-3), epochs=2, batch_size=16)
        top1 = evaluate(model, test).accuracy
        top2 = evaluate_topk(model, test, k=2)
        assert top2 >= top1


class TestRecalibrateBatchnorm:
    def test_fixes_corrupted_stats(self, tiny_dataset):
        train, test = tiny_dataset
        model = make_model()
        fit(model, train, Adam(model.parameters(), 1e-3), epochs=4, batch_size=16)
        good = evaluate(model, test).accuracy
        bn = model[1]
        bn.running_mean[...] = 100.0
        bn.running_var[...] = 1e-4
        corrupted = evaluate(model, test).accuracy
        assert corrupted < good
        recalibrate_batchnorm(model, train)
        recovered = evaluate(model, test).accuracy
        assert recovered >= good - 0.05

    def test_does_not_touch_weights(self, tiny_dataset):
        train, _ = tiny_dataset
        model = make_model()
        weights = model[0].weight.data.copy()
        recalibrate_batchnorm(model, train)
        np.testing.assert_array_equal(model[0].weight.data, weights)

    def test_noop_without_batchnorm(self, tiny_dataset):
        train, _ = tiny_dataset
        model = Sequential(Flatten(), Linear(64, 3))
        recalibrate_batchnorm(model, train)  # must not raise

    def test_restores_momentum_and_mode(self, tiny_dataset):
        train, _ = tiny_dataset
        model = make_model()
        model.eval()
        before = model[1].momentum
        recalibrate_batchnorm(model, train, momentum=0.9)
        assert model[1].momentum == before
        assert not model.training

"""Performance model tests: crossbar counting, allocation, FPS, Table V."""

import pytest

from repro.arch import (AcceleratorConfig, LayerWorkload, NetworkWorkload,
                        allocate_replication, forms_chip, forms_config,
                        isaac16_config, isaac32_config, isaac_chip,
                        layer_crossbars, layer_input_bits, layer_pass_time_s,
                        layer_time_per_image_s, network_performance,
                        peak_throughput, pruned_quantized_isaac_config,
                        puma_config)
from repro.arch.perf import pressure_matched_tiles
from repro.core.zero_skip import EICStats


def make_layer(name="conv", rows=256, cols=128, live_rows=None, live_cols=None,
               positions=256, eic_avg=10.0):
    layer = LayerWorkload(
        name=name, kind="conv", rows=rows, cols=cols,
        live_rows=live_rows or rows, live_cols=live_cols or cols,
        positions_per_image=positions)
    for m in (4, 8, 16):
        layer.eic_stats[m] = EICStats(m, 16, {int(eic_avg): 100})
    return layer


def make_workload(layers=None):
    return NetworkWorkload("test", "synthetic", layers or [make_layer()])


class TestLayerCrossbars:
    def test_dense_counting(self):
        layer = make_layer(rows=128, cols=32)
        config = isaac16_config()  # 16-bit -> 8 cells -> 16 filters/xbar
        assert layer_crossbars(layer, config) == 2

    def test_pruned_structure_used(self):
        layer = make_layer(rows=256, cols=32, live_rows=128, live_cols=16)
        config = pruned_quantized_isaac_config()  # 8-bit -> 32 filters/xbar
        assert layer_crossbars(layer, config) == 1

    def test_dual_doubles(self):
        layer = make_layer(rows=128, cols=32)
        single = layer_crossbars(layer, isaac16_config())
        dual = layer_crossbars(layer, puma_config(16))
        assert dual == 2 * single


class TestTiming:
    def test_input_bits_zero_skip(self):
        layer = make_layer(eic_avg=9)
        assert layer_input_bits(layer, forms_config(8, zero_skip=True)) == 9.0
        assert layer_input_bits(layer, forms_config(8, zero_skip=False)) == 16.0
        # coarse designs cannot skip
        assert layer_input_bits(layer, isaac16_config()) == 16.0

    def test_pass_time_coarse_vs_fine(self):
        layer = make_layer(rows=128)
        isaac_t = layer_pass_time_s(layer, isaac16_config())
        forms_t = layer_pass_time_s(layer, forms_config(8, zero_skip=False))
        assert forms_t == pytest.approx(isaac_t * 16 * 15.24 / 106.7, rel=0.01)

    def test_pass_time_shallow_layer_fewer_groups(self):
        shallow = make_layer(rows=24)
        deep = make_layer(rows=128)
        config = forms_config(8, zero_skip=False)
        assert layer_pass_time_s(shallow, config) < layer_pass_time_s(deep, config)

    def test_time_per_image_scales_with_replication(self):
        layer = make_layer(positions=100)
        config = isaac16_config()
        t1 = layer_time_per_image_s(layer, config, replication=1.0)
        t4 = layer_time_per_image_s(layer, config, replication=4.0)
        assert t4 == pytest.approx(t1 / 4)


class TestAllocation:
    def test_budget_respected(self):
        layers = [make_layer(name=f"l{i}", positions=2 ** i) for i in range(4)]
        workload = make_workload(layers)
        config = isaac16_config(tiles=1)
        replication = allocate_replication(workload, config)
        used = sum(layer_crossbars(l, config) * replication[l.name] for l in layers)
        assert used <= config.chip.crossbars

    def test_bottleneck_gets_replicas(self):
        hot = make_layer(name="hot", positions=10_000, rows=64, cols=16)
        cold = make_layer(name="cold", positions=10, rows=64, cols=16)
        workload = make_workload([hot, cold])
        replication = allocate_replication(workload, isaac16_config(tiles=1))
        assert replication["hot"] > replication["cold"]

    def test_cap_enforced(self):
        workload = make_workload([make_layer(rows=16, cols=8)])
        config = isaac16_config()
        replication = allocate_replication(workload, config)
        assert max(replication.values()) <= config.replication_cap()

    def test_oversubscribed_goes_fractional(self):
        huge = make_layer(rows=128 * 100, cols=128 * 100)
        workload = make_workload([huge])
        config = isaac32_config(tiles=1)
        replication = allocate_replication(workload, config)
        assert 0 < replication["conv"] < 1


class TestNetworkPerformance:
    def test_result_fields(self):
        result = network_performance(make_workload(), isaac16_config())
        assert result.fps > 0
        assert result.bottleneck_layer == "conv"
        assert result.effective_gops > 0
        assert result.gops_per_mm2 > 0 and result.gops_per_w > 0

    def test_fps_orderings(self):
        """The paper's qualitative FPS relations on a deep-layer workload."""
        layers = [make_layer(name=f"l{i}", rows=512, cols=128, positions=256,
                             live_rows=256, live_cols=64, eic_avg=10)
                  for i in range(6)]
        workload = make_workload(layers)
        tiles = 2
        fps = {}
        for config in (isaac32_config(tiles),
                       pruned_quantized_isaac_config(tiles=tiles),
                       puma_config(8, pruned=True, tiles=tiles),
                       forms_config(8, zero_skip=False, tiles=tiles),
                       forms_config(8, zero_skip=True, tiles=tiles)):
            fps[config.name] = network_performance(workload, config).fps
        assert fps["Pruned/Quantized-ISAAC"] > fps["ISAAC-32"]
        assert fps["Pruned/Quantized-PUMA"] <= fps["Pruned/Quantized-ISAAC"]
        assert fps["FORMS-8 (PQP+ZS)"] > fps["FORMS-8 (PQP)"]

    def test_pressure_matched_tiles(self):
        workload = make_workload([make_layer(rows=128 * 8, cols=128)])
        tiles = pressure_matched_tiles(workload, pressure=2.0)
        config = isaac32_config(tiles=tiles)
        demand = sum(layer_crossbars(l, config) for l in workload.layers)
        assert demand / config.chip.crossbars == pytest.approx(2.0, rel=0.5)
        with pytest.raises(ValueError):
            pressure_matched_tiles(workload, pressure=0)


class TestPeakThroughput:
    def test_polarization_only_below_isaac(self):
        base = peak_throughput(isaac16_config())
        poln = peak_throughput(AcceleratorConfig(
            "FORMS-poln-8", forms_chip(8), "forms", weight_bits=16))
        rel = poln.gops_per_mm2 / base.gops_per_mm2
        assert 0.3 < rel < 0.7  # paper: 0.54

    def test_fragment16_beats_fragment8(self):
        p8 = peak_throughput(AcceleratorConfig("f8", forms_chip(8), "forms", weight_bits=16))
        p16 = peak_throughput(AcceleratorConfig("f16", forms_chip(16), "forms", weight_bits=16))
        gain = p16.gops_per_mm2 / p8.gops_per_mm2
        assert 1.2 < gain < 1.8  # paper: +42%

    def test_effective_ops_factor_scales(self):
        config = pruned_quantized_isaac_config()
        base = peak_throughput(config, effective_ops_factor=1.0)
        scaled = peak_throughput(config, effective_ops_factor=5.0)
        assert scaled.gops == pytest.approx(5 * base.gops)

    def test_zero_skip_raises_peak(self):
        config = forms_config(8, zero_skip=True)
        noskip = peak_throughput(config, average_eic=None)
        skip = peak_throughput(config, average_eic=10.0)
        assert skip.gops > noskip.gops

    def test_dual_halves_weights(self):
        isaac = peak_throughput(isaac16_config())
        puma = peak_throughput(puma_config(16))
        assert puma.gops == pytest.approx(isaac.gops / 2, rel=1e-6)

"""Classification metrics beyond top-1 accuracy.

The trainer reports loss and top-1; the paper's ImageNet rows use top-5, and
the robustness studies (Table VI, fault injection) benefit from per-class
views — a die whose faults collapse one class can hide inside an aggregate
accuracy.  All functions take plain numpy arrays (logits or predicted
labels), so they compose with any evaluation loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


def predictions_from_logits(logits: np.ndarray) -> np.ndarray:
    """Top-1 predicted class per row of ``(N, classes)`` logits."""
    logits = np.asarray(logits)
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D (batch, classes)")
    return logits.argmax(axis=1)


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of rows whose true label is among the k largest logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D (batch, classes)")
    if len(labels) != len(logits):
        raise ValueError("labels and logits must have the same length")
    if not 1 <= k <= logits.shape[1]:
        raise ValueError("k must lie in [1, num_classes]")
    top = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    return float((top == labels[:, None]).any(axis=1).mean())


def confusion_matrix(labels: np.ndarray, predictions: np.ndarray,
                     num_classes: Optional[int] = None) -> np.ndarray:
    """Counts ``C[i, j]`` of true class i predicted as class j."""
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must have the same shape")
    if num_classes is None:
        num_classes = int(max(labels.max(initial=0),
                              predictions.max(initial=0))) + 1
    if (labels < 0).any() or (predictions < 0).any() \
            or (labels >= num_classes).any() or (predictions >= num_classes).any():
        raise ValueError("class indices outside [0, num_classes)")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


@dataclass
class ClassificationReport:
    """Per-class precision/recall/F1 plus aggregates, from a confusion matrix."""

    matrix: np.ndarray

    @property
    def num_classes(self) -> int:
        return self.matrix.shape[0]

    @property
    def support(self) -> np.ndarray:
        """True-example count per class."""
        return self.matrix.sum(axis=1)

    @property
    def accuracy(self) -> float:
        total = self.matrix.sum()
        return float(np.trace(self.matrix) / total) if total else 0.0

    @property
    def recall(self) -> np.ndarray:
        """Per-class recall (0 where the class has no examples)."""
        denom = self.matrix.sum(axis=1)
        return np.divide(np.diag(self.matrix), denom,
                         out=np.zeros(self.num_classes), where=denom > 0)

    @property
    def precision(self) -> np.ndarray:
        """Per-class precision (0 where the class is never predicted)."""
        denom = self.matrix.sum(axis=0)
        return np.divide(np.diag(self.matrix), denom,
                         out=np.zeros(self.num_classes), where=denom > 0)

    @property
    def f1(self) -> np.ndarray:
        p, r = self.precision, self.recall
        denom = p + r
        return np.divide(2 * p * r, denom, out=np.zeros(self.num_classes),
                         where=denom > 0)

    @property
    def macro_f1(self) -> float:
        """Unweighted mean F1 — sensitive to a single collapsed class."""
        return float(self.f1.mean())

    def worst_class(self) -> int:
        """The class with the lowest recall (the fault-study headline)."""
        return int(np.argmin(self.recall))

    def summary(self) -> Dict[str, float]:
        return {
            "accuracy": self.accuracy,
            "macro_f1": self.macro_f1,
            "worst_class_recall": float(self.recall.min(initial=0.0)),
        }


def classification_report(labels: np.ndarray, predictions: np.ndarray,
                          num_classes: Optional[int] = None
                          ) -> ClassificationReport:
    """Build a :class:`ClassificationReport` from labels and predictions."""
    return ClassificationReport(confusion_matrix(labels, predictions,
                                                 num_classes))

"""Table VI — accuracy degradation under lognormal(0, 0.1) device variation.

ResNet-18 on CIFAR-10/CIFAR-100/ImageNet stand-ins, four variants each
(original / polarization-only / pruning-only / full optimization), averaged
over simulated dies.  Expected shape (paper): polarization does NOT hurt
robustness; pruning adds extra degradation.
"""

import numpy as np

from repro.analysis import FAST, table6


def test_table6_variation(benchmark, save_table):
    scale = FAST.scaled(variation_runs=8)
    result = benchmark.pedantic(lambda: table6(scale, seed=0),
                                rounds=1, iterations=1)
    save_table("table6_variation", result)
    benchmark.extra_info["table"] = result.rendered
    # columns: dataset, original, polarization only, pruning only, full
    original = np.array([row[1] for row in result.rows])
    polarization = np.array([row[2] for row in result.rows])
    pruning = np.array([row[3] for row in result.rows])
    # Polarization-only stays close to the original's robustness on average
    # (paper: within ~0.05% — we allow finite-die noise at this scale).
    assert abs(polarization.mean() - original.mean()) < 4.0
    # Degradations are bounded sane values (not collapses).
    assert np.all(np.array([row[1:] for row in result.rows]) < 50.0)

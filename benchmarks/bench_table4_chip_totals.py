"""Table IV — chip-level power/area: FORMS vs ISAAC vs DaDianNao.

The roll-up (MCUs -> tile -> 168 tiles -> chip + HyperTransport) must land on
the published totals: FORMS 66.36 W / 89.15 mm2, ISAAC 65.81 W / 85.09 mm2
(the "almost the same power/area" iso-comparison the throughput results rely
on), DaDianNao 19.86 W / 86.2 mm2 recorded.
"""

import pytest

from repro.analysis import table4


def test_table4_chip_totals(benchmark, save_table):
    result = benchmark.pedantic(lambda: table4(8), rounds=3, iterations=1)
    save_table("table4_chip_totals", result)
    benchmark.extra_info["table"] = result.rendered
    totals = {r[0]: r for r in result.rows}
    chip = totals["chip total"]
    assert chip[1] == pytest.approx(66360.8, rel=1e-3)
    assert chip[2] == pytest.approx(89.15, rel=2e-3)
    assert chip[3] == pytest.approx(65808.08, rel=1e-3)
    assert chip[4] == pytest.approx(85.09, rel=2e-3)
    dadiannao = totals["DaDianNao total"]
    assert dadiannao[1] == pytest.approx(19856.0)

"""Chaos benchmark: fault injection, detection and live recovery.

The serving curves (:mod:`repro.perf.serving`, :mod:`~repro.perf.
multitenant`) measure the stack when every die is healthy; this module
measures the scenario the fault-tolerance subsystem exists for — **a
programmed die develops stuck-at faults under live mixed-tenant load**:

* a scripted :class:`~repro.reram.faults.FaultInjector` flips a tenant's
  die to a seeded stuck-at map at a dispatch boundary mid-traffic (plus
  optional dispatch delays and crashes);
* the armed :class:`~repro.reram.faults.DieGuard` checksum columns trip
  on the next MVM touching the die;
* the server quarantines the die, re-programs it through the shared
  :class:`~repro.reram.DieCache` and retries the batch, attaching a
  recovery receipt to every request that rode the recovered dispatch.

Records carry their own ``"chaos"`` BENCH record kind (merged into
``BENCH_engine.json`` through :func:`repro.perf.serving.
merge_records_into_file`, preserving the engine/serving curves — and
preserved by them in turn; see :func:`repro.perf.suite.write_payload`).

Every point asserts — before anything is recorded — the whole-point
robustness contract:

* **bit-identity**: every *completed* request equals a direct serial
  single-image forward through its tenant's network, computed *before*
  any fault was injected — recovery restored the exact pre-fault die;
* **zero hung futures**: every submitted future resolves (completion,
  shed receipt, or an injected crash error) within a bounded wait;
* **liveness**: every scripted stuck-at fault was detected and recovered
  (the post-traffic probe requests guarantee each tenant dispatches at
  least once after the last scripted event).
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from concurrent.futures import wait as futures_wait
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .multitenant import (BATCH_MODEL, BULK, FAST_MODEL, INTERACTIVE,
                          mixed_policy, tenant_models)
from .serving import poisson_arrival_offsets

#: BENCH record kind of the chaos scenario points
CHAOS_RECORD_KIND = "chaos"

#: bounded wait proving "zero hung futures" — generous against CI jitter,
#: tiny against an actual hang (a lost future would wait forever)
RESOLVE_TIMEOUT_S = 60.0


def chaos_record_name(rate_rps: float) -> str:
    rate = f"{rate_rps:g}".replace(".", "p")
    return f"chaos_mixed_r{rate}"


def default_chaos_events(*, sa0_rate: float = 0.03, sa1_rate: float = 0.01,
                         include_crash: bool = False):
    """The canonical chaos scenario: both tenants lose a die early.

    Returns a tuple of :class:`~repro.reram.faults.FaultEvent`: a
    stuck-at flip on the bulk tenant's most sensitive die at the first
    dispatch, a dispatch-path stall, and a stuck-at flip on the
    interactive tenant shortly after — so recovery is exercised on both
    tenants while Poisson arrivals are still queueing.  With
    ``include_crash`` a scripted dispatch crash rides along (its batch
    fails fast with :class:`~repro.reram.faults.InjectedDispatchError`;
    the server keeps serving).
    """
    from ..reram.faults import (EVENT_CRASH, EVENT_DELAY, EVENT_STUCK_AT,
                                FaultEvent)
    events = [
        FaultEvent(EVENT_STUCK_AT, at_dispatch=1, model=BATCH_MODEL,
                   sa0_rate=sa0_rate, sa1_rate=sa1_rate),
        FaultEvent(EVENT_DELAY, at_dispatch=2, delay_s=0.002),
        FaultEvent(EVENT_STUCK_AT, at_dispatch=4, model=FAST_MODEL,
                   sa0_rate=sa0_rate, sa1_rate=sa1_rate),
    ]
    if include_crash:
        events.append(FaultEvent(EVENT_CRASH, at_dispatch=6))
    return tuple(events)


def drive_chaos(rate_rps: float, requests: int, *, events=None,
                interactive_fraction: float = 0.4,
                max_fault_retries: int = 2,
                workers: Optional[int] = None, seed: int = 0,
                activation_bits: int = 12) -> Dict:
    """Serve one mixed-tenant Poisson process under scripted die faults.

    Builds the two-tenant registry on one shared
    :class:`~repro.reram.DieCache`, computes serial per-tenant reference
    forwards **before any fault exists**, then replays ``requests``
    open-loop Poisson arrivals at ``rate_rps`` with ``events`` (default
    :func:`default_chaos_events`) armed on a seeded
    :class:`~repro.reram.faults.FaultInjector` and checksum guards on
    every die (``detect_faults=True``).  After the arrival loop one probe
    request per tenant guarantees a dispatch boundary (and hence
    detection and recovery) after the last scripted event.

    Asserts the robustness contract documented in the module docstring
    before returning; the returned dict carries served results, shed /
    failure accounting, the injector log, the server snapshot and the
    die-health snapshot.
    """
    from ..reram import (ADCSpec, DeviceSpec, DieCache, ReRAMDevice,
                         paper_adc_bits)
    from ..reram.faults import (EVENT_STUCK_AT, FaultInjector,
                                InjectedDispatchError)
    from ..runtime import run_network_serial
    from ..serving import InferenceServer, ModelRegistry, RequestShed

    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if not 0.0 <= interactive_fraction <= 1.0:
        raise ValueError("interactive_fraction must be within [0, 1]")
    if events is None:
        events = default_chaos_events()

    models, config, images = tenant_models(seed=seed)
    device = ReRAMDevice(DeviceSpec(), 0.0)
    adc = ADCSpec(bits=paper_adc_bits(config.fragment_size))
    registry = ModelRegistry(workers=workers, die_cache=DieCache())
    for name, model in models.items():
        registry.register(name, model, config, device, adc=adc,
                          activation_bits=activation_bits)

    # references BEFORE any fault is injected: recovery must restore the
    # exact pre-fault die, so these stay the oracle for the whole run
    serial = {name: run_network_serial(registry.get(name).network, images,
                                       tile_size=1) for name in models}

    injector = FaultInjector(events, seed=seed)
    # latency-bound shedding off: the only shed reason a chaos point may
    # record is fault_recovery (retry budget exhaustion)
    policy = mixed_policy(bulk_shed_after_ms=None)

    rng = np.random.default_rng(seed)
    image_idx = rng.integers(0, images.shape[0], size=requests)
    interactive = rng.random(requests) < interactive_fraction
    arrival_offsets = poisson_arrival_offsets(rng, rate_rps, requests)

    assignments: List[Tuple[str, int]] = []    # (model, image idx)
    futures: List[Future] = []
    with registry, InferenceServer(registry=registry, policy=policy,
                                   detect_faults=True,
                                   fault_injector=injector,
                                   max_fault_retries=max_fault_retries,
                                   ) as server:
        start = time.monotonic()
        for i in range(requests):
            delay = start + arrival_offsets[i] - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            model = FAST_MODEL if interactive[i] else BATCH_MODEL
            priority = INTERACTIVE if interactive[i] else BULK
            assignments.append((model, int(image_idx[i])))
            futures.append(server.submit_async(images[image_idx[i]],
                                               model=model,
                                               priority=priority))
        # post-traffic probes: each tenant must dispatch at least once
        # *after* the last scripted event has been applied, or a die
        # flipped at the final dispatch boundary would go undetected
        # (events apply at any model's boundary; detection needs the
        # flipped die itself to run an MVM).  Probe in rounds until the
        # scenario is fully applied, then one clean round for detection.
        max_rounds = 2 + max((event.at_dispatch for event in events),
                             default=0)
        for _ in range(max_rounds):
            scenario_done = not injector.pending
            probes: List[Future] = []
            for model, priority in ((FAST_MODEL, INTERACTIVE),
                                    (BATCH_MODEL, BULK)):
                assignments.append((model, 0))
                probe = server.submit_async(images[0], model=model,
                                            priority=priority)
                futures.append(probe)
                probes.append(probe)
            futures_wait(probes, timeout=RESOLVE_TIMEOUT_S)
            if scenario_done:
                break

        served: List[Optional[object]] = []
        sheds: List[Optional[object]] = []
        crashes = 0
        for future in futures:
            try:    # bounded wait — a timeout here IS a hung future
                served.append(future.result(timeout=RESOLVE_TIMEOUT_S))
                sheds.append(None)
            except RequestShed as exc:
                served.append(None)
                sheds.append(exc.receipt)
            except InjectedDispatchError:
                served.append(None)
                sheds.append(None)
                crashes += 1
        open_loop_s = time.monotonic() - start
        snapshot = server.server_stats()
        health = server.die_health.snapshot()
        resolved_workers = server.pool.workers

    # ------------------------------------------------------------- the
    # robustness contract: what makes a chaos point worth recording
    for i, result in enumerate(served):
        if result is None:
            continue
        model, img = assignments[i]
        if not np.array_equal(result.output, serial[model][img]):
            raise AssertionError(
                f"request {i} ({model}): served output != pre-fault serial "
                "forward — recovery did not restore the die bit-exactly")
    stuck_events = sum(event.kind == EVENT_STUCK_AT for event in events)
    flips = sum(entry.get("stuck_cells_total", 0) > 0
                for entry in injector.log())
    if max_fault_retries > 0 and flips:
        if snapshot["faults_detected"] < flips:
            raise AssertionError(
                f"{flips} dies flipped but only "
                f"{snapshot['faults_detected']} detections — a fault "
                "served silently")
        if snapshot["fault_recoveries"] < flips:
            raise AssertionError(
                f"{flips} dies flipped but only "
                f"{snapshot['fault_recoveries']} recoveries")
    if injector.pending:
        raise AssertionError(
            f"{len(injector.pending)} scripted events never came due — "
            "scenario needs more dispatches (raise `requests`)")

    recovered = [result for result in served
                 if result is not None and result.stats.recovery is not None]
    return {"served": served, "sheds": sheds, "assignments": assignments,
            "recovered": recovered, "crashes": crashes,
            "snapshot": snapshot, "health": health,
            "injected": injector.log(), "stuck_events": stuck_events,
            "open_loop_s": open_loop_s, "workers": resolved_workers}


def run_chaos_point(rate_rps: float, requests: int = 32, *, events=None,
                    interactive_fraction: float = 0.4,
                    max_fault_retries: int = 2,
                    workers: Optional[int] = None, seed: int = 0,
                    activation_bits: int = 12) -> Dict:
    """Measure one chaos arrival-rate point and return its record.

    Drives :func:`drive_chaos` (the bit-identity / zero-hung-futures /
    recovery-liveness contract is asserted there) and packages the
    outcome as one ``"chaos"`` record for ``BENCH_engine.json``
    (schema in ``benchmarks/README.md``).
    """
    driven = drive_chaos(rate_rps, requests, events=events,
                         interactive_fraction=interactive_fraction,
                         max_fault_retries=max_fault_retries,
                         workers=workers, seed=seed,
                         activation_bits=activation_bits)
    snapshot = driven["snapshot"]
    completed = sum(result is not None for result in driven["served"])
    return {
        "name": chaos_record_name(rate_rps),
        "kind": CHAOS_RECORD_KIND,
        "results": {
            "offered_rate_rps": rate_rps,
            "throughput_rps": completed / driven["open_loop_s"],
            "requests_completed": completed,
            "requests_failed": snapshot["requests_failed"],
            "requests_shed": snapshot["requests_shed"],
            "shed_by_reason": snapshot["shed_by_reason"],
            "faults_injected": len(driven["injected"]),
            "faults_detected": snapshot["faults_detected"],
            "fault_recoveries": snapshot["fault_recoveries"],
            "requests_recovered": snapshot["requests_recovered"],
            "latency_p50_s": snapshot["latency_p50_s"],
            "latency_p95_s": snapshot["latency_p95_s"],
        },
        "meta": {
            "requests": requests,
            "interactive_fraction": interactive_fraction,
            "max_fault_retries": max_fault_retries,
            "workers": driven["workers"],
            "seed": seed,
            "activation_bits": activation_bits,
            "models": sorted({model for model, _ in driven["assignments"]}),
            "scenario": driven["injected"],
            "die_health": dict(driven["health"]["counts"],
                               recoveries=driven["health"]["recoveries"]),
            "bit_identical_to_serial": True,
            "zero_hung_futures": True,
        },
    }

"""Iso-area performance model: FPS, peak throughput, efficiency.

This is the model behind Table V and Figs. 13/14.  Inputs: a chip design
(crossbar budget, timing, power, area), a mapping configuration (scheme,
weight bits, pruned structure, zero-skipping) and a measured
:class:`~repro.arch.workload.NetworkWorkload`.

Model structure (assumptions documented in DESIGN.md):

* **Weight-stationary pipelined execution** (paper Fig. 12 / ISAAC): each
  layer owns crossbars holding its weights; images stream through; steady-
  state FPS is set by the slowest layer.
* **Crossbar counting**: a layer's live (pruned) matrix is tiled onto
  128x128 crossbars at ``cells_per_weight`` cells each, doubled for
  dual-crossbar schemes — via :func:`repro.core.compression.crossbars_for_matrix`.
* **Replication**: spare crossbars replicate bottleneck layers.  A greedy
  allocator raises the replication of whichever layer currently dominates
  latency until the budget is spent.  Replication per layer is capped by the
  tile-bus bandwidth (``2 * bus_bits / activation_bits`` input streams); the
  paper makes exactly this caveat for pruned ISAAC/PUMA ("if interconnects
  can provide enough bandwidth") and doubles FORMS' bus width.
* **Pass timing**: coarse designs (ISAAC/PUMA) convert each column once per
  input bit: ``bits x columns_per_adc / f_adc``.  Fine-grained FORMS converts
  each *fragment* once per input bit, i.e. ``row_groups`` times more
  conversions, at 4x the ADC count and 1.75x the clock; zero-skipping
  replaces the 16 input bits by each layer's measured average EIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.compression import CrossbarShape, crossbars_for_matrix
from .chip import ChipDesign, forms_chip, isaac_chip
from .workload import LayerWorkload, NetworkWorkload


@dataclass(frozen=True)
class AcceleratorConfig:
    """One evaluated accelerator configuration (a bar in Figs. 13/14)."""

    name: str
    chip: ChipDesign
    scheme: str = "isaac_offset"     # crossbar-copy scheme for signed weights
    weight_bits: int = 16
    cell_bits: int = 2
    activation_bits: int = 16
    use_pruned_structure: bool = False
    zero_skip: bool = False

    @property
    def cells_per_weight(self) -> int:
        return -(-self.weight_bits // self.cell_bits)

    @property
    def fragment_size(self) -> int:
        return self.chip.tile.mcu.fragment_size

    @property
    def is_fine_grained(self) -> bool:
        return self.fragment_size > 0

    #: input streams sustainable per bus bit-lane; calibrated so pruned ISAAC
    #: saturates near the paper's largest observed speedups (~200x on the
    #: most compressed CIFAR-10 models) while FORMS' 512-bit bus doubles the
    #: ceiling — the interconnect caveat the paper attaches to its
    #: pruned-ISAAC/PUMA rows.
    streams_per_lane: int = 8

    def replication_cap(self) -> int:
        """Bandwidth-limited replication per layer (input streams)."""
        return max(1, self.streams_per_lane * self.chip.tile.bus_bits
                   // self.activation_bits)


# ---------------------------------------------------------------------------
# Per-layer quantities
# ---------------------------------------------------------------------------

def layer_crossbars(layer: LayerWorkload, config: AcceleratorConfig,
                    crossbar: Optional[CrossbarShape] = None) -> int:
    """Crossbars needed to hold one copy of the layer's weights."""
    crossbar = crossbar or CrossbarShape(config.chip.tile.mcu.crossbar_rows,
                                         config.chip.tile.mcu.crossbar_cols)
    rows = layer.live_rows if config.use_pruned_structure else layer.rows
    cols = layer.live_cols if config.use_pruned_structure else layer.cols
    # Only the copy count differs between schemes here; FORMS and ISAAC both
    # store one copy, PRIME-style dual mapping stores two.
    scheme = "dual" if config.scheme == "dual" else "forms"
    return crossbars_for_matrix(rows, cols, crossbar, config.cells_per_weight,
                                scheme=scheme)


def layer_input_bits(layer: LayerWorkload, config: AcceleratorConfig) -> float:
    """Input bit-cycles fed per MVM pass (EIC average when zero-skipping)."""
    if config.zero_skip and config.is_fine_grained:
        return min(layer.average_eic(config.fragment_size, config.activation_bits),
                   float(config.activation_bits))
    return float(config.activation_bits)


def layer_pass_time_s(layer: LayerWorkload, config: AcceleratorConfig) -> float:
    """Time for the layer's crossbars to absorb one input vector.

    Vertically-stacked crossbars work in parallel, so the pass time depends
    on the rows covered by one crossbar, not the whole layer height.
    """
    mcu = config.chip.tile.mcu
    bits = layer_input_bits(layer, config)
    rows = layer.live_rows if config.use_pruned_structure else layer.rows
    rows_in_crossbar = min(rows, mcu.crossbar_rows)
    if config.is_fine_grained:
        row_groups = -(-rows_in_crossbar // mcu.rows_per_activation)
    else:
        row_groups = 1
    return row_groups * bits * mcu.cycle_time_s


def layer_time_per_image_s(layer: LayerWorkload, config: AcceleratorConfig,
                           replication: float = 1.0) -> float:
    """Per-image latency contribution of one layer at a given replication."""
    return layer.positions_per_image * layer_pass_time_s(layer, config) / replication


# ---------------------------------------------------------------------------
# Replication allocation
# ---------------------------------------------------------------------------

def allocate_replication(workload: NetworkWorkload, config: AcceleratorConfig) -> Dict[str, float]:
    """Distribute the crossbar budget across layers to minimize the bottleneck.

    Every layer gets at least one (possibly fractional) copy; spare budget is
    spent greedily on the current bottleneck layer, honoring the bandwidth
    cap.  When the model does not fit the chip even once, replication factors
    drop below 1 (time-multiplexed weights — the dense 32-bit baselines),
    scaling all layers by the same deficit factor.
    """
    costs = {layer.name: layer_crossbars(layer, config) for layer in workload.layers}
    total_cost = sum(costs.values())
    budget = config.chip.crossbars
    cap = config.replication_cap()
    if total_cost >= budget:
        # Does not fit: uniform fractional residency.
        fraction = budget / total_cost
        return {name: fraction for name in costs}

    replication = {layer.name: 1.0 for layer in workload.layers}
    remaining = budget - total_cost
    times = {layer.name: layer_time_per_image_s(layer, config) for layer in workload.layers}

    def bottleneck() -> Optional[str]:
        candidates = [(times[l.name] / replication[l.name], l.name)
                      for l in workload.layers if replication[l.name] < cap]
        if not candidates:
            return None
        return max(candidates)[1]

    while True:
        name = bottleneck()
        if name is None or costs[name] > remaining:
            break
        replication[name] += 1.0
        remaining -= costs[name]
    return replication


# ---------------------------------------------------------------------------
# Network-level results
# ---------------------------------------------------------------------------

@dataclass
class PerfResult:
    """Performance of one configuration on one workload."""

    config_name: str
    workload_name: str
    fps: float
    bottleneck_layer: str
    crossbars_used: float
    replication: Dict[str, float] = field(default_factory=dict)
    dense_macs_per_image: int = 0
    chip_power_w: float = 0.0
    chip_area_mm2: float = 0.0

    @property
    def effective_gops(self) -> float:
        """Dense-model-equivalent GOP/s delivered (2 ops per MAC)."""
        return 2.0 * self.dense_macs_per_image * self.fps / 1e9

    @property
    def gops_per_mm2(self) -> float:
        return self.effective_gops / self.chip_area_mm2

    @property
    def gops_per_w(self) -> float:
        return self.effective_gops / self.chip_power_w


def network_performance(workload: NetworkWorkload,
                        config: AcceleratorConfig) -> PerfResult:
    """Steady-state pipelined FPS of ``workload`` on ``config``."""
    replication = allocate_replication(workload, config)
    worst_time = 0.0
    worst_name = ""
    for layer in workload.layers:
        t = layer_time_per_image_s(layer, config, replication[layer.name])
        if t > worst_time:
            worst_time, worst_name = t, layer.name
    used = sum(layer_crossbars(l, config) * replication[l.name]
               for l in workload.layers)
    return PerfResult(
        config_name=config.name,
        workload_name=f"{workload.network}/{workload.dataset}",
        fps=1.0 / worst_time if worst_time > 0 else float("inf"),
        bottleneck_layer=worst_name,
        crossbars_used=used,
        replication=replication,
        dense_macs_per_image=workload.total_dense_macs,
        chip_power_w=config.chip.power_w,
        chip_area_mm2=config.chip.area_mm2,
    )


@dataclass
class PeakThroughput:
    """Nominal peak rates for Table V."""

    config_name: str
    gops: float
    gops_per_mm2: float
    gops_per_w: float


def peak_throughput(config: AcceleratorConfig,
                    effective_ops_factor: float = 1.0,
                    average_eic: Optional[float] = None) -> PeakThroughput:
    """Peak nominal throughput of a configuration (Table V).

    Every crossbar streams MVMs back-to-back: ops = 2 x (weights stored per
    crossbar) per full pass.  ``effective_ops_factor`` converts stored-weight
    ops into dense-model-equivalent ops for pruned configurations (the
    paper's "effective peak"); ``average_eic`` enables zero-skipping in the
    pass time.
    """
    mcu = config.chip.tile.mcu
    copies = 2 if config.scheme == "dual" else 1
    weight_cols = mcu.crossbar_cols // config.cells_per_weight
    weights_per_crossbar = mcu.crossbar_rows * weight_cols / copies
    bits = float(config.activation_bits)
    if average_eic is not None and config.zero_skip and config.is_fine_grained:
        bits = min(average_eic, bits)
    pass_time = mcu.full_mvm_time_s(bits)
    ops_per_s = config.chip.crossbars * 2.0 * weights_per_crossbar / pass_time
    ops_per_s *= effective_ops_factor
    gops = ops_per_s / 1e9
    return PeakThroughput(
        config_name=config.name,
        gops=gops,
        gops_per_mm2=gops / config.chip.area_mm2,
        gops_per_w=gops / config.chip.power_w,
    )


# ---------------------------------------------------------------------------
# Standard configurations (the bars of Figs. 13/14 and rows of Table V)
# ---------------------------------------------------------------------------

def isaac32_config(tiles: int = 168) -> AcceleratorConfig:
    """The normalization baseline: dense ISAAC with 32-bit weights."""
    return AcceleratorConfig(name="ISAAC-32", chip=isaac_chip(tiles),
                             scheme="isaac_offset", weight_bits=32)


def isaac16_config(tiles: int = 168) -> AcceleratorConfig:
    """Original ISAAC (16-bit weights), Table V's unit row."""
    return AcceleratorConfig(name="ISAAC", chip=isaac_chip(tiles),
                             scheme="isaac_offset", weight_bits=16)


def pruned_quantized_isaac_config(weight_bits: int = 8,
                                  tiles: int = 168) -> AcceleratorConfig:
    return AcceleratorConfig(name="Pruned/Quantized-ISAAC", chip=isaac_chip(tiles),
                             scheme="isaac_offset", weight_bits=weight_bits,
                             use_pruned_structure=True)


def puma_config(weight_bits: int = 16, pruned: bool = False,
                tiles: int = 168) -> AcceleratorConfig:
    """PUMA modelled as a dual-crossbar coarse-grained design."""
    name = "Pruned/Quantized-PUMA" if pruned else "PUMA"
    return AcceleratorConfig(name=name, chip=isaac_chip(tiles), scheme="dual",
                             weight_bits=weight_bits, use_pruned_structure=pruned)


def forms_config(fragment_size: int = 8, weight_bits: int = 8,
                 pruned: bool = True, zero_skip: bool = True,
                 name: Optional[str] = None, tiles: int = 168) -> AcceleratorConfig:
    """FORMS at a fragment size; toggles give the ablation stacks."""
    if name is None:
        tags = []
        if pruned:
            tags.append("PQP")
        if zero_skip:
            tags.append("ZS")
        name = f"FORMS-{fragment_size}" + (f" ({'+'.join(tags)})" if tags else "")
    return AcceleratorConfig(name=name, chip=forms_chip(fragment_size, tiles),
                             scheme="forms", weight_bits=weight_bits,
                             use_pruned_structure=pruned, zero_skip=zero_skip)


def pressure_matched_tiles(workload: NetworkWorkload, pressure: float = 4.0,
                           reference: Optional[AcceleratorConfig] = None) -> int:
    """Tile count that oversubscribes the dense 32-bit baseline by ``pressure``.

    The paper's full-size chip holds its full-size dense models only
    fractionally (a dense 32-bit VGG-16 wants several times ISAAC's crossbar
    budget); our scaled-down models would otherwise fit trivially and mask
    every compression benefit.  Matching the *pressure* — dense crossbar
    demand over chip budget — restores the paper's operating point.
    """
    if pressure <= 0:
        raise ValueError("pressure must be positive")
    reference = reference or isaac32_config(tiles=1)
    demand = sum(layer_crossbars(layer, reference) for layer in workload.layers)
    per_tile = reference.chip.tile.crossbars
    tiles = max(1, int(round(demand / (pressure * per_tile))))
    return tiles

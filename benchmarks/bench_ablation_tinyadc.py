"""Ablation — TinyADC column sparsity composed with FORMS fragments.

TinyADC [40] (cited in Sec. II-A as the peripheral-aware pruning
alternative) bounds non-zeros per crossbar column to shrink the required ADC
resolution.  At FORMS' fragment granularity the two techniques compose: a
fragment of 8 cells with at most k non-zeros needs
``ceil(log2(k * 3 + 1))`` ADC bits instead of 5 (2-bit cells, worst case).

This bench prices each k through the calibrated ADC scaling model and
reports the accuracy cost of enforcing the sparsity on a trained polarized
model (projection-only, no retraining — the pessimistic bound).  Expected
shape: ADC power falls roughly 2x per saved bit; mild k (6/8) is free in
accuracy terms while aggressive k (2) costs visibly.
"""

import numpy as np

from repro.analysis import FAST, ExperimentTable, forms_config_for, train_baseline
from repro.arch.components import default_adc_model
from repro.core import (FORMSPipeline, TinyADCConstraint, TinyADCSpec,
                        required_bits_with_tinyadc)
from repro.core.tinyadc import project_fragment_sparsity
from repro.nn import compressible_layers, evaluate
from repro.reram.variation import clone_model

FRAGMENT = 8
KS = [8, 6, 4, 2]


def run_ablation(seed: int = 0):
    baseline = train_baseline("lenet5", "mnist", FAST, seed=seed)
    config = forms_config_for(FAST, "mnist", fragment_size=FRAGMENT)
    model = clone_model(baseline.model)
    FORMSPipeline(config).optimize(model, baseline.train_set,
                                   baseline.test_set, seed=seed)
    base_accuracy = evaluate(model, baseline.test_set).accuracy
    adc_model = default_adc_model()
    dense_bits = required_bits_with_tinyadc(FRAGMENT, config.cell_bits)
    dense_power = adc_model.power_mw(dense_bits, 2.1e9)

    rows = []
    extras = {}
    for k in KS:
        sparse = clone_model(model)
        for name, layer in compressible_layers(sparse):
            geometry = config.geometry_for(layer)
            layer.weight.data[...] = project_fragment_sparsity(
                layer.weight.data, geometry, k)
        accuracy = evaluate(sparse, baseline.test_set).accuracy
        bits = required_bits_with_tinyadc(k, config.cell_bits)
        power = adc_model.power_mw(bits, 2.1e9)
        rows.append([k, bits, power / dense_power,
                     accuracy * 100.0, (base_accuracy - accuracy) * 100.0])
        extras[k] = {"bits": bits, "power_ratio": power / dense_power,
                     "accuracy": accuracy}
    table = ExperimentTable(
        "Ablation: TinyADC sparsity bound k per fragment "
        f"(fragment {FRAGMENT}, LeNet-5, projection only)",
        ["k (nonzeros)", "ADC bits", "ADC power vs dense",
         "accuracy %", "accuracy drop %"],
        rows)
    table.extras["cases"] = extras
    table.extras["base_accuracy"] = base_accuracy
    return table


def test_ablation_tinyadc(benchmark, save_table):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_table("ablation_tinyadc", result)
    benchmark.extra_info["table"] = result.rendered
    cases = result.extras["cases"]
    base = result.extras["base_accuracy"]
    # k = m is the identity: exact dense accuracy and cost.
    assert cases[8]["accuracy"] == base
    assert cases[8]["power_ratio"] == 1.0
    # ADC bits (and hence power) shrink monotonically with k.
    bits = [cases[k]["bits"] for k in KS]
    assert bits == sorted(bits, reverse=True)
    assert cases[2]["power_ratio"] < cases[8]["power_ratio"]
    # Mild sparsity is nearly free; aggressive sparsity costs more accuracy.
    assert cases[6]["accuracy"] >= cases[2]["accuracy"]

"""Async serving benchmark: connection scale on the asyncio front end.

:mod:`repro.perf.http` measures the threaded front end with one client
thread per in-flight request — a shape that cannot reach thousands of
concurrent sockets (the thread stack alone forbids it).  This module
measures what :class:`~repro.serving.aio.AsyncFrontend` exists for:
**hundreds of simultaneously open connections multiplexed onto one
event loop**, each carrying a real ``POST /v1/infer``.  The load
generator is itself asyncio (one task per connection on one client
loop), so a single CPU drives the whole sweep.

The driver opens *all* connections before the first request fires
(an :class:`asyncio.Barrier` across the connection tasks), so the
server provably holds the full connection count at once —
``AsyncFrontend.peak_connections`` is asserted against the target
before anything is recorded.  Requests then depart on an open-loop
Poisson schedule per connection, keep-alive, so the sockets stay
resident for the duration.

Records are the ``serving_async_r*`` curve in ``BENCH_engine.json``
(kind ``"serving"``, merged through
:func:`repro.perf.serving.merge_serving_records` like every serving
curve).  Every point asserts — before anything is recorded — that each
decoded response is **bit-identical** to a direct serial single-image
forward and that every failure is an explicit shed receipt
(``code == "shed"`` with a documented reason): connection scale must
never leak into the numerics, and pressure must never fail silently.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from .serving import SERVING_RECORD_KIND

#: meta tag distinguishing asyncio-driven records from threaded-http ones
ASYNC_TRANSPORT = "asyncio"


def async_record_name(rate_rps: float) -> str:
    rate = f"{rate_rps:g}".replace(".", "p")
    return f"serving_async_r{rate}"


async def _http_roundtrip(reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter,
                          path: str, body: bytes
                          ) -> Tuple[int, Dict[str, str], bytes]:
    """One keep-alive ``POST`` on an already-open client connection."""
    writer.write(b"POST " + path.encode("ascii") + b" HTTP/1.1\r\n"
                 b"Host: bench\r\n"
                 b"Content-Type: application/json\r\n"
                 b"Content-Length: " + str(len(body)).encode("ascii") +
                 b"\r\n\r\n" + body)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection mid-request")
    status = int(status_line.split()[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    payload = await reader.readexactly(length) if length else b""
    return status, headers, payload


async def _run_connections(host: str, port: int,
                           plan: List[Tuple[bytes, float]],
                           outcomes: List[Optional[Dict]]) -> int:
    """One task per connection: connect, rendezvous, fire on schedule.

    Returns the number of connections that were simultaneously open at
    the rendezvous (== ``len(plan)`` unless a connect failed, which
    raises).  The barrier is the point: every socket is open before any
    request departs, so the server's ``peak_connections`` gauge must
    read the full count.
    """
    barrier = asyncio.Barrier(len(plan))

    async def one(index: int, body: bytes, offset: float) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            async with barrier:   # all sockets open before any request
                start = time.monotonic()
            delay = start + offset - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            sent = time.monotonic()
            status, _, payload = await _http_roundtrip(
                reader, writer, "/v1/infer", body)
            outcomes[index] = {"latency_s": time.monotonic() - sent,
                               "status": status,
                               "body": json.loads(payload.decode("utf-8"))}
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):   # pragma: no cover
                pass

    async with asyncio.TaskGroup() as group:
        for index, (body, offset) in enumerate(plan):
            group.create_task(one(index, body, offset))
    return len(plan)


def drive_async_connections(rate_rps: float, connections: int, *,
                            max_batch: int = 8, max_wait_ms: float = 2.0,
                            workers: Optional[int] = None, seed: int = 0,
                            activation_bits: int = 12, binary: bool = False,
                            die_cache=None,
                            max_connections: Optional[int] = None,
                            max_inflight_bytes: Optional[int] = None) -> Dict:
    """Hold ``connections`` sockets open at once and verify every bit.

    Builds the canonical demo server (the same
    :func:`~repro.serving.demo.build_demo_server` network every serving
    bench drives), fronts it with an
    :class:`~repro.serving.aio.AsyncFrontend`, opens ``connections``
    keep-alive sockets *simultaneously* (barrier rendezvous), then fires
    one ``POST /v1/infer`` per connection on an open-loop Poisson
    schedule at ``rate_rps``.

    Asserts before returning: ``frontend.peak_connections >=
    connections`` (the scale claim, measured server-side), every 200
    response bit-identical to the serial single-image forward, and
    every non-200 a documented shed receipt (``code == "shed"``) —
    anything else raises.  ``max_connections`` /
    ``max_inflight_bytes`` arm the transport backpressure, making
    admission sheds an *expected* outcome rather than a failure.

    Returns ``{"outcomes", "served", "shed", "latencies_s",
    "peak_connections", "snapshot", "open_loop_s", "workers", "port"}``.
    """
    from ..runtime import run_network_serial
    from ..serving import WireResult
    from ..serving.aio import AsyncFrontend
    from ..serving.demo import build_demo_server
    from ..serving.http import encode_array
    from .serving import poisson_arrival_offsets

    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")

    server, traffic = build_demo_server(
        1, max_batch=max_batch, max_wait_ms=max_wait_ms, workers=workers,
        seed=seed, activation_bits=activation_bits, die_cache=die_cache)
    images = traffic["images"]
    rng = np.random.default_rng(seed)
    image_idx = rng.integers(0, images.shape[0], size=connections)
    arrival_offsets = poisson_arrival_offsets(rng, rate_rps, connections)

    plan: List[Tuple[bytes, float]] = []
    for i in range(connections):
        image = images[image_idx[i]]
        envelope = ({"input_b64": encode_array(np.asarray(image))}
                    if binary else {"input": image.tolist()})
        plan.append((json.dumps(envelope).encode("utf-8"),
                     float(arrival_offsets[i])))

    outcomes: List[Optional[Dict]] = [None] * connections
    with server:
        frontend = AsyncFrontend(server, owns_server=True,
                                 max_connections=max_connections,
                                 max_inflight_bytes=max_inflight_bytes
                                 ).start()
        port = frontend.port
        start = time.monotonic()
        asyncio.run(_run_connections(frontend.host, port, plan, outcomes))
        open_loop_s = time.monotonic() - start
        peak = frontend.peak_connections
        snapshot = server.server_stats()
        resolved_workers = server.pool.workers
        serial = run_network_serial(server.model, images, tile_size=1)
        frontend.shutdown()

    if peak < connections:
        raise AssertionError(
            f"front end saw at most {peak} simultaneous connections; the "
            f"driver promised {connections} — the rendezvous failed")
    served = shed = 0
    latencies: List[float] = []
    for i, outcome in enumerate(outcomes):
        if outcome is None:   # pragma: no cover — TaskGroup would raise
            raise AssertionError(f"connection {i} left no outcome")
        latencies.append(outcome["latency_s"])
        if outcome["status"] == 200:
            result = WireResult.from_body(outcome["body"])
            if not np.array_equal(result.output, serial[image_idx[i]]):
                raise AssertionError(
                    f"connection {i}: decoded output != serial single-image "
                    "forward — connection scale leaked into the numerics")
            served += 1
            continue
        error = outcome["body"].get("error", {})
        if error.get("code") != "shed" or "receipt" not in error:
            raise AssertionError(
                f"connection {i} failed without a shed receipt: "
                f"HTTP {outcome['status']} {error}")
        shed += 1
    return {"outcomes": outcomes, "served": served, "shed": shed,
            "latencies_s": latencies, "peak_connections": peak,
            "snapshot": snapshot, "open_loop_s": open_loop_s,
            "workers": resolved_workers, "port": port}


def run_async_point(rate_rps: float, connections: int = 64, *,
                    max_batch: int = 8, max_wait_ms: float = 2.0,
                    workers: Optional[int] = None, seed: int = 0,
                    activation_bits: int = 12, binary: bool = False,
                    die_cache=None,
                    max_connections: Optional[int] = None,
                    max_inflight_bytes: Optional[int] = None) -> Dict:
    """Measure one async connection-scale point and return its record.

    Drives :func:`drive_async_connections` (peak-connection and
    bit-identity assertions live there) and packages both latency views
    as one ``"serving"`` record named ``serving_async_r<rate>``:
    ``rtt_*`` are client-side round trips through the event loop,
    ``latency_*`` the server-side queue window, and
    ``peak_connections`` the proven simultaneous-socket count.
    """
    driven = drive_async_connections(
        rate_rps, connections, max_batch=max_batch,
        max_wait_ms=max_wait_ms, workers=workers, seed=seed,
        activation_bits=activation_bits, binary=binary,
        die_cache=die_cache, max_connections=max_connections,
        max_inflight_bytes=max_inflight_bytes)
    snapshot = driven["snapshot"]
    rtts = np.asarray(driven["latencies_s"], dtype=np.float64)
    return {
        "name": async_record_name(rate_rps),
        "kind": SERVING_RECORD_KIND,
        "results": {
            "offered_rate_rps": rate_rps,
            "throughput_rps": driven["served"] / driven["open_loop_s"],
            "peak_connections": driven["peak_connections"],
            "requests_completed": driven["served"],
            "requests_shed": driven["shed"],
            "rtt_p50_s": float(np.percentile(rtts, 50)),
            "rtt_p95_s": float(np.percentile(rtts, 95)),
            "rtt_max_s": float(rtts.max()),
            "latency_p50_s": snapshot["latency_p50_s"],
            "latency_p95_s": snapshot["latency_p95_s"],
            "queue_wait_p95_s": snapshot["queue_wait_p95_s"],
            "batches_formed": snapshot["batches_formed"],
            "mean_batch_size": snapshot["mean_batch_size"],
            "max_batch_size": snapshot["max_batch_size"],
            "occupancy": snapshot["occupancy"],
        },
        "meta": {
            "transport": ASYNC_TRANSPORT,
            "encoding": "npy_b64" if binary else "json",
            "connections": connections,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "workers": driven["workers"],
            "seed": seed,
            "activation_bits": activation_bits,
            "transport_caps": {"max_connections": max_connections,
                               "max_inflight_bytes": max_inflight_bytes},
            "sheds_documented_receipts": True,
            "bit_identical_to_serial": True,
        },
    }

"""ADMM-regularized training (paper Sec. III-D).

The constrained problem

    minimize  L(W)   subject to  W_i in S_i (pruning), P_i (polarization),
                                 Q_i (quantization)

is decomposed per Boyd's ADMM into (Eq. 4) a proximal SGD step on
``L(W) + sum_i rho_i/2 ||W_i - Z_i + U_i||^2`` and (Eq. 5/6) a Euclidean
projection ``Z_i = Proj(W_i + U_i)`` with dual update ``U_i += W_i - Z_i``.

This module provides the per-layer :class:`Constraint` objects (which own the
projection and any state such as fragment signs or quantization scale) and the
:class:`ADMMTrainer` that runs the iteration, tracks residuals, and performs
the final hard projection plus masked retraining used by ADMM-NN-style
pipelines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.data import Dataset
from ..nn.layers import Module, compressible_layers
from ..nn.optim import Adam
from ..nn.trainer import History, evaluate, fit, recalibrate_batchnorm
from .fragments import FragmentGeometry
from .polarization import (SignRule, compute_signs, polarization_violation,
                           project_polarization)
from .pruning import PruningSpec, project_structured, structured_mask
from .quantization import (QuantizationSpec, is_quantized, project_quantization,
                           quantize)


class Constraint(ABC):
    """One hardware-motivated constraint on one layer's weight tensor."""

    #: whether :meth:`enforce` keeps the weight feasible during masked retrain
    enforce_during_retrain: bool = True

    @abstractmethod
    def project(self, weight: np.ndarray) -> np.ndarray:
        """Euclidean projection of ``weight`` onto the constraint set."""

    def refresh(self, weight: np.ndarray, epoch: int) -> None:
        """Update internal state (e.g. fragment signs) from current weights."""

    def enforce(self, weight: np.ndarray) -> np.ndarray:
        """Feasibility clamp applied after each retrain step (default: project)."""
        return self.project(weight)

    def violation(self, weight: np.ndarray) -> float:
        """Normalized distance from feasibility (0 = feasible)."""
        projected = self.project(weight)
        denom = float(np.linalg.norm(weight)) or 1.0
        return float(np.linalg.norm(weight - projected)) / denom

    def describe(self) -> str:
        return type(self).__name__


class StructuredPruningConstraint(Constraint):
    """Crossbar-aware filter + filter-shape pruning (set S_i)."""

    def __init__(self, geometry: FragmentGeometry, spec: PruningSpec):
        self.geometry = geometry
        self.spec = spec
        self._mask: Optional[np.ndarray] = None

    def project(self, weight: np.ndarray) -> np.ndarray:
        return project_structured(weight, self.geometry, self.spec)

    def enforce(self, weight: np.ndarray) -> np.ndarray:
        # During masked retrain the surviving structure is frozen: re-apply
        # the mask captured at hard-projection time instead of re-ranking
        # rows/columns (which could churn the structure every step).
        if self._mask is None:
            self._mask = structured_mask(weight, self.geometry)
        return np.where(self._mask, weight, 0.0)

    def capture_mask(self, weight: np.ndarray) -> None:
        self._mask = structured_mask(weight, self.geometry)

    def describe(self) -> str:
        return (f"prune(filter_keep={self.spec.filter_keep:.2f}, "
                f"shape_keep={self.spec.shape_keep:.2f})")


class PolarizationConstraint(Constraint):
    """Fragment polarization (set P_i) with periodic sign re-estimation."""

    def __init__(self, geometry: FragmentGeometry, rule: SignRule = "sum",
                 refresh_every: int = 1):
        if refresh_every < 1:
            raise ValueError("refresh_every (M) must be >= 1")
        self.geometry = geometry
        self.rule = rule
        self.refresh_every = refresh_every
        self.signs: Optional[np.ndarray] = None
        self.sign_updates = 0

    def _ensure_signs(self, weight: np.ndarray) -> np.ndarray:
        if self.signs is None:
            self.signs = compute_signs(weight, self.geometry, self.rule)
        return self.signs

    def project(self, weight: np.ndarray) -> np.ndarray:
        return project_polarization(weight, self.geometry, self._ensure_signs(weight))

    def refresh(self, weight: np.ndarray, epoch: int) -> None:
        # Paper Sec. III-B: signs recomputed from current weights every M epochs.
        if (epoch + 1) % self.refresh_every == 0:
            self.signs = compute_signs(weight, self.geometry, self.rule)
            self.sign_updates += 1

    def violation(self, weight: np.ndarray) -> float:
        return polarization_violation(weight, self.geometry)

    def describe(self) -> str:
        return (f"polarize(m={self.geometry.fragment_size}, "
                f"policy={self.geometry.policy}, rule={self.rule})")


class QuantizationConstraint(Constraint):
    """ReRAM-customized quantization (set Q_i) with a persistent scale."""

    enforce_during_retrain = False  # projected once at the very end instead

    def __init__(self, spec: QuantizationSpec):
        self.spec = spec
        self.scale: float = 0.0

    def project(self, weight: np.ndarray) -> np.ndarray:
        projected, self.scale = project_quantization(weight, self.spec, self.scale)
        return projected

    def violation(self, weight: np.ndarray) -> float:
        if self.scale <= 0.0:
            return super().violation(weight)
        return 0.0 if is_quantized(weight, self.spec, self.scale) else super().violation(weight)

    def describe(self) -> str:
        return f"quantize({self.spec.weight_bits}-bit, {self.spec.cell_bits}-bit cells)"


# ---------------------------------------------------------------------------
# Trainer
# ---------------------------------------------------------------------------

@dataclass
class ADMMConfig:
    """Hyperparameters of one ADMM phase."""

    rho: float = 2e-2
    iterations: int = 3
    epochs_per_iteration: int = 2
    lr: float = 1e-3
    batch_size: int = 32
    retrain_epochs: int = 3
    retrain_lr: float = 1e-3
    rho_growth: float = 1.0   # optional per-iteration rho multiplier

    def __post_init__(self):
        if self.rho <= 0:
            raise ValueError("rho must be positive")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")


@dataclass
class ADMMReport:
    """Diagnostics of one ADMM phase."""

    histories: List[History] = field(default_factory=list)
    primal_residuals: List[float] = field(default_factory=list)
    violations: List[float] = field(default_factory=list)
    retrain_history: Optional[History] = None
    final_test_accuracy: Optional[float] = None


class ADMMTrainer:
    """Runs one ADMM phase over a model with per-layer constraints.

    ``constraints`` maps layer name (as yielded by
    :func:`repro.nn.layers.compressible_layers`) to the constraints applied to
    that layer's weight.  Constraints are projected sequentially when a layer
    has several (the paper runs its three constraint families in separate
    phases; see :mod:`repro.core.pipeline`).
    """

    def __init__(self, model: Module, constraints: Dict[str, Sequence[Constraint]],
                 config: ADMMConfig):
        self.model = model
        self.config = config
        self._layers = dict(compressible_layers(model))
        unknown = set(constraints) - set(self._layers)
        if unknown:
            raise KeyError(f"constraints reference unknown layers: {sorted(unknown)}")
        self.constraints = {name: list(cs) for name, cs in constraints.items() if cs}
        # Auxiliary Z and dual U per constrained layer (paper Eq. 3-6).
        self._aux: Dict[str, np.ndarray] = {}
        self._dual: Dict[str, np.ndarray] = {}
        for name in self.constraints:
            weight = self._layers[name].weight.data
            self._aux[name] = self._project_all(name, weight.copy())
            self._dual[name] = np.zeros_like(weight)

    # ------------------------------------------------------------------
    def _project_all(self, name: str, weight: np.ndarray) -> np.ndarray:
        for constraint in self.constraints[name]:
            weight = constraint.project(weight)
        return weight

    def _penalty_grad_hook(self, rho: float):
        def hook() -> None:
            for name, constraints in self.constraints.items():
                param = self._layers[name].weight
                if param.grad is None:
                    continue
                param.grad += rho * (param.data - self._aux[name] + self._dual[name])
        return hook

    def _refresh_hook(self):
        def hook(epoch: int) -> None:
            for name, constraints in self.constraints.items():
                weight = self._layers[name].weight.data
                for constraint in constraints:
                    constraint.refresh(weight, epoch)
        return hook

    def primal_residual(self) -> float:
        """RMS of ``W - Z`` across constrained layers."""
        total = 0.0
        count = 0
        for name in self.constraints:
            diff = self._layers[name].weight.data - self._aux[name]
            total += float((diff ** 2).sum())
            count += diff.size
        return float(np.sqrt(total / max(count, 1)))

    def max_violation(self) -> float:
        """Worst constraint violation across layers (0 = all feasible)."""
        worst = 0.0
        for name, constraints in self.constraints.items():
            weight = self._layers[name].weight.data
            for constraint in constraints:
                worst = max(worst, constraint.violation(weight))
        return worst

    # ------------------------------------------------------------------
    def run(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            seed: int = 0, verbose: bool = False) -> ADMMReport:
        """Execute the ADMM iterations (W-step, Z-step, U-step)."""
        report = ADMMReport()
        rho = self.config.rho
        for iteration in range(self.config.iterations):
            optimizer = Adam(self.model.parameters(), lr=self.config.lr)
            history = fit(
                self.model, train_set, optimizer,
                epochs=self.config.epochs_per_iteration,
                batch_size=self.config.batch_size,
                test_set=test_set,
                grad_hook=self._penalty_grad_hook(rho),
                epoch_hook=self._refresh_hook(),
                seed=seed + iteration,
                verbose=verbose,
            )
            report.histories.append(history)
            # Z-step (projection, Eq. 6) and dual update.
            for name in self.constraints:
                weight = self._layers[name].weight.data
                self._aux[name] = self._project_all(name, weight + self._dual[name])
                self._dual[name] += weight - self._aux[name]
            report.primal_residuals.append(self.primal_residual())
            report.violations.append(self.max_violation())
            rho *= self.config.rho_growth
        return report

    def finalize(self, train_set: Dataset, test_set: Optional[Dataset] = None,
                 seed: int = 0, verbose: bool = False) -> ADMMReport:
        """Hard-project weights onto the constraints and retrain masked.

        After the ADMM iterations the weights are *near* the constraint set;
        this step makes them exactly feasible, then fine-tunes the surviving
        degrees of freedom (pruning masks frozen, polarization signs clamped)
        to recover accuracy.  Quantization constraints re-project once more at
        the very end so retraining can move weights off-grid in between.
        """
        report = ADMMReport()
        # Hard projection.
        for name, constraints in self.constraints.items():
            param = self._layers[name].weight
            param.data[...] = self._project_all(name, param.data)
            for constraint in constraints:
                if isinstance(constraint, StructuredPruningConstraint):
                    constraint.capture_mask(param.data)

        if self.config.retrain_epochs > 0:
            def enforce_hook() -> None:
                # Projected SGD: clamp after every optimizer step so pruned
                # weights never regrow and fragments stay polarized.
                for name, constraints in self.constraints.items():
                    param = self._layers[name].weight
                    for constraint in constraints:
                        if constraint.enforce_during_retrain:
                            param.data[...] = constraint.enforce(param.data)

            optimizer = Adam(self.model.parameters(), lr=self.config.retrain_lr)
            enforce_hook()
            report.retrain_history = fit(
                self.model, train_set, optimizer,
                epochs=self.config.retrain_epochs,
                batch_size=self.config.batch_size,
                test_set=test_set,
                step_hook=enforce_hook,
                seed=seed + 1000,
                verbose=verbose,
            )
            enforce_hook()

        # Final exact projection (also snaps quantization constraints).
        for name in self.constraints:
            param = self._layers[name].weight
            param.data[...] = self._project_all(name, param.data)

        # Weight surgery invalidates BatchNorm running statistics; refresh
        # them (no weights change, so feasibility is untouched).
        recalibrate_batchnorm(self.model, train_set,
                              batch_size=self.config.batch_size)

        if test_set is not None:
            report.final_test_accuracy = evaluate(self.model, test_set).accuracy
        report.violations.append(self.max_violation())
        return report

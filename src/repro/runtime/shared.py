"""Shared-memory conductance-plane pool for the process backend.

The process backend's whole premise is that the big read-only arrays of an
engine — programmed conductance planes, code planes, activation batches —
must not be pickled per task.  A :class:`SharedPlanePool` owns a set of
POSIX shared-memory segments: the parent *registers* an array once (content
-addressed, so bit-identical planes from different engines share one
segment), tasks carry only a :class:`SharedPlaneHandle` (name + shape +
dtype), and workers *attach* the segment as a zero-copy read-only NumPy
view.  The pool owns unlink-on-shutdown cleanup: segments live exactly as
long as the :class:`~repro.runtime.WorkerPool` that created them, and the
differential tests assert that nothing is left in ``/dev/shm`` afterwards.

Attached views are read-only on purpose: a worker scribbling on a shared
plane would corrupt every other worker's bits, which is exactly the class
of bug the bit-exactness contract exists to make impossible.
"""

from __future__ import annotations

import hashlib
import os
import secrets
import sys
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

try:  # pragma: no cover - the stdlib module exists on every supported host
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

#: every segment this stack creates carries this prefix, so tests (and
#: operators) can audit ``/dev/shm`` for leaks without false positives.
SEGMENT_PREFIX = "forms_shm_"

#: environment override of the minimum array size worth a segment
MIN_SHARED_BYTES_ENV = "FORMS_SHARED_MIN_BYTES"

#: arrays below this many bytes ride inline in the task pickle — a
#: segment + attach round-trip costs more than copying a small array.
DEFAULT_MIN_SHARED_BYTES = 64 * 1024

#: per-process attach cache: segment name -> (SharedMemory, read-only view).
#: A worker attaches each plane once, no matter how many tasks use it.
_ATTACHED: Dict[str, Tuple[object, np.ndarray]] = {}

_TRACKER_PATCH_LOCK = threading.Lock()


def resolve_min_shared_bytes(min_bytes: Optional[int] = None) -> int:
    """Threshold in effect: explicit > ``FORMS_SHARED_MIN_BYTES`` > default."""
    if min_bytes is not None:
        if min_bytes < 0:
            raise ValueError("min_bytes must be >= 0")
        return min_bytes
    env = os.environ.get(MIN_SHARED_BYTES_ENV, "").strip()
    if env:
        value = int(env)
        if value < 0:
            raise ValueError(f"{MIN_SHARED_BYTES_ENV} must be >= 0, got {value}")
        return value
    return DEFAULT_MIN_SHARED_BYTES


@dataclass(frozen=True)
class SharedPlaneHandle:
    """Pickles in place of a registered array: segment name + array layout."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def shared_memory_available() -> Tuple[bool, str]:
    """Probe whether POSIX shared memory actually works on this host.

    Returns ``(ok, reason)``; the reason string feeds the graceful
    thread-backend fallback message.  The probe creates, attaches and
    unlinks a real segment — import success alone does not prove ``/dev/shm``
    is writable (containers mount it read-only or absent often enough).
    """
    if _shm is None:
        return False, "multiprocessing.shared_memory is not importable"
    try:
        probe = _shm.SharedMemory(create=True, size=16,
                                  name=SEGMENT_PREFIX + "probe_"
                                  + secrets.token_hex(4))
        try:
            probe.buf[0] = 1
        finally:
            probe.close()
            probe.unlink()
    except Exception as exc:  # noqa: BLE001 - any failure means "fall back"
        return False, f"{type(exc).__name__}: {exc}"
    return True, "ok"


def _open_untracked(name: str):
    """Attach a segment *without* registering it with the resource tracker.

    Ownership here is explicit — the pool that created a segment unlinks
    it — so attaches must not be tracked: the tracker's name cache is one
    shared *set* per process family, and Python < 3.13 registers every
    ``SharedMemory`` open, so a mere attach would alias (and on exit
    unlink or double-unregister) the owner's entry.  3.13+ spells this
    ``track=False``; earlier interpreters need the registration call
    suppressed for the duration of the open.
    """
    if _shm is None:
        raise RuntimeError("shared memory unavailable in this process")
    if sys.version_info >= (3, 13):
        return _shm.SharedMemory(name=name, track=False)
    from multiprocessing import resource_tracker
    with _TRACKER_PATCH_LOCK:
        original = resource_tracker.register

        def _skip_shared_memory(res_name, rtype):
            if rtype != "shared_memory":
                original(res_name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return _shm.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def attach_plane(handle: SharedPlaneHandle) -> np.ndarray:
    """Zero-copy read-only view of a registered plane (cached per process)."""
    cached = _ATTACHED.get(handle.name)
    if cached is None:
        segment = _open_untracked(handle.name)
        view = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                          buffer=segment.buf)
        view.flags.writeable = False
        cached = (segment, view)
        _ATTACHED[handle.name] = cached
    segment, view = cached
    if view.shape != tuple(handle.shape) or view.dtype != np.dtype(handle.dtype):
        view = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                          buffer=segment.buf)
        view.flags.writeable = False
    return view


def attach_bytes(handle: SharedPlaneHandle) -> memoryview:
    """The raw-byte flavour of :func:`attach_plane` (shipped pickles)."""
    return attach_plane(handle).data


def detach_all() -> None:
    """Drop this process's attach cache (test hook; owners keep segments)."""
    for segment, _ in _ATTACHED.values():
        try:
            segment.close()
        except Exception:  # noqa: BLE001
            pass
    _ATTACHED.clear()


class SharedPlanePool:
    """Owns shared-memory segments for one worker pool's lifetime.

    ``register`` is content-addressed: two bit-identical arrays (e.g. the
    same programmed die referenced by several engines, or the same
    activation batch pickled once per tile task) map to one segment.  An
    ``id()`` memo (with a keep-alive reference) skips re-hashing arrays
    that are registered repeatedly — the per-task common case.

    The pool unlinks every segment in :meth:`close`; until then, handles
    stay valid for any process that can see ``/dev/shm``.
    """

    def __init__(self, min_bytes: Optional[int] = None):
        self.min_bytes = resolve_min_shared_bytes(min_bytes)
        self._segments: Dict[str, object] = {}
        self._by_digest: Dict[Tuple, SharedPlaneHandle] = {}
        self._by_id: Dict[int, Tuple[SharedPlaneHandle, np.ndarray]] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._segments)

    def segment_names(self) -> List[str]:
        return sorted(self._segments)

    def export(self, array: np.ndarray) -> Optional[SharedPlaneHandle]:
        """Handle for ``array`` if it is worth sharing, else ``None``.

        The pickling hook's entry point: ``None`` means "inline this array
        in the task pickle" (too small to amortize a segment).
        """
        if array.nbytes < self.min_bytes or array.nbytes == 0:
            return None
        return self.register(array)

    def register(self, array: np.ndarray) -> SharedPlaneHandle:
        """Copy ``array`` into a segment (deduplicated) and hand back its handle."""
        if self._closed:
            raise RuntimeError("SharedPlanePool is closed")
        memo = self._by_id.get(id(array))
        if memo is not None and memo[1] is array:
            return memo[0]
        contiguous = np.ascontiguousarray(array)
        key = (hashlib.sha1(contiguous.tobytes()).digest(),
               contiguous.shape, contiguous.dtype.str)
        handle = self._by_digest.get(key)
        if handle is None:
            segment = self._create_segment(contiguous.nbytes)
            target = np.ndarray(contiguous.shape, dtype=contiguous.dtype,
                                buffer=segment.buf)
            target[...] = contiguous
            handle = SharedPlaneHandle(segment.name, tuple(contiguous.shape),
                                       contiguous.dtype.str)
            self._by_digest[key] = handle
        self._by_id[id(array)] = (handle, array)
        return handle

    def register_bytes(self, data: bytes) -> SharedPlaneHandle:
        """Segment for an opaque byte payload (shipped object pickles)."""
        return self.register(np.frombuffer(data, dtype=np.uint8))

    def _create_segment(self, nbytes: int):
        if _shm is None:
            raise RuntimeError("shared memory unavailable on this host")
        for _ in range(8):
            name = SEGMENT_PREFIX + secrets.token_hex(8)
            try:
                segment = _shm.SharedMemory(create=True, size=nbytes, name=name)
            except FileExistsError:  # pragma: no cover - token collision
                continue
            self._segments[name] = segment
            return segment
        raise RuntimeError("could not allocate a unique segment name")

    def close(self) -> None:
        """Unlink every owned segment.  Idempotent; handles die with it."""
        for name, segment in list(self._segments.items()):
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._by_digest.clear()
        self._by_id.clear()
        self._closed = True

    def __enter__(self) -> "SharedPlanePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""FORMS execution pipeline model (paper Fig. 12).

Like ISAAC, FORMS pipelines a layer's computation through 22 stages (26 when
the layer is followed by max-pooling): eDRAM read, parameter fetch, the
bit-serial crossbar/ADC iterations (cycles 4-16 are the skippable ones),
shift-and-add accumulation, activation function, and eDRAM write-back.

The pipeline model answers two questions: the fill latency of a single input
(which bounds single-image latency) and the steady-state initiation interval
(which, combined with zero-skipping, sets throughput).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

BASE_STAGES = 22
POOLING_STAGES = 26
#: inclusive range of pipeline cycles occupied by bit-serial input feeding
SKIPPABLE_RANGE: Tuple[int, int] = (2, 17)


@dataclass(frozen=True)
class PipelineModel:
    """Stage-level timing of one layer's pipeline."""

    input_bits: int = 16
    pooling: bool = False
    cycle_time_s: float = 100e-9   # one pipeline cycle (ISAAC's 100 ns grid)

    def __post_init__(self):
        if self.input_bits < 1:
            raise ValueError("input_bits must be >= 1")

    @property
    def total_stages(self) -> int:
        return POOLING_STAGES if self.pooling else BASE_STAGES

    @property
    def feed_stages(self) -> int:
        """Stages occupied by bit-serial feeding at the full bit width."""
        lo, hi = SKIPPABLE_RANGE
        return hi - lo + 1

    def stages_with_skipping(self, effective_bits: float) -> float:
        """Pipeline stages after zero-skipping reduces the feed phase.

        ``effective_bits`` is the (possibly fractional, averaged) EIC; the
        non-feed stages are unaffected.
        """
        effective_bits = min(max(effective_bits, 1.0), float(self.input_bits))
        return self.total_stages - (self.input_bits - effective_bits)

    def fill_latency_s(self, effective_bits: float = None) -> float:
        """Time for the first input to traverse the pipeline."""
        bits = self.input_bits if effective_bits is None else effective_bits
        return self.stages_with_skipping(bits) * self.cycle_time_s

    def initiation_interval_s(self, effective_bits: float = None) -> float:
        """Steady-state interval between successive inputs.

        The crossbar/ADC feed phase is the structural hazard: a new input can
        enter only when the previous one's bit-serial feed completes.
        """
        bits = self.input_bits if effective_bits is None else effective_bits
        bits = min(max(bits, 1.0), float(self.input_bits))
        return bits * self.cycle_time_s

    def throughput_inputs_per_s(self, effective_bits: float = None) -> float:
        return 1.0 / self.initiation_interval_s(effective_bits)

    def stage_labels(self) -> List[str]:
        """Human-readable stage sequence (matches Fig. 12)."""
        labels = ["eDRAM read", "read parameters"]
        labels += [f"crossbar/ADC bit {b}" for b in range(self.input_bits)]
        labels += ["shift+add", "shift+add (acc)", "activation function",
                   "eDRAM write"]
        if self.pooling:
            labels += ["pool read", "pool max", "pool max", "pool write"]
        return labels
